"""A guided tour of the library, layer by layer.

Walks bottom-up through the stack — geometry, naming, a raw protocol,
the message channel, an application — printing what each layer
contributes.  Read alongside ``docs/MODEL.md`` and
``docs/PROTOCOLS.md``.

Run::

    python examples/tour.py
"""

from __future__ import annotations

from repro import (
    SwarmHarness,
    SyncGranularProtocol,
    Vec2,
    granular_radius,
    relative_labels,
    ring_positions,
    smallest_enclosing_circle,
    voronoi_diagram,
)


def section(title: str) -> None:
    print(f"\n{'=' * 8} {title} {'=' * 8}")


def main() -> None:
    positions = ring_positions(5, radius=10.0, jitter=0.07)

    section("1. Geometry — the substrate")
    diagram = voronoi_diagram(positions)
    sec = smallest_enclosing_circle(positions)
    print(f"5 robots; SEC centre {sec.center}, radius {sec.radius:.2f}")
    for i, p in enumerate(positions):
        others = [q for q in positions if q != p]
        print(
            f"  robot {i}: Voronoi cell area {diagram[p].polygon.area():7.2f}, "
            f"granular radius {granular_radius(p, others):.2f}"
        )

    section("2. Naming — who is 'robot 3' to an anonymous robot?")
    labels = relative_labels(positions, 0)
    ordered = [index for index, _ in sorted(labels.items(), key=lambda kv: kv[1])]
    print(f"robot 0's relative naming (clockwise from its horizon): {ordered}")
    print("every other robot reconstructs this identical labelling —")
    print("that is how receivers resolve addressees without IDs.")

    section("3. A protocol — bits as excursions")
    harness = SwarmHarness(
        positions, protocol_factory=lambda: SyncGranularProtocol(), sigma=4.0
    )
    harness.simulator.protocol_of(0).send_bits(3, [1, 0, 1])
    harness.run(8)
    received = harness.simulator.protocol_of(3).received
    print(f"robot 0 queued [1, 0, 1] for robot 3; "
          f"decoded: {[e.bit for e in received]} in {harness.simulator.time} instants")
    print(f"robot 1 overheard all of it too: "
          f"{[(e.src, e.dst, e.bit) for e in harness.simulator.protocol_of(1).overheard]}")

    section("4. The channel — messages, not bits")
    harness.channel(2).send(4, "entire framed messages ride on those bits")
    harness.pump(lambda h: len(h.channel(4).inbox) >= 1, max_steps=2000)
    message = harness.channel(4).inbox[0]
    print(f"robot 4 received from robot {message.src}: {message.text()!r}")

    section("5. An application — distributed computation")
    from repro import elect_leader

    result = elect_leader(positions=positions, values=[17, 42, 8, 33, 25])
    print(f"leader election over movement messages: robot {result.leader} wins "
          f"(value 42) after {result.messages} messages in {result.steps} instants")

    print("\nTour complete — every layer ran for real; nothing was mocked.")


if __name__ == "__main__":
    main()
