"""Surveillance swarm with a jammed radio — the paper's motivation.

Section 1: robots may "evolve in zones with blocked wireless
communication, e.g., hostile environments where communication are
scrambled or forbidden".  Four surveillance robots report observations
to a collector over wireless; mid-mission the zone is jammed, and the
dual-channel stack silently reroutes reports over movement signals.

Run::

    python examples/surveillance_backup.py
"""

from __future__ import annotations

from repro import (
    DualChannelStack,
    SimulatedWireless,
    SwarmHarness,
    SyncGranularProtocol,
    ring_positions,
)

COLLECTOR = 0
REPORTS = [
    (1, "sector N clear"),
    (2, "sector E: two vehicles"),
    (3, "sector S clear"),
    (1, "sector N: movement detected"),  # sent after the jam starts
    (2, "sector E clear"),
]
JAM_AFTER = 3  # reports delivered before the jammer switches on


def main() -> None:
    count = 4
    harness = SwarmHarness(
        ring_positions(count, radius=12.0, jitter=0.05),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
    )
    wireless = SimulatedWireless(count)
    stacks = [
        DualChannelStack(i, wireless, harness.channel(i), ack_timeout=4)
        for i in range(count)
    ]

    def pump(steps: int) -> None:
        for _ in range(steps):
            harness.run(1)
            for stack in stacks:
                stack.tick(harness.simulator.time)

    for sent, (scout, report) in enumerate(REPORTS):
        if sent == JAM_AFTER:
            print("\n*** the zone is jammed — radios still transmit, nothing arrives ***\n")
            wireless.jam()
        path = stacks[scout].send(COLLECTOR, report, time=harness.simulator.time)
        print(f"scout {scout} files {report!r} (initial path: {path})")
        pump(30)

    # Let the ACK timeouts reroute anything the jammer swallowed.
    pump(1500)

    print("\nCollector inbox (in delivery order):")
    for message in stacks[COLLECTOR].inbox:
        print(f"  [{message.via:9s}] scout {message.src}: {message.payload.decode()!r}")

    assert len(stacks[COLLECTOR].inbox) == len(REPORTS), "a report was lost!"
    vias = [m.via for m in stacks[COLLECTOR].inbox]
    print(
        f"\n{vias.count('wireless')} report(s) by radio, "
        f"{vias.count('movement')} rerouted over movement signals."
    )
    print(f"frames lost to jamming: {wireless.frames_lost}")


if __name__ == "__main__":
    main()
