"""An asynchronous two-robot conversation, with the Figure 5 geometry.

Two robots chat under a fair asynchronous scheduler using Protocol
Async2's implicit acknowledgements (Lemma 4.1): drift along the common
horizon line while idle, perpendicular excursions to signal bits, and
"seen the peer move twice" as the delivery receipt.  The bounded
variant keeps both robots inside fixed bands.

Run::

    python examples/async_chat.py
"""

from __future__ import annotations

from repro import run_chat

SCRIPT = [
    (0, "any movement on your side?"),
    (1, "negative"),
    (0, "returning to base"),
    (1, "copy"),
]


def main() -> None:
    result = run_chat(SCRIPT, asynchronous=True, separation=10.0, seed=4)

    print("Transcript (in delivery order):")
    for speaker, text, instant in result.transcript:
        print(f"  t={instant:6d}  robot {speaker}: {text!r}")

    print(f"\nsimulated instants: {result.steps}")
    print(f"distance both robots covered while talking: "
          f"{result.distance_travelled:.1f} units")
    print("(asynchrony is expensive: every bit waits for two observed")
    print(" position changes of the peer — the implicit acknowledgement)")


if __name__ == "__main__":
    main()
