"""Quickstart — send a text message between deaf-and-dumb robots.

Six identified robots stand on a ring.  Robot 0 sends a message to
robot 3 purely by wiggling inside its granular disc; every robot
watches everyone and decodes the movement signals.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SwarmHarness, SyncGranularProtocol, ring_positions
from repro.analysis.render import render_configuration


def main() -> None:
    positions = ring_positions(6, radius=10.0, jitter=0.05)
    print("The swarm (robot i drawn as its id):")
    print(render_configuration(positions))

    harness = SwarmHarness(
        positions,
        protocol_factory=lambda: SyncGranularProtocol(naming="identified"),
        sigma=4.0,
    )

    message = "hello, robot 3 — no radio needed"
    bits = harness.channel(0).send(3, message)
    print(f"\nrobot 0 -> robot 3: {message!r} ({bits} bits queued)")

    delivered = harness.pump(lambda h: len(h.channel(3).inbox) >= 1, max_steps=2000)
    assert delivered, "message should arrive"

    received = harness.channel(3).inbox[0]
    print(f"robot 3 received: {received.text()!r}")
    print(f"from robot {received.src}, completed at instant {received.completed_at}")
    print(f"simulated instants: {harness.simulator.time} "
          f"({harness.simulator.time / bits:.1f} per bit — the paper's 2/bit)")

    # The medium is a broadcast: everyone overheard the message.
    eavesdropper = harness.monitors[5]
    overheard = eavesdropper.log[0]
    print(f"robot 5 overheard it too: {overheard.payload.decode()!r}")


if __name__ == "__main__":
    main()
