"""A convoy that chats while it travels (Section 5 remark).

The swarm flocks North at an agreed speed (a fraction of the SEC
diameter per instant — a unit-free quantity every robot computes
identically) while robots exchange messages; observers subtract the
agreed drift before decoding, so communication is unaffected by the
travel.

Run::

    python examples/flocking_convoy.py
"""

from __future__ import annotations

from repro import FlockingProtocol, SwarmHarness, SyncGranularProtocol, ring_positions
from repro.analysis.render import render_paths
from repro.geometry.vec import Vec2


def main() -> None:
    positions = ring_positions(5, radius=10.0, jitter=0.06)
    harness = SwarmHarness(
        positions,
        protocol_factory=lambda: FlockingProtocol(
            SyncGranularProtocol(),
            direction=Vec2(0.0, 1.0),
            speed_fraction=0.02,
        ),
        sigma=6.0,
    )

    harness.channel(0).send(2, "convoy: maintain spacing")
    harness.channel(3).send(1, "ack from the rear")

    done = harness.pump(
        lambda h: len(h.channel(2).inbox) >= 1 and len(h.channel(1).inbox) >= 1,
        max_steps=3000,
    )
    assert done

    print("Messages delivered while the convoy was moving:")
    for receiver in (2, 1):
        message = harness.channel(receiver).inbox[0]
        print(f"  robot {message.src} -> robot {receiver}: {message.text()!r}")

    trace = harness.simulator.trace
    travelled = [
        trace.initial_positions[i].distance_to(harness.simulator.positions[i])
        for i in range(harness.count)
    ]
    print(f"\ninstants: {harness.simulator.time}")
    print(f"distance flocked per robot: "
          + ", ".join(f"{d:.1f}" for d in travelled))

    print("\nTrajectories (o = start, digit = final position):")
    print(render_paths(trace, width=64, height=22))


if __name__ == "__main__":
    main()
