"""A custom movement protocol: liveness beacons.

Companion to ``docs/EXTENDING.md`` — implements the Protocol contract
from scratch.  Every robot bounces between its home and a beacon point
inside its granular; observers timestamp each peer's last observed
movement and suspect peers that have been still too long.

One robot is wired to crash mid-run; everyone else detects it.

Run::

    python examples/custom_protocol.py
"""

from __future__ import annotations

from typing import Dict, List

from repro import Robot, Simulator, Vec2
from repro.apps.harness import ring_positions
from repro.geometry.granular import granular_radius
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol


class BeaconProtocol(Protocol):
    """Bounce forever; suspect peers that stop bouncing.

    Args:
        suspect_after: a peer unseen moving for this many of our own
            activations is suspected crashed.
        crash_at: for the demo — stop moving after this many
            activations (None = live forever).
    """

    def __init__(self, suspect_after: int = 6, crash_at: int | None = None) -> None:
        super().__init__()
        self.suspect_after = suspect_after
        self.crash_at = crash_at
        self._home = Vec2.zero()
        self._beacon = Vec2.zero()
        self._outbound = True
        self._last_seen: Dict[int, Vec2] = {}
        self._still_for: Dict[int, int] = {}

    # -- the contract --------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        self._home = info.initial_positions[info.index]
        others = [
            p for i, p in enumerate(info.initial_positions) if i != info.index
        ]
        radius = granular_radius(self._home, others)
        step = min(0.4 * radius, info.sigma)
        self._beacon = self._home + Vec2(0.0, step)
        self._still_for = {i: 0 for i in range(info.count) if i != info.index}

    def _decode(self, observation: Observation) -> List[BitEvent]:
        for peer in self._still_for:
            position = observation.position_of(peer)
            previous = self._last_seen.get(peer)
            if previous is None or position != previous:
                self._still_for[peer] = 0
            else:
                self._still_for[peer] += 1
            self._last_seen[peer] = position
        return []  # beacons carry liveness, not data bits

    def _compute(self, observation: Observation) -> Vec2:
        if self.crash_at is not None and self.activations > self.crash_at:
            return observation.self_position  # the simulated crash
        self._outbound = not self._outbound
        return self._beacon if self._outbound else self._home

    # -- query surface ---------------------------------------------------
    def suspected(self) -> List[int]:
        """Peers that have been still for too long."""
        return sorted(
            peer
            for peer, still in self._still_for.items()
            if still >= self.suspect_after
        )


def main() -> None:
    crash_victim = 3
    positions = ring_positions(5, radius=10.0, jitter=0.06)
    robots = [
        Robot(
            position=p,
            protocol=BeaconProtocol(crash_at=10 if i == crash_victim else None),
            sigma=4.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    sim = Simulator(robots)
    sim.run(30)

    print(f"robot {crash_victim} silently crashed at t=10\n")
    for i in range(5):
        if i == crash_victim:
            continue
        protocol = robots[i].protocol
        assert isinstance(protocol, BeaconProtocol)
        print(f"robot {i} suspects: {protocol.suspected()}")

    verdicts = {
        tuple(r.protocol.suspected())  # type: ignore[attr-defined]
        for i, r in enumerate(robots)
        if i != crash_victim
    }
    assert verdicts == {(crash_victim,)}, "detection must be unanimous"
    print("\nunanimous and correct — failure detection by observation alone.")


if __name__ == "__main__":
    main()
