"""Self-stabilization demo: a transient fault and the recovery.

A five-robot swarm chats over epoch-based granular communication
(Section 5's stabilization sketch).  Mid-run, a gust of wind (the
``displace`` fault-injection API) throws robot 3 far off its position.
Traffic in the corrupted epoch garbles; at the next epoch boundary all
robots silently re-run the Voronoi/naming preprocessing from what they
now see, and messages flow again — including from the displaced robot
at its new home.

Run::

    python examples/stabilization_demo.py
"""

from __future__ import annotations

from repro import SwarmHarness, Vec2, ring_positions
from repro.stabilization import EpochGranularProtocol

EPOCH = 16


def main() -> None:
    harness = SwarmHarness(
        ring_positions(5, radius=10.0, jitter=0.06),
        protocol_factory=lambda: EpochGranularProtocol(epoch_length=EPOCH),
        sigma=4.0,
    )

    print(f"epoch length: {EPOCH} instants "
          f"(capacity {harness.simulator.protocol_of(0).epoch_capacity} bits/epoch)\n")

    # Healthy epoch: a message goes through.
    harness.channel(0).send(2, "pre-fault ping")
    assert harness.pump(lambda h: len(h.channel(2).inbox) >= 1, max_steps=300)
    print(f"t={harness.simulator.time:3d}  robot 2 got "
          f"{harness.channel(2).inbox[0].text()!r}")

    # The gust of wind.
    harness.simulator.displace(3, Vec2(34.0, 31.0))
    print(f"t={harness.simulator.time:3d}  *** robot 3 blown to (34, 31) ***")

    # Let the current (corrupted) epoch play out and the next begin.
    harness.run(2 * EPOCH)
    failures = [
        harness.simulator.protocol_of(i).decode_failures for i in range(5)
    ]
    print(f"t={harness.simulator.time:3d}  decode failures during the fault: {failures}")

    # The displaced robot talks from its new position.
    harness.channel(3).send(1, "still here, new address")
    assert harness.pump(
        lambda h: any(m.src == 3 for m in h.channel(1).inbox), max_steps=600
    )
    recovered = next(m for m in harness.channel(1).inbox if m.src == 3)
    print(f"t={harness.simulator.time:3d}  robot 1 got {recovered.text()!r} "
          f"from the displaced robot")

    epoch = harness.simulator.protocol_of(0).epoch
    print(f"\nconverged: communication restored in epoch {epoch} "
          "without any robot being told about the fault.")


if __name__ == "__main__":
    main()
