"""A relay network of robots with limited visibility (§5 open problem).

Five robots form a line; each only sees its immediate neighbours
(visibility radius 12, spacing 10).  Robot 0 sends a message to robot
4: the flooding router relays it hop by hop, every hop being an
ordinary movement-signal transmission between mutually visible robots.

Run::

    python examples/relay_network.py
"""

from __future__ import annotations

from repro import (
    FloodRouter,
    LocalGranularProtocol,
    MovementChannel,
    Robot,
    Vec2,
    VisibilitySimulator,
    visibility_is_connected,
)
from repro.visibility.graph import shortest_route

SPACING = 10.0
RADIUS = 12.0
COUNT = 5


def main() -> None:
    positions = [Vec2(SPACING * i, 0.0) for i in range(COUNT)]
    print(f"{COUNT} robots in a line, spacing {SPACING}, visibility {RADIUS}")
    print(f"visibility graph connected: {visibility_is_connected(positions, RADIUS)}")
    print(f"fewest-hops route 0 -> 4: {shortest_route(positions, RADIUS, 0, 4)}")

    robots = [
        Robot(
            position=p,
            protocol=LocalGranularProtocol(),
            sigma=4.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    simulator = VisibilitySimulator(robots, visibility_radius=RADIUS)
    channels = [MovementChannel(r.protocol) for r in robots]
    routers = [FloodRouter(c) for c in channels]

    message = "relayed across the dark"
    copies = routers[0].send(4, message)
    print(f"\nrobot 0 -> robot 4: {message!r} "
          f"(destination invisible; {copies} initial copies flooded)")

    for _ in range(6000):
        simulator.step()
        for router in routers:
            router.pump(simulator.time)
        if routers[4].inbox:
            break

    delivered = routers[4].inbox[0]
    print(f"robot 4 received {delivered.payload.decode()!r} "
          f"from robot {delivered.origin} at instant {delivered.delivered_at}")
    hops = 16 - delivered.hops_remaining + 1
    print(f"hops taken: {hops}")
    print("relay work per robot:", [router.forwarded for router in routers])


if __name__ == "__main__":
    main()
