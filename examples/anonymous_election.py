"""Leader election among anonymous robots with chirality only.

The weakest Section 3 regime: no observable IDs, no compasses, private
unit measures and rotations — only a shared handedness.  Addressing
uses the Section 3.4 relative naming (smallest enclosing circle +
horizon lines); the election itself is the classical max-value
exchange, with each robot's "value" standing in for sensor readings
the swarm wants to aggregate.

Run::

    python examples/anonymous_election.py
"""

from __future__ import annotations

from repro import elect_leader, relative_labels, ring_positions
from repro.analysis.render import render_configuration


def main() -> None:
    positions = ring_positions(5, radius=10.0, jitter=0.08)
    battery_levels = [74, 91, 62, 88, 55]  # per-robot private values

    print("Anonymous swarm (drawn by tracking index, invisible to the robots):")
    print(render_configuration(positions))

    print("\nRelative naming (Section 3.4): each robot's private labelling")
    for subject in range(len(positions)):
        labels = relative_labels(positions, subject)
        ordered = [index for index, _ in sorted(labels.items(), key=lambda kv: kv[1])]
        print(f"  as seen by robot {subject}: clockwise order {ordered}")

    result = elect_leader(
        positions=positions,
        values=battery_levels,
        naming="sec",
    )
    print(f"\nElected leader: robot {result.leader} "
          f"(battery {battery_levels[result.leader]}%)")
    print(f"all {len(result.decided_by)} robots agree: "
          f"{set(result.decided_by.values()) == {result.leader}}")
    print(f"{result.messages} announcement messages exchanged by movement "
          f"in {result.steps} instants")


if __name__ == "__main__":
    main()
