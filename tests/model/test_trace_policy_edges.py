"""Edge cases for trace retention and simulator construction.

These pin down the exact boundaries that the broad policy tests in
``tests/perf/test_trace_policy.py`` step over: lookups *at* the ring
eviction frontier (first retained vs last evicted instant), stride=1
rings wrapping many times over, and the duplicate-initial-position
rejection in ``Simulator.__init__``.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import Protocol
from repro.model.robot import Robot
from repro.model.simulator import Simulator
from repro.model.trace import TracePolicy


class Drift(Protocol):
    """Move right by a fixed amount every activation."""

    def _decode(self, observation: Observation):
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position + Vec2(0.5, 0.0)


def drifting(count: int = 2, **simulator_kwargs) -> Simulator:
    robots = [
        Robot(position=Vec2(0.0, float(4 * i)), protocol=Drift(), sigma=1.0)
        for i in range(count)
    ]
    return Simulator(robots, **simulator_kwargs)


class TestEvictionBoundary:
    def test_exactly_full_ring_drops_nothing(self):
        sim = drifting(trace_policy=TracePolicy(capacity=6))
        sim.run(6)
        assert sim.trace.dropped == 0
        assert [s.time for s in sim.trace.steps] == list(range(6))
        # Every instant, including the very first, is still retrievable.
        assert sim.trace.positions_at(1) == sim.trace.steps[0].positions

    def test_one_past_capacity_evicts_exactly_the_oldest(self):
        sim = drifting(trace_policy=TracePolicy(capacity=6))
        sim.run(7)
        assert sim.trace.dropped == 1
        # Instant 1 (step time=0) was just evicted; instant 2 is the
        # new frontier and must still resolve.
        with pytest.raises(ModelError, match="not retained"):
            sim.trace.positions_at(1)
        assert sim.trace.positions_at(2) == sim.trace.steps[0].positions

    def test_lookup_at_both_ends_of_the_retained_window(self):
        sim = drifting(trace_policy=TracePolicy(capacity=4))
        sim.run(10)
        times = sim.trace.retained_times()
        assert times == [6, 7, 8, 9]
        # The binary search must hit both ends of the window exactly.
        assert sim.trace.positions_at(times[0] + 1) == sim.trace.steps[0].positions
        assert sim.trace.positions_at(times[-1] + 1) == sim.trace.steps[-1].positions
        # One before the window and one past the end both fail cleanly.
        with pytest.raises(ModelError, match="not retained"):
            sim.trace.positions_at(times[0])
        with pytest.raises(ModelError, match="not retained"):
            sim.trace.positions_at(times[-1] + 2)

    def test_initial_configuration_survives_total_eviction(self):
        sim = drifting(trace_policy=TracePolicy(capacity=1))
        sim.run(20)
        # The ring holds a single step, yet P(t_0) is not evictable.
        assert sim.trace.positions_at(0) == sim.trace.initial_positions
        assert len(sim.trace.steps) == 1
        assert sim.trace.dropped == 19

    def test_capacity_one_tracks_only_the_latest(self):
        sim = drifting(trace_policy=TracePolicy(capacity=1))
        for expected_time in range(5):
            sim.step()
            assert [s.time for s in sim.trace.steps] == [expected_time]
            assert sim.trace.positions_at(expected_time + 1) == sim.positions


class TestStrideOneRingWraparound:
    def test_window_stays_contiguous_over_many_wraps(self):
        sim = drifting(trace_policy=TracePolicy(capacity=3, stride=1))
        sim.run(50)
        # stride=1 records every instant, so the ring wraps 47 times and
        # the surviving window is always the contiguous tail.
        assert sim.trace.retained_times() == [47, 48, 49]
        assert sim.trace.dropped == 47
        assert sim.trace.skipped == 0
        assert sim.trace.total_steps == 50

    def test_counters_after_each_single_step(self):
        sim = drifting(trace_policy=TracePolicy(capacity=2, stride=1))
        for t in range(8):
            sim.step()
            assert sim.trace.dropped == max(0, t - 1)
            assert sim.trace.retained_times() == list(range(max(0, t - 1), t + 1))

    def test_path_metrics_use_only_the_window(self):
        full = drifting(count=1)
        ring = drifting(count=1, trace_policy=TracePolicy(capacity=4, stride=1))
        full.run(12)
        ring.run(12)
        # The robot drifts 0.5/step; the bounded path sees the initial
        # position plus the last 4 steps, not the whole journey.
        assert full.trace.distance_travelled(0) == pytest.approx(6.0)
        assert ring.trace.distance_travelled(0) == pytest.approx(
            (12 - 4) * 0.5 + 4 * 0.5
        )
        assert len(ring.trace.path_of(0)) == 5


class TestDuplicatePositionRejection:
    def _robots(self, positions):
        return [Robot(position=p, protocol=Drift(), sigma=1.0) for p in positions]

    def test_exact_duplicate_rejected_naming_both_indices(self):
        with pytest.raises(ModelError, match="robots 0 and 2"):
            Simulator(
                self._robots([Vec2(0.0, 0.0), Vec2(5.0, 0.0), Vec2(0.0, 0.0)])
            )

    def test_adjacent_duplicate_rejected(self):
        with pytest.raises(ModelError, match="share the initial position"):
            Simulator(self._robots([Vec2(1.0, 2.0), Vec2(1.0, 2.0)]))

    def test_negative_zero_collides_with_zero(self):
        # Vec2(-0.0, 0.0) == Vec2(0.0, 0.0) and must hash identically;
        # the duplicate check cannot be fooled by the sign of zero.
        with pytest.raises(ModelError, match="share the initial position"):
            Simulator(self._robots([Vec2(0.0, 0.0), Vec2(-0.0, -0.0)]))

    def test_nearby_but_distinct_positions_accepted(self):
        sim = Simulator(
            self._robots([Vec2(0.0, 0.0), Vec2(1e-12, 0.0), Vec2(0.0, 1e-12)])
        )
        assert sim.count == 3

    def test_displace_onto_occupied_position_rejected(self):
        sim = drifting(count=2)
        with pytest.raises(ModelError, match="collides with robot 1"):
            sim.displace(0, Vec2(0.0, 4.0))
