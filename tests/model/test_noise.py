"""Tests for the noisy-observation model and the robust decode mode."""

from __future__ import annotations

import pytest

from repro.apps.harness import ring_positions
from repro.errors import ModelError, ProtocolError, ReproError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.noise.simulator import NoisyObservationSimulator
from repro.protocols.sync_granular import SyncGranularProtocol

BITS = [1, 0, 1]


def build(noise: float, seed: int = 0, robust: bool = True):
    positions = ring_positions(5, radius=10.0, jitter=0.06)
    kwargs = {"off_home_fraction": 0.25, "tolerate_ambiguity": True} if robust else {}
    robots = [
        Robot(
            position=p,
            protocol=SyncGranularProtocol(**kwargs),
            sigma=4.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    return NoisyObservationSimulator(robots, noise_std=noise, seed=seed), robots


class TestSimulator:
    def test_noise_validated(self):
        with pytest.raises(ModelError):
            build(noise=-0.1)

    def test_zero_noise_is_exact(self):
        sim, robots = build(noise=0.0, robust=False)
        robots[0].protocol.send_bits(2, BITS)
        sim.run(2 * len(BITS) + 2)
        assert [e.bit for e in robots[2].protocol.received] == BITS

    def test_own_position_is_exact(self):
        """Odometry: a robot's view of itself carries no noise."""
        sim, robots = build(noise=0.5, seed=3)
        obs = sim._observe(1)
        true_local = robots[1].frame.to_local(sim.positions[1], sim.trace.initial_positions[1])
        assert obs.self_position == true_local

    def test_other_positions_are_noisy(self):
        sim, robots = build(noise=0.5, seed=3)
        obs = sim._observe(1)
        true_local = robots[1].frame.to_local(sim.positions[0], sim.trace.initial_positions[1])
        assert obs.position_of(0) != true_local

    def test_determinism(self):
        results = []
        for _ in range(2):
            sim, robots = build(noise=0.05, seed=9)
            robots[0].protocol.send_bits(2, BITS)
            sim.run(10)
            results.append(tuple(e.bit for e in robots[2].protocol.received))
        assert results[0] == results[1]


class TestRobustDecode:
    def test_params_validated(self):
        with pytest.raises(ProtocolError):
            SyncGranularProtocol(off_home_fraction=0.0)
        with pytest.raises(ProtocolError):
            SyncGranularProtocol(off_home_fraction=0.5, excursion_fraction=0.45)

    def test_moderate_noise_delivered(self):
        sim, robots = build(noise=0.05, seed=1, robust=True)
        robots[0].protocol.send_bits(2, BITS)
        sim.run(2 * len(BITS) + 2)
        assert [e.bit for e in robots[2].protocol.received] == BITS

    def test_exact_decode_breaks_under_noise(self):
        sim, robots = build(noise=0.05, seed=1, robust=False)
        robots[0].protocol.send_bits(2, BITS)
        broken = False
        try:
            sim.run(2 * len(BITS) + 2)
            broken = [e.bit for e in robots[2].protocol.received] != BITS
        except ReproError:
            broken = True
        assert broken

    def test_no_phantom_bits_when_idle(self):
        """Moderate noise on a fully idle swarm produces zero events."""
        sim, robots = build(noise=0.05, seed=4, robust=True)
        sim.run(40)
        for robot in robots:
            assert robot.protocol.overheard == ()
