"""Tests for activation schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulerError
from repro.model.scheduler import (
    FairAsynchronousScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    SynchronousScheduler,
)


class TestSynchronous:
    def test_everyone_always_active(self):
        sched = SynchronousScheduler()
        for t in range(5):
            assert sched.activations(t, 4) == frozenset(range(4))

    def test_empty_swarm_rejected(self):
        with pytest.raises(SchedulerError):
            SynchronousScheduler().activations(0, 0)


class TestFairAsynchronous:
    def test_validation(self):
        with pytest.raises(SchedulerError):
            FairAsynchronousScheduler(fairness_bound=0)
        with pytest.raises(SchedulerError):
            FairAsynchronousScheduler(fairness_bound=-3)
        with pytest.raises(SchedulerError):
            FairAsynchronousScheduler(activation_probability=0.0)
        with pytest.raises(SchedulerError):
            FairAsynchronousScheduler(activation_probability=-0.2)
        with pytest.raises(SchedulerError):
            FairAsynchronousScheduler(activation_probability=1.5)

    def test_fairness_bound_one_degenerates_to_synchronous(self):
        # With a bound of 1 the fairness patch forces every robot at
        # every instant, whatever the coin flips say: the scheduler IS
        # the synchronous scheduler.  Regression guard for the event
        # engine's fairness reasoning (docs/EVENTS.md).
        for seed in (0, 7, 99):
            sched = FairAsynchronousScheduler(
                fairness_bound=1,
                activation_probability=0.01,
                seed=seed,
                activate_all_first=False,
            )
            for t in range(50):
                assert sched.activations(t, 5) == frozenset(range(5))

    def test_activate_all_first(self):
        sched = FairAsynchronousScheduler(seed=1, activate_all_first=True)
        assert sched.activations(0, 5) == frozenset(range(5))

    def test_no_activate_all_first(self):
        sched = FairAsynchronousScheduler(
            seed=1, activate_all_first=False, activation_probability=0.01
        )
        first = sched.activations(0, 50)
        assert len(first) >= 1

    def test_nonempty_always(self):
        sched = FairAsynchronousScheduler(
            fairness_bound=1000, activation_probability=0.01, seed=3
        )
        for t in range(200):
            assert len(sched.activations(t, 6)) >= 1

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_fairness_bound_holds(self, bound, count, seed):
        """Every robot runs at least once in every window of `bound`."""
        sched = FairAsynchronousScheduler(
            fairness_bound=bound,
            activation_probability=0.2,
            seed=seed,
            activate_all_first=False,
        )
        last = [-1] * count
        for t in range(300):
            active = sched.activations(t, count)
            for i in range(count):
                if i in active:
                    last[i] = t
                else:
                    assert t - last[i] < bound + 1, f"robot {i} starved at t={t}"

    def test_out_of_order_driving_rejected(self):
        sched = FairAsynchronousScheduler(seed=0)
        sched.activations(0, 3)
        with pytest.raises(SchedulerError):
            sched.activations(5, 3)

    def test_count_change_rejected(self):
        sched = FairAsynchronousScheduler(seed=0)
        sched.activations(0, 3)
        with pytest.raises(SchedulerError):
            sched.activations(1, 4)

    def test_determinism(self):
        a = FairAsynchronousScheduler(seed=7)
        b = FairAsynchronousScheduler(seed=7)
        for t in range(50):
            assert a.activations(t, 5) == b.activations(t, 5)

    def test_probability_one_is_synchronous(self):
        sched = FairAsynchronousScheduler(activation_probability=1.0, seed=0)
        for t in range(10):
            assert sched.activations(t, 4) == frozenset(range(4))


class TestRoundRobin:
    def test_cycles(self):
        sched = RoundRobinScheduler()
        seen = [sched.activations(t, 3) for t in range(6)]
        assert seen == [
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
        ]

    def test_activate_all_first(self):
        sched = RoundRobinScheduler(activate_all_first=True)
        assert sched.activations(0, 3) == frozenset({0, 1, 2})
        assert sched.activations(1, 3) == frozenset({0})


class TestScripted:
    def test_replays(self):
        sched = ScriptedScheduler([[0], [1, 2], [0, 1, 2]])
        assert sched.activations(0, 3) == frozenset({0})
        assert sched.activations(1, 3) == frozenset({1, 2})
        assert sched.activations(2, 3) == frozenset({0, 1, 2})

    def test_exhaustion(self):
        sched = ScriptedScheduler([[0]])
        sched.activations(0, 1)
        with pytest.raises(SchedulerError):
            sched.activations(1, 1)

    def test_empty_step_rejected(self):
        with pytest.raises(SchedulerError):
            ScriptedScheduler([[0], []])

    def test_unknown_robot_rejected(self):
        sched = ScriptedScheduler([[5]])
        with pytest.raises(SchedulerError):
            sched.activations(0, 3)
