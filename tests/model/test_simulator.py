"""Tests for the SSM simulation engine."""

from __future__ import annotations

from typing import List

import pytest

from repro.errors import ModelError, ProtocolError
from repro.geometry.frames import Frame
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BitEvent, Protocol
from repro.model.robot import Robot
from repro.model.scheduler import RoundRobinScheduler, ScriptedScheduler
from repro.model.simulator import Simulator


class GoTo(Protocol):
    """Test protocol: always head for a fixed local target."""

    def __init__(self, target: Vec2) -> None:
        super().__init__()
        self.target = target
        self.observed: List[Observation] = []

    def _decode(self, observation: Observation) -> List[BitEvent]:
        self.observed.append(observation)
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return self.target


class Still(Protocol):
    """Test protocol: never move."""

    def _decode(self, observation: Observation) -> List[BitEvent]:
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position


class TestConstruction:
    def test_needs_robots(self):
        with pytest.raises(ModelError):
            Simulator([])

    def test_shared_protocol_instance_rejected(self):
        shared = Still()
        robots = [
            Robot(position=Vec2(0, 0), protocol=shared),
            Robot(position=Vec2(1, 0), protocol=shared),
        ]
        with pytest.raises(ModelError):
            Simulator(robots)

    def test_coincident_positions_rejected(self):
        robots = [
            Robot(position=Vec2(0, 0), protocol=Still()),
            Robot(position=Vec2(0, 0), protocol=Still()),
        ]
        with pytest.raises(ModelError):
            Simulator(robots)

    def test_mixed_identification_rejected(self):
        robots = [
            Robot(position=Vec2(0, 0), protocol=Still(), observable_id=1),
            Robot(position=Vec2(1, 0), protocol=Still()),
        ]
        with pytest.raises(ModelError):
            Simulator(robots)

    def test_duplicate_ids_rejected(self):
        robots = [
            Robot(position=Vec2(0, 0), protocol=Still(), observable_id=1),
            Robot(position=Vec2(1, 0), protocol=Still(), observable_id=1),
        ]
        with pytest.raises(ModelError):
            Simulator(robots)

    def test_rebinding_protocol_rejected(self):
        p = Still()
        Simulator([Robot(position=Vec2(0, 0), protocol=p)])
        with pytest.raises(ProtocolError):
            Simulator([Robot(position=Vec2(0, 0), protocol=p)])

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            Robot(position=Vec2(0, 0), protocol=Still(), sigma=0.0)


class TestBinding:
    def test_binding_info_contents(self):
        p0, p1 = Still(), Still()
        Simulator(
            [
                Robot(position=Vec2(0, 0), protocol=p0, sigma=1.0, observable_id=7),
                Robot(position=Vec2(4, 0), protocol=p1, sigma=2.0, observable_id=3),
            ]
        )
        info = p0.info
        assert info.index == 0
        assert info.count == 2
        assert info.sigma == 1.0
        assert info.observable_ids == (7, 3)
        assert info.initial_positions[0] == Vec2(0, 0)
        assert info.initial_positions[1] == Vec2(4, 0)

    def test_initial_positions_in_local_frame(self):
        p0 = Still()
        frame = Frame(rotation=0.0, scale=2.0)
        Simulator(
            [
                Robot(position=Vec2(0, 0), protocol=p0, frame=frame, sigma=1.0),
                Robot(position=Vec2(4, 0), protocol=Still(), sigma=1.0),
            ]
        )
        # Scale 2 halves distances; sigma is converted too.
        assert p0.info.initial_positions[1] == Vec2(2, 0)
        assert p0.info.sigma == 0.5

    def test_anonymous_has_no_ids(self):
        p0 = Still()
        Simulator(
            [
                Robot(position=Vec2(0, 0), protocol=p0),
                Robot(position=Vec2(1, 0), protocol=Still()),
            ]
        )
        assert p0.info.observable_ids is None


class TestStepping:
    def test_sigma_clamps_movement(self):
        p = GoTo(Vec2(10.0, 0.0))
        sim = Simulator([Robot(position=Vec2(0, 0), protocol=p, sigma=1.0)])
        sim.step()
        assert sim.positions[0] == Vec2(1.0, 0.0)
        sim.step()
        assert sim.positions[0] == Vec2(2.0, 0.0)

    def test_reaches_close_target_exactly(self):
        p = GoTo(Vec2(0.5, 0.0))
        sim = Simulator([Robot(position=Vec2(0, 0), protocol=p, sigma=1.0)])
        sim.step()
        assert sim.positions[0] == Vec2(0.5, 0.0)

    def test_inactive_robots_do_not_move(self):
        sched = ScriptedScheduler([[0], [1]])
        # Targets are in each robot's stationary local frame (anchored
        # at its initial position): both head toward world (5, 0).
        robots = [
            Robot(position=Vec2(0, 0), protocol=GoTo(Vec2(5, 0)), sigma=1.0),
            Robot(position=Vec2(10, 0), protocol=GoTo(Vec2(-5, 0)), sigma=1.0),
        ]
        sim = Simulator(robots, sched)
        sim.step()
        assert sim.positions == (Vec2(1, 0), Vec2(10, 0))
        sim.step()
        assert sim.positions == (Vec2(1, 0), Vec2(9, 0))

    def test_all_actives_observe_same_configuration(self):
        """SSM simultaneity: both active robots see P(t), not each
        other's new positions."""
        a = GoTo(Vec2(1, 0))  # world (1, 0)
        b = GoTo(Vec2(1, 0))  # anchored at (10, 0): world (11, 0)
        sim = Simulator(
            [
                Robot(position=Vec2(0, 0), protocol=a, sigma=5.0),
                Robot(position=Vec2(10, 0), protocol=b, sigma=5.0),
            ]
        )
        sim.step()
        # Each observed the other at its time-0 position, expressed in
        # its own stationary frame (b's anchor is (10, 0)).
        assert a.observed[0].position_of(1) == Vec2(10, 0)
        assert b.observed[0].position_of(0) == Vec2(-10, 0)
        sim.step()
        assert a.observed[1].position_of(1) == Vec2(11, 0)
        assert b.observed[1].position_of(0) == Vec2(-9, 0)

    def test_local_frame_target_conversion(self):
        """A target in rotated local coordinates lands correctly in world."""
        import math

        p = GoTo(Vec2(1.0, 0.0))  # local +x
        frame = Frame(rotation=math.pi / 2.0)  # local +x is world +y
        sim = Simulator([Robot(position=Vec2(0, 0), protocol=p, frame=frame, sigma=5.0)])
        sim.step()
        assert sim.positions[0].x == pytest.approx(0.0, abs=1e-12)
        assert sim.positions[0].y == pytest.approx(1.0)

    def test_observation_in_stationary_frame(self):
        """Observations stay anchored at the initial position."""
        p = GoTo(Vec2(1.0, 0.0))
        other = Still()
        sim = Simulator(
            [
                Robot(position=Vec2(0, 0), protocol=p, sigma=5.0),
                Robot(position=Vec2(10, 0), protocol=other, sigma=5.0),
            ]
        )
        sim.step()
        sim.step()
        # After moving to (1,0), the robot still sees the other at
        # (10,0) in its stationary frame, and itself at (1,0).
        last = p.observed[-1]
        assert last.position_of(1) == Vec2(10, 0)
        assert last.self_position == Vec2(1, 0)

    def test_run_and_run_until(self):
        p = GoTo(Vec2(10, 0))
        sim = Simulator([Robot(position=Vec2(0, 0), protocol=p, sigma=1.0)])
        sim.run(3)
        assert sim.time == 3
        reached = sim.run_until(lambda s: s.positions[0].x >= 5.0, max_steps=100)
        assert reached
        assert sim.positions[0].x == pytest.approx(5.0)

    def test_run_until_can_fail(self):
        p = Still()
        sim = Simulator([Robot(position=Vec2(0, 0), protocol=p)])
        assert not sim.run_until(lambda s: False, max_steps=5)
        assert sim.time == 5

    def test_trace_records_history(self):
        sched = RoundRobinScheduler()
        robots = [
            Robot(position=Vec2(0, 0), protocol=GoTo(Vec2(3, 0)), sigma=1.0),
            Robot(position=Vec2(10, 0), protocol=Still(), sigma=1.0),
        ]
        sim = Simulator(robots, sched)
        sim.run(4)
        trace = sim.trace
        assert len(trace) == 4
        assert trace.positions_at(0) == (Vec2(0, 0), Vec2(10, 0))
        assert trace.steps[0].active == frozenset({0})
        assert trace.path_of(0)[-1] == sim.positions[0]
        assert trace.activation_count(0) == 2
        assert trace.activation_count(1) == 2
        assert trace.distance_travelled(1) == 0.0
        assert trace.movements_of(1) == []
