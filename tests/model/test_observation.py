"""Tests for observation snapshots."""

from __future__ import annotations

from repro.geometry.vec import Vec2
from repro.model.observation import Observation, ObservedRobot


def make_observation() -> Observation:
    robots = tuple(
        ObservedRobot(index=i, position=Vec2(float(i), 0.0), observable_id=10 + i)
        for i in range(4)
    )
    return Observation(time=7, self_index=2, robots=robots)


class TestObservation:
    def test_count(self):
        assert make_observation().count == 4

    def test_self_position(self):
        assert make_observation().self_position == Vec2(2.0, 0.0)

    def test_position_of(self):
        obs = make_observation()
        assert obs.position_of(0) == Vec2(0.0, 0.0)
        assert obs.position_of(3) == Vec2(3.0, 0.0)

    def test_others_excludes_self(self):
        obs = make_observation()
        others = obs.others()
        assert [r.index for r in others] == [0, 1, 3]

    def test_positions_tuple(self):
        obs = make_observation()
        assert obs.positions() == (
            Vec2(0.0, 0.0),
            Vec2(1.0, 0.0),
            Vec2(2.0, 0.0),
            Vec2(3.0, 0.0),
        )

    def test_observable_ids_visible(self):
        obs = make_observation()
        assert [r.observable_id for r in obs.robots] == [10, 11, 12, 13]
