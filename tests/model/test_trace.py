"""Tests for trace bookkeeping."""

from __future__ import annotations

import pytest

from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep, bounding_box


def build_trace() -> Trace:
    trace = Trace(initial_positions=(Vec2(0, 0), Vec2(10, 0)))
    trace.steps.append(
        TraceStep(time=0, active=frozenset({0}), positions=(Vec2(1, 0), Vec2(10, 0)))
    )
    trace.steps.append(
        TraceStep(time=1, active=frozenset({0, 1}), positions=(Vec2(1, 1), Vec2(9, 0)))
    )
    return trace


class TestTrace:
    def test_len_iter_count(self):
        trace = build_trace()
        assert len(trace) == 2
        assert trace.count == 2
        assert [s.time for s in trace] == [0, 1]

    def test_positions_at(self):
        trace = build_trace()
        assert trace.positions_at(0) == (Vec2(0, 0), Vec2(10, 0))
        assert trace.positions_at(1) == (Vec2(1, 0), Vec2(10, 0))
        assert trace.positions_at(2) == (Vec2(1, 1), Vec2(9, 0))

    def test_path_and_distance(self):
        trace = build_trace()
        assert trace.path_of(0) == [Vec2(0, 0), Vec2(1, 0), Vec2(1, 1)]
        assert trace.distance_travelled(0) == pytest.approx(2.0)
        assert trace.distance_travelled(1) == pytest.approx(1.0)

    def test_activation_count(self):
        trace = build_trace()
        assert trace.activation_count(0) == 2
        assert trace.activation_count(1) == 1

    def test_min_pairwise_distance(self):
        trace = build_trace()
        # Closest approach: (1,1) vs (9,0) -> sqrt(64+1); but earlier
        # (1,0) vs (10,0) = 9; initial = 10; min is sqrt(65) ~ 8.06.
        assert trace.min_pairwise_distance() == pytest.approx((64 + 1) ** 0.5)

    def test_movements_of(self):
        trace = build_trace()
        moves0 = trace.movements_of(0)
        assert [(t, a, b) for t, a, b in moves0] == [
            (0, Vec2(0, 0), Vec2(1, 0)),
            (1, Vec2(1, 0), Vec2(1, 1)),
        ]
        moves1 = trace.movements_of(1)
        assert len(moves1) == 1
        assert moves1[0][0] == 1


class TestBoundingBox:
    def test_box(self):
        lo, hi = bounding_box([Vec2(1, 5), Vec2(-2, 3), Vec2(0, 9)])
        assert lo == Vec2(-2, 3)
        assert hi == Vec2(1, 9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_box([])
