"""Tests for the Protocol base class surface."""

from __future__ import annotations

from typing import List

import pytest

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol
from repro.model.robot import Robot
from repro.model.simulator import Simulator


class Recorder(Protocol):
    """Emits one synthetic bit event per activation, never moves."""

    def _decode(self, observation: Observation) -> List[BitEvent]:
        other = 1 - self.info.index
        return [
            BitEvent(time=observation.time, src=other, dst=self.info.index, bit=1),
            BitEvent(time=observation.time, src=other, dst=other, bit=0),
        ]

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position


def bound_pair():
    a, b = Recorder(), Recorder()
    sim = Simulator(
        [Robot(position=Vec2(0, 0), protocol=a), Robot(position=Vec2(1, 0), protocol=b)]
    )
    return sim, a, b


class TestQueueing:
    def test_send_bit_validation(self):
        sim, a, _ = bound_pair()
        with pytest.raises(ProtocolError):
            a.send_bit(1, 2)  # not a bit
        with pytest.raises(ProtocolError):
            a.send_bit(5, 0)  # unknown robot
        with pytest.raises(ProtocolError):
            a.send_bit(0, 0)  # self
        a.send_bit(1, 0)
        assert a.pending_bits == 1

    def test_send_bits_order(self):
        sim, a, _ = bound_pair()
        a.send_bits(1, [1, 0, 1])
        assert a.pending_bits == 3
        assert a._next_outgoing() == (1, 1)
        assert a._peek_outgoing() == (1, 0)
        assert a.pending_bits == 2

    def test_unbound_protocol_rejects_use(self):
        p = Recorder()
        with pytest.raises(ProtocolError):
            p.send_bit(1, 0)
        with pytest.raises(ProtocolError):
            _ = p.info


class TestLogs:
    def test_received_vs_overheard_separation(self):
        sim, a, b = bound_pair()
        sim.step()
        # Each decode produced 2 events; only the one addressed to the
        # observer lands in `received`.
        assert len(a.overheard) == 2
        assert len(a.received) == 1
        assert a.received[0].dst == 0
        assert a.activations == 1

    def test_wrong_observation_rejected(self):
        sim, a, b = bound_pair()
        obs = Observation(time=0, self_index=1, robots=())
        with pytest.raises(ProtocolError):
            a.on_activate(obs)

    def test_double_bind_rejected(self):
        sim, a, _ = bound_pair()
        with pytest.raises(ProtocolError):
            a.bind(
                BindingInfo(
                    index=0, count=2, sigma=1.0, initial_positions=(Vec2(0, 0), Vec2(1, 0))
                )
            )
