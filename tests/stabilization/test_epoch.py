"""Tests for epoch-based self-stabilization (Section 5 sketch)."""

from __future__ import annotations

import pytest

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.stabilization.epoch import EpochGranularProtocol


def epoch_harness(count: int = 5, epoch_length: int = 16, naming: str = "identified"):
    return SwarmHarness(
        ring_positions(count, radius=10.0, jitter=0.06),
        protocol_factory=lambda: EpochGranularProtocol(
            epoch_length=epoch_length, naming=naming  # type: ignore[arg-type]
        ),
        identified=(naming == "identified"),
        frame_regime="chirality" if naming == "sec" else "sense_of_direction",
        sigma=4.0,
    )


class TestValidation:
    def test_epoch_length_checked(self):
        with pytest.raises(ProtocolError):
            EpochGranularProtocol(epoch_length=3)

    def test_capacity(self):
        assert EpochGranularProtocol(epoch_length=16).epoch_capacity == 7
        assert EpochGranularProtocol(epoch_length=5).epoch_capacity == 2


class TestFaultFreeOperation:
    def test_delivery_within_one_epoch(self):
        h = epoch_harness()
        h.simulator.protocol_of(0).send_bits(2, [1, 0, 1])
        h.run(16)
        assert [e.bit for e in h.simulator.protocol_of(2).received] == [1, 0, 1]

    def test_delivery_across_epochs(self):
        h = epoch_harness(epoch_length=8)  # capacity 3 bits/epoch
        bits = [1, 0, 1, 0, 1, 0, 1, 0]
        h.simulator.protocol_of(0).send_bits(2, bits)
        h.run(4 * 8)
        assert [e.bit for e in h.simulator.protocol_of(2).received] == bits

    def test_epoch_counter_advances(self):
        h = epoch_harness(epoch_length=8)
        h.run(20)
        assert h.simulator.protocol_of(0).epoch == 2

    def test_sec_naming_mode(self):
        h = epoch_harness(naming="sec")
        h.simulator.protocol_of(1).send_bits(3, [0, 1])
        h.run(16)
        assert [e.bit for e in h.simulator.protocol_of(3).received] == [0, 1]

    def test_framed_message(self):
        h = epoch_harness(epoch_length=32)
        h.channel(0).send(3, "stabilized")
        assert h.pump(lambda hh: len(hh.channel(3).inbox) >= 1, max_steps=3000)
        assert h.channel(3).inbox[0].text() == "stabilized"


class TestTransientFaults:
    def test_recovery_after_displacement(self):
        """Self-stabilization: traffic submitted after the fault (and
        after an epoch boundary) is delivered despite an arbitrary
        robot displacement."""
        h = epoch_harness(epoch_length=16)
        h.run(4)
        h.simulator.displace(3, Vec2(35.0, 35.0))
        # Cross into the next epoch so everyone re-preprocesses.
        h.run(16)
        h.simulator.protocol_of(3).send_bits(1, [0, 1, 1])

        def done(hh):
            from_three = [
                e for e in hh.simulator.protocol_of(1).received if e.src == 3
            ]
            return len(from_three) >= 3

        assert h.pump(done, max_steps=400)
        from_three = [
            e.bit for e in h.simulator.protocol_of(1).received if e.src == 3
        ]
        assert from_three[:3] == [0, 1, 1]

    def test_decode_failures_counted_during_fault(self):
        h = epoch_harness(epoch_length=16)
        h.run(4)
        h.simulator.displace(2, Vec2(40.0, -40.0))
        h.run(8)  # rest of the faulty epoch
        failures = [h.simulator.protocol_of(i).decode_failures for i in range(5)]
        # Observers of the displaced robot choked; the displaced robot
        # itself decodes others fine.
        assert all(f > 0 for i, f in enumerate(failures) if i != 2)
        assert failures[2] == 0

    def test_plain_protocol_stays_broken_for_contrast(self):
        """Without epochs, a displaced robot's transmissions are
        garbage forever — the property stabilization buys."""
        h = SwarmHarness(
            ring_positions(5, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        h.run(4)
        h.simulator.displace(3, Vec2(35.0, 35.0))
        h.simulator.protocol_of(3).send_bits(1, [0, 1, 1])
        try:
            h.run(40)
            correct = [
                e.bit for e in h.simulator.protocol_of(1).received if e.src == 3
            ]
            broken = correct != [0, 1, 1]
        except Exception:
            broken = True  # decoding blew up: also broken
        assert broken

    def test_multiple_faults_eventual_recovery(self):
        h = epoch_harness(epoch_length=16)
        h.run(4)
        h.simulator.displace(1, Vec2(-30.0, 25.0))
        h.run(10)
        h.simulator.displace(4, Vec2(28.0, -31.0))
        h.run(20)  # past the next boundary
        h.simulator.protocol_of(1).send_bits(4, [1, 1, 0])

        def done(hh):
            from_one = [
                e for e in hh.simulator.protocol_of(4).received if e.src == 1
            ]
            return len(from_one) >= 3

        assert h.pump(done, max_steps=400)
        from_one = [e.bit for e in h.simulator.protocol_of(4).received if e.src == 1]
        assert from_one[:3] == [1, 1, 0]


class TestDisplaceAPI:
    def test_validation(self):
        h = epoch_harness()
        with pytest.raises(Exception):
            h.simulator.displace(99, Vec2(0, 0))
        with pytest.raises(Exception):
            h.simulator.displace(0, h.simulator.positions[1])
