"""Unit tests for the adversarial scheduler zoo."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.model.scheduler import SynchronousScheduler
from repro.verify.schedulers import (
    BoundedUnfairScheduler,
    BurstScheduler,
    CrashScheduler,
)

pytestmark = pytest.mark.verify


def drain(scheduler, steps: int, count: int):
    return [scheduler.activations(t, count) for t in range(steps)]


class TestBoundedUnfair:
    def test_all_awake_at_t0(self):
        sets = drain(BoundedUnfairScheduler(seed=1), 1, count=5)
        assert sets[0] == frozenset(range(5))

    def test_fairness_bound_is_respected(self):
        bound = 4
        sets = drain(BoundedUnfairScheduler(fairness_bound=bound, seed=2), 200, 6)
        last = {i: 0 for i in range(6)}
        for t, active in enumerate(sets):
            for i in range(6):
                assert t - last[i] <= bound, f"robot {i} starved at t={t}"
            for i in active:
                last[i] = t

    def test_starvation_is_maximal(self):
        # The adversary's point: most robots wait the whole window.
        bound = 5
        sets = drain(BoundedUnfairScheduler(fairness_bound=bound, seed=3), 100, 4)
        gaps = []
        last = {i: 0 for i in range(4)}
        for t, active in enumerate(sets):
            for i in active:
                if t > 0:
                    gaps.append(t - last[i])
                last[i] = t
        assert max(gaps) == bound

    def test_nonempty_every_instant(self):
        for active in drain(BoundedUnfairScheduler(seed=4), 100, 3):
            assert active

    def test_deterministic_given_seed(self):
        a = drain(BoundedUnfairScheduler(seed=9), 60, 5)
        b = drain(BoundedUnfairScheduler(seed=9), 60, 5)
        assert a == b

    def test_out_of_order_driving_rejected(self):
        scheduler = BoundedUnfairScheduler()
        scheduler.activations(0, 3)
        with pytest.raises(SchedulerError):
            scheduler.activations(5, 3)

    def test_invalid_parameters(self):
        with pytest.raises(SchedulerError):
            BoundedUnfairScheduler(fairness_bound=0)
        with pytest.raises(SchedulerError):
            BoundedUnfairScheduler(stickiness=0)


class TestBurst:
    def test_exclusive_bursts(self):
        length = 3
        sets = drain(BurstScheduler(burst_length=length, seed=1), 100, 4)
        # After the all-awake instant, exactly one robot at a time, in
        # runs of exactly `length`.
        solo = sets[1:]
        assert all(len(s) == 1 for s in solo)
        runs = []
        current, streak = None, 0
        for s in solo:
            robot = next(iter(s))
            if robot == current:
                streak += 1
            else:
                if current is not None:
                    runs.append(streak)
                current, streak = robot, 1
        assert set(runs) == {length}

    def test_every_robot_gets_a_turn(self):
        count = 5
        sets = drain(BurstScheduler(burst_length=2, seed=7), 2 * count * 2 + 1, count)
        seen = set().union(*sets)
        assert seen == set(range(count))

    def test_fairness_bound_formula(self):
        count, length = 4, 3
        bound = (count - 1) * length + 1
        sets = drain(BurstScheduler(burst_length=length, seed=2), 120, count)
        last = {i: 0 for i in range(count)}
        for t, active in enumerate(sets):
            for i in range(count):
                assert t - last[i] <= bound
            for i in active:
                last[i] = t

    def test_invalid_burst_length(self):
        with pytest.raises(SchedulerError):
            BurstScheduler(burst_length=0)


class TestCrash:
    def test_victims_stop_at_crash_time(self):
        scheduler = CrashScheduler(SynchronousScheduler(), crash_time=3, victims=[1])
        sets = drain(scheduler, 10, 4)
        for t, active in enumerate(sets):
            if t < 3:
                assert 1 in active
            else:
                assert 1 not in active

    def test_activation_never_empty(self):
        # Crash every robot the inner scheduler picked: the lowest live
        # index must be substituted.
        scheduler = CrashScheduler(
            BurstScheduler(burst_length=2, seed=1), crash_time=0, victims=[0]
        )
        for active in drain(scheduler, 50, 3):
            assert active
            assert 0 not in active or False  # victims filtered from t=0

    def test_cannot_crash_everyone(self):
        scheduler = CrashScheduler(SynchronousScheduler(), crash_time=0, victims=[0, 1])
        with pytest.raises(SchedulerError):
            scheduler.activations(0, 2)

    def test_invalid_parameters(self):
        with pytest.raises(SchedulerError):
            CrashScheduler(SynchronousScheduler(), crash_time=-1, victims=[0])
        with pytest.raises(SchedulerError):
            CrashScheduler(SynchronousScheduler(), crash_time=0, victims=[])
