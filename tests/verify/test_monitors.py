"""Unit tests for the invariant monitors, on synthetic streams.

The mutants (`test_mutants.py`) prove the monitors fire on real
protocol runs; here each monitor is probed in isolation on
hand-crafted trace steps, including its non-firing side.
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.geometry.vec import Vec2
from repro.model.protocol import BitEvent
from repro.model.trace import TraceStep
from repro.verify.monitors import (
    CollisionFreedomMonitor,
    NoForgedBitsMonitor,
    ReceiptMonitor,
    SchedulerContractMonitor,
    SilenceMonitor,
    TwoInstantsPerBitMonitor,
    _is_subsequence,
)

pytestmark = pytest.mark.verify


class _StubProtocol:
    def __init__(self, idle_silent: bool = True,
                 received: Optional[List[BitEvent]] = None) -> None:
        self.idle_silent = idle_silent
        self.received = tuple(received or ())


class _StubSim:
    """Just enough simulator surface for the monitors."""

    def __init__(self, initial: List[Vec2],
                 protocols: Optional[List[_StubProtocol]] = None) -> None:
        self.count = len(initial)
        self._protocols = protocols or [_StubProtocol() for _ in initial]

        class _Trace:
            initial_positions = tuple(initial)

        self.trace = _Trace()

    def protocol_of(self, index: int) -> _StubProtocol:
        return self._protocols[index]


def step(time: int, active, positions) -> TraceStep:
    return TraceStep(time=time, active=frozenset(active),
                     positions=tuple(positions))


class TestCollision:
    def test_flags_coincident_robots(self):
        sim = _StubSim([Vec2(0, 0), Vec2(5, 0)])
        monitor = CollisionFreedomMonitor()
        monitor.on_step(sim, step(0, {0, 1}, [Vec2(2, 2), Vec2(2, 2)]))
        assert len(monitor.violations) == 1
        assert monitor.violations[0].invariant == "collision"

    def test_silent_on_distinct_positions(self):
        sim = _StubSim([Vec2(0, 0), Vec2(5, 0)])
        monitor = CollisionFreedomMonitor()
        monitor.on_step(sim, step(0, {0, 1}, [Vec2(0, 0), Vec2(5, 0)]))
        assert not monitor.violations


class TestSilence:
    def test_flags_idle_movement(self):
        sim = _StubSim([Vec2(0, 0), Vec2(5, 0)])
        monitor = SilenceMonitor(senders={0})
        monitor.on_step(sim, step(0, {0, 1}, [Vec2(1, 0), Vec2(5.1, 0)]))
        # robot 0 is a sender (exempt); robot 1 moved while silent.
        assert [v.invariant for v in monitor.violations] == ["silence"]
        assert "robot 1" in monitor.violations[0].message

    def test_exempts_displaced_robots(self):
        sim = _StubSim([Vec2(0, 0), Vec2(5, 0)])
        monitor = SilenceMonitor(senders=set(), displaced={1})
        monitor.on_step(sim, step(0, set(), [Vec2(0, 0), Vec2(9, 9)]))
        assert not monitor.violations

    def test_skips_protocols_without_silence(self):
        sim = _StubSim(
            [Vec2(0, 0), Vec2(5, 0)],
            [_StubProtocol(idle_silent=False), _StubProtocol(idle_silent=False)],
        )
        monitor = SilenceMonitor(senders=set())
        monitor.on_step(sim, step(0, {0, 1}, [Vec2(1, 1), Vec2(6, 1)]))
        assert not monitor.violations

    def test_compares_against_previous_step(self):
        sim = _StubSim([Vec2(0, 0)])
        monitor = SilenceMonitor(senders=set())
        monitor.on_step(sim, step(0, {0}, [Vec2(0, 0)]))
        monitor.on_step(sim, step(1, {0}, [Vec2(0, 1)]))
        assert len(monitor.violations) == 1
        assert monitor.violations[0].time == 1


class TestReceipt:
    def _sim(self, bits: List[int]) -> _StubSim:
        events = [BitEvent(time=2 * k + 1, src=0, dst=1, bit=b)
                  for k, b in enumerate(bits)]
        return _StubSim(
            [Vec2(0, 0), Vec2(5, 0)],
            [_StubProtocol(), _StubProtocol(received=events)],
        )

    def test_exact_delivery_passes(self):
        monitor = ReceiptMonitor({(0, 1): [1, 0, 1]})
        monitor.finish(self._sim([1, 0, 1]))
        assert not monitor.violations

    def test_loss_reorder_corruption_flagged(self):
        for delivered in ([1, 0], [0, 1, 1], [1, 1, 1], []):
            monitor = ReceiptMonitor({(0, 1): [1, 0, 1]})
            monitor.finish(self._sim(delivered))
            assert monitor.violations, delivered

    def test_forged_bits_subsequence_semantics(self):
        # Loss is fine for the weak monitor; inventions are not.
        lossy = NoForgedBitsMonitor({(0, 1): [1, 0, 1]})
        lossy.finish(self._sim([1, 1]))
        assert not lossy.violations
        forged = NoForgedBitsMonitor({(0, 1): [1, 0, 1]})
        forged.finish(self._sim([1, 0, 1, 0]))
        assert forged.violations

    def test_two_per_bit_timing(self):
        monitor = TwoInstantsPerBitMonitor({(0, 1): [1, 0]})
        monitor.finish(self._sim([1, 0]))
        assert not monitor.violations
        late_events = [BitEvent(time=1, src=0, dst=1, bit=1),
                       BitEvent(time=5, src=0, dst=1, bit=0)]
        sim = _StubSim(
            [Vec2(0, 0), Vec2(5, 0)],
            [_StubProtocol(), _StubProtocol(received=late_events)],
        )
        monitor = TwoInstantsPerBitMonitor({(0, 1): [1, 0]})
        monitor.finish(sim)
        assert [v.invariant for v in monitor.violations] == ["two-per-bit"]


class TestSubsequence:
    def test_basics(self):
        assert _is_subsequence([], [1, 0])
        assert _is_subsequence([1, 0], [1, 0])
        assert _is_subsequence([0], [1, 0])
        assert not _is_subsequence([0, 1], [1, 0])
        assert not _is_subsequence([1, 1], [1, 0])


class TestSchedulerContract:
    def _sim(self) -> _StubSim:
        return _StubSim([Vec2(0, 0), Vec2(5, 0), Vec2(0, 5)])

    def test_empty_activation_flagged(self):
        monitor = SchedulerContractMonitor()
        monitor.on_step(self._sim(), step(0, set(), [Vec2(0, 0)] * 3))
        assert [v.invariant for v in monitor.violations] == ["scheduler"]

    def test_out_of_range_flagged(self):
        monitor = SchedulerContractMonitor()
        monitor.on_step(self._sim(), step(0, {7}, [Vec2(0, 0)] * 3))
        assert any("unknown robots" in v.message for v in monitor.violations)

    def test_starvation_flagged_and_crashed_exempt(self):
        monitor = SchedulerContractMonitor(
            fairness_bound=2, crashed={2}, crash_time=0
        )
        sim = self._sim()
        positions = [Vec2(0, 0), Vec2(5, 0), Vec2(0, 5)]
        for t in range(5):
            monitor.on_step(sim, step(t, {0}, positions))
        kinds = {v.message.split()[1] for v in monitor.violations}
        assert "1" in kinds  # robot 1 starved
        assert "2" not in kinds  # crashed robot may legally starve

    def test_dead_activation_flagged(self):
        monitor = SchedulerContractMonitor(crashed={1}, crash_time=2)
        sim = self._sim()
        positions = [Vec2(0, 0), Vec2(5, 0), Vec2(0, 5)]
        monitor.on_step(sim, step(0, {0, 1, 2}, positions))
        assert not monitor.violations  # before the crash: fine
        monitor.on_step(sim, step(2, {0, 1}, positions))
        assert any("crashed robots [1]" in v.message for v in monitor.violations)
