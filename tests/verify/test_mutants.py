"""The verifier's self-test: every planted bug must be caught.

This is the test that keeps the monitors honest — a refactor that
silences a monitor fails here, not in production verification runs
where silence looks like success.
"""

from __future__ import annotations

import pytest

from repro.verify.mutants import MUTANTS, run_mutant, run_self_test

pytestmark = pytest.mark.verify


class TestMutants:
    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_is_caught_by_its_expected_monitor(self, name):
        result = run_mutant(name)
        expected = MUTANTS[name][1]
        assert result.caught, (
            f"mutant {name!r} should violate {expected!r}; monitors saw "
            f"{sorted({v.invariant for v in result.violations}) or 'nothing'}"
        )

    def test_every_invariant_has_a_mutant(self):
        # The self-test must exercise the whole monitor suite (the
        # engine-level transparency check is tested separately in
        # test_matrix.py).
        covered = {expected for _, expected in MUTANTS.values()}
        assert covered == {
            "silence",
            "receipt",
            "no-forged-bits",
            "two-per-bit",
            "collision",
            "scheduler",
            "staleness",
        }

    def test_self_test_runs_every_mutant(self):
        results = run_self_test()
        assert {r.name for r in results} == set(MUTANTS)
        assert all(r.caught for r in results)

    def test_unknown_mutant_rejected(self):
        with pytest.raises(KeyError):
            run_mutant("heisenbug")


class TestCli:
    def test_self_test_exit_zero(self):
        from repro.verify.__main__ import main

        assert main(["--self-test"]) == 0

    def test_mutant_run_exits_nonzero(self, capsys):
        from repro.verify.__main__ import main

        assert main(["--mutant", "deaf"]) == 1
        out = capsys.readouterr().out
        assert "receipt" in out and "caught" in out

    def test_unknown_mutant_usage_error(self):
        from repro.verify.__main__ import main

        assert main(["--mutant", "nope"]) == 2

    def test_list_mode(self, capsys):
        from repro.verify.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "sync_granular" in out and "skipped cells" in out

    def test_tiny_sweep_exit_zero(self):
        from repro.verify.__main__ import main

        assert (
            main(
                [
                    "--seeds", "1",
                    "--quick",
                    "--protocol", "sync_two",
                    "--scheduler", "synchronous,burst",
                ]
            )
            == 0
        )
