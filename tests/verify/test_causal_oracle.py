"""The causality oracle: happens-before checks over the matrix."""

from __future__ import annotations

import pytest

from repro.verify.causal import (
    CAUSAL_ORACLE_SKIPS,
    RHYTHM_ADVANCING,
    check_cell,
    run_causal_matrix,
)
from repro.verify.scenarios import CELLS

pytestmark = pytest.mark.verify


class TestCheckCell:
    def test_sync_two_synchronous_is_clean_on_both_engines(self):
        cell = CELLS[("sync_two", "synchronous")]
        for engine in ("rounds", "events"):
            result = check_cell(cell, seed=0, engine=engine, quick=True)
            assert result.ok, result.violations
            assert result.flows >= 1
            assert result.steps > 0

    def test_displacement_phantoms_are_excused_not_violations(self):
        cell = CELLS[("async_n", "displacement")]
        result = check_cell(cell, seed=0, engine="rounds", quick=True)
        assert result.ok, result.violations

    def test_rhythm_advancing_protocol_passes_without_strict_acks(self):
        assert "sync_logk" in RHYTHM_ADVANCING
        cell = CELLS[("sync_logk", "synchronous")]
        result = check_cell(cell, seed=0, engine="rounds", quick=True)
        assert result.ok, result.violations

    def test_result_json_carries_the_run_coordinates(self):
        cell = CELLS[("sync_two", "synchronous")]
        doc = check_cell(cell, seed=3, engine="events", quick=True).to_json()
        assert doc["protocol"] == "sync_two"
        assert doc["engine"] == "events"
        assert doc["seed"] == 3
        assert doc["ok"] is True


class TestMatrix:
    @pytest.fixture(scope="class")
    def report(self):
        return run_causal_matrix(seeds=range(1), quick=True)

    def test_full_quick_matrix_is_causally_clean(self, report):
        assert report.ok, report.format()

    def test_every_executable_cell_ran_on_each_native_engine(self, report):
        ran = {(r.protocol, r.scheduler, r.engine) for r in report.results}
        for (p, s) in CELLS:
            if s in CAUSAL_ORACLE_SKIPS:
                assert (p, s, "rounds") in ran
                assert (p, s, "events") not in ran
            elif s.startswith("event_"):
                assert (p, s, "events") in ran
            else:
                assert (p, s, "rounds") in ran and (p, s, "events") in ran

    def test_skips_are_documented(self, report):
        assert report.skipped
        assert all(reason for _, _, reason in report.skipped)

    def test_report_formats_with_a_summary_line(self, report):
        text = report.format()
        assert "instrumented runs" in text
        assert "0 failures" in text

    def test_report_json_round_trips(self, report):
        import json

        doc = json.loads(json.dumps(report.to_json()))
        assert doc["ok"] is True
        assert doc["runs"] == len(report.results)

    def test_protocol_filter_narrows_the_sweep(self):
        report = run_causal_matrix(
            protocols=["sync_two"], seeds=range(1), quick=True
        )
        assert report.results
        assert {r.protocol for r in report.results} == {"sync_two"}
