"""Failing verify cells leave an obs trace on disk for the repro."""

from __future__ import annotations

import os

from repro.obs.export import load_run
from repro.verify.engine import run_cell
from repro.verify.scenarios import Cell


def _doomed_cell() -> Cell:
    """A deliberately failing cell: receipt demanded under a budget
    far too small to deliver the payload."""
    return Cell(
        protocol="sync_granular",
        scheduler="synchronous",
        invariants=("receipt",),
        max_steps=3,
        quick_steps=3,
    )


class TestObsDumpOnFailure:
    def test_failing_cell_dumps_a_loadable_trace(self, tmp_path):
        result = run_cell(
            _doomed_cell(),
            0,
            quick=True,
            transparency=False,
            obs_dump_dir=str(tmp_path),
        )
        assert not result.ok
        assert result.obs_dump is not None
        assert os.path.exists(result.obs_dump)
        run = load_run(result.obs_dump)
        assert run.meta["protocol"] == "sync_granular"
        assert run.meta["scheduler"] == "synchronous"
        assert run.meta["seed"] == 0
        # the dump carries the verdict that triggered it
        assert any("receipt" in v for v in run.meta["violations"])
        assert run.events  # the replay actually recorded something

    def test_dump_path_lands_in_the_json_report(self, tmp_path):
        result = run_cell(
            _doomed_cell(),
            0,
            quick=True,
            transparency=False,
            obs_dump_dir=str(tmp_path),
        )
        payload = result.to_json()
        assert payload["obs_dump"] == result.obs_dump

    def test_passing_cell_dumps_nothing(self, tmp_path):
        from repro.verify.scenarios import CELLS

        result = run_cell(
            CELLS[("sync_two", "synchronous")],
            0,
            quick=True,
            transparency=False,
            obs_dump_dir=str(tmp_path),
        )
        assert result.ok
        assert result.obs_dump is None
        assert os.listdir(str(tmp_path)) == []

    def test_no_dump_dir_means_no_dump(self):
        result = run_cell(_doomed_cell(), 0, quick=True, transparency=False)
        assert not result.ok
        assert result.obs_dump is None
