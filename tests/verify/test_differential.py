"""Differential testing: sync and async protocols agree on payloads.

The paper presents the synchronous (Section 3) and asynchronous
(Section 4) protocols as implementations of the *same* communication
primitive under different schedulers.  So for one payload, whatever
family carries it, the receiver must decode the identical bit stream —
a cross-protocol oracle that catches en/decoding biases a
per-protocol test cannot see (both sides of a single protocol could
be wrong the same way).
"""

from __future__ import annotations

import random

import pytest

from repro.apps.harness import SwarmHarness, ring_positions
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol

pytestmark = pytest.mark.verify

SEEDS = (0, 1, 2, 7, 23)


def _payload(seed: int, length: int = 5):
    rng = random.Random(seed * 101 + 13)
    return [rng.randrange(2) for _ in range(length)]


def _received_bits(harness: SwarmHarness, src: int, dst: int):
    return [
        e.bit
        for e in harness.simulator.protocol_of(dst).received
        if e.src == src
    ]


def _deliver(harness: SwarmHarness, src: int, dst: int, payload, budget: int):
    harness.simulator.protocol_of(src).send_bits(dst, payload)
    done = harness.pump(
        lambda h: len(_received_bits(h, src, dst)) >= len(payload),
        max_steps=budget,
    )
    assert done, f"no delivery within {budget} instants"
    return _received_bits(harness, src, dst)


class TestPairDifferential:
    """SyncTwo vs AsyncTwo on the same two-robot payload."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_payload_same_stream(self, seed):
        payload = _payload(seed)
        positions = [Vec2(0.0, 0.0), Vec2(10.0, 0.0)]
        sync = SwarmHarness(
            positions,
            protocol_factory=lambda: SyncTwoProtocol(),
            identified=False,
            sigma=6.0,
            frame_seed=seed,
        )
        asynchronous = SwarmHarness(
            positions,
            protocol_factory=lambda: AsyncTwoProtocol(bounded=True),
            scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=seed),
            identified=False,
            sigma=6.0,
            frame_seed=seed,
        )
        got_sync = _deliver(sync, 0, 1, payload, budget=60)
        got_async = _deliver(asynchronous, 0, 1, payload, budget=3000)
        assert got_sync == payload
        assert got_async == payload
        assert got_sync == got_async


class TestSwarmDifferential:
    """SyncGranular vs AsyncN on the same routed payload."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_payload_same_stream(self, seed):
        payload = _payload(seed, length=3)
        positions = ring_positions(5, radius=10.0, jitter=0.07)
        sync = SwarmHarness(
            positions,
            protocol_factory=lambda: SyncGranularProtocol(naming="identified"),
            identified=True,
            sigma=6.0,
            frame_seed=seed,
        )
        asynchronous = SwarmHarness(
            positions,
            protocol_factory=lambda: AsyncNProtocol(naming="sec"),
            scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=seed),
            identified=False,
            frame_regime="chirality",
            sigma=6.0,
            frame_seed=seed,
        )
        got_sync = _deliver(sync, 0, 2, payload, budget=60)
        got_async = _deliver(asynchronous, 0, 2, payload, budget=5000)
        assert got_sync == payload
        assert got_async == payload
        assert got_sync == got_async
