"""Property tests over the protocol x adversary matrix.

Two layers:

* the **corpus replay** (fast, always on): the regression seeds in
  ``seeds.json`` must stay clean *and* reproduce the exact same swarm
  size and run length — any drift in the seeded builders would silently
  invalidate every recorded reproduction recipe;
* the **wide fan** (``slow`` marker): every executable cell under
  >= 20 fresh seeds, the CI/nightly version of
  ``python -m repro.verify --seeds 20``.

Regenerate the corpus (after an intentional builder change) with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.verify.scenarios import CELLS
    from repro.verify.engine import run_cell
    entries = []
    for (p, s), cell in sorted(CELLS.items()):
        for seed in (3, 17):
            r = run_cell(cell, seed, minimize=False)
            assert r.ok, (p, s, seed)
            entries.append({"protocol": p, "scheduler": s, "seed": seed,
                            "size": r.size, "steps": r.steps})
    corpus = json.load(open("tests/verify/seeds.json"))
    corpus["entries"] = entries
    json.dump(corpus, open("tests/verify/seeds.json", "w"), indent=2)
    PY
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.verify.engine import run_cell, run_matrix
from repro.verify.scenarios import CELLS, PROTOCOLS, SCHEDULERS, SKIPS

pytestmark = pytest.mark.verify

_CORPUS_PATH = pathlib.Path(__file__).parent / "seeds.json"


def _corpus():
    with _CORPUS_PATH.open() as handle:
        return json.load(handle)


def _corpus_entries():
    return [
        pytest.param(e, id=f"{e['protocol']}-{e['scheduler']}-s{e['seed']}")
        for e in _corpus()["entries"]
    ]


class TestMatrixShape:
    def test_matrix_tiles_the_grid(self):
        grid = {(p, s) for p in PROTOCOLS for s in SCHEDULERS}
        assert set(CELLS) | set(SKIPS) == grid
        assert not set(CELLS) & set(SKIPS)

    def test_every_skip_has_a_reason(self):
        assert all(isinstance(reason, str) and reason for reason in SKIPS.values())

    def test_corpus_covers_every_executable_cell(self):
        covered = {(e["protocol"], e["scheduler"]) for e in _corpus()["entries"]}
        assert covered == set(CELLS)


class TestCorpusReplay:
    @pytest.mark.parametrize("entry", _corpus_entries())
    def test_seed_stays_clean_and_reproducible(self, entry):
        cell = CELLS[(entry["protocol"], entry["scheduler"])]
        result = run_cell(cell, entry["seed"], minimize=False)
        assert result.error is None, result.error
        assert result.violations == []
        # Reproducibility: the recorded repro recipe must still mean
        # the same run.
        assert result.size == entry["size"]
        assert result.steps == entry["steps"]


@pytest.mark.slow
class TestWideFan:
    """The full adversarial sweep: 6 protocols x schedulers x 20+ seeds."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_protocol_clean_under_all_adversaries(self, protocol):
        report = run_matrix(
            protocols=[protocol], seeds=range(100, 122), minimize=False
        )
        assert report.ok, report.format()


class TestTransparencyHarness:
    def test_transparency_catches_an_injected_divergence(self, monkeypatch):
        # Sanity for the A/B harness itself: corrupt the uncached twin
        # and the transparency invariant must fire.
        import repro.verify.engine as engine

        original = engine.build_run

        def corrupting(cell, seed, *, caching=True, **kwargs):
            run = original(cell, seed, caching=caching, **kwargs)
            if not caching:
                run.sim.protocol_of(0).send_bit(1, 1)  # extra traffic
            return run

        monkeypatch.setattr(engine, "build_run", corrupting)
        cell = CELLS[("sync_granular", "synchronous")]
        result = engine.run_cell(cell, seed=3, minimize=False)
        assert any(v.invariant == "transparency" for v in result.violations)
