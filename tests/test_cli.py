"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestDemo:
    def test_runs_and_succeeds(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "hello, robot 3" in out
        assert "instants" in out


class TestFigures:
    def test_generates_all_svgs(self, tmp_path, capsys):
        outdir = str(tmp_path / "figs")
        assert main(["figures", outdir]) == 0
        files = sorted(os.listdir(outdir))
        assert files == [
            "fig1_sync_two.svg",
            "fig2_granulars.svg",
            "fig3_symmetry.svg",
            "fig5_async_two.svg",
            "fig6_async_n.svg",
        ]
        for name in files:
            with open(os.path.join(outdir, name), encoding="utf-8") as handle:
                content = handle.read()
            assert content.startswith("<svg ")
            assert content.rstrip().endswith("</svg>")


class TestAnimate:
    def test_plays_and_reports_bits(self, capsys):
        assert main(["animate", "--steps", "120", "--delay", "0"]) == 0
        out = capsys.readouterr().out
        assert "frames" in out
        assert "bits exchanged" in out


class TestTradeoff:
    def test_default_table(self, capsys):
        assert main(["tradeoff"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "1024" in out

    def test_custom_sizes_and_bases(self, capsys):
        assert main(["tradeoff", "--n", "16", "64", "--k", "2", "4"]) == 0
        out = capsys.readouterr().out
        # 2 sizes x 2 bases = 4 data rows.
        data_rows = [
            line for line in out.splitlines() if line.strip() and line.lstrip()[0].isdigit()
        ]
        assert len(data_rows) == 4
