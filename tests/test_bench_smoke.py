"""CI smoke target: ``python -m benchmarks.run_all --quick --json ...``.

Runs the quick probe mode in a subprocess exactly as CI would and
asserts the machine-readable invariants: the sync-granular protocol
still costs 2 instants per bit and the hot-path caches are
semantically transparent (identical traces and bit streams).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys


def test_quick_smoke_passes_and_reports_invariants(tmp_path):
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    out = tmp_path / "BENCH_results.json"
    history = tmp_path / "BENCH_history.jsonl"
    result = subprocess.run(
        [sys.executable, "-m", "benchmarks.run_all", "--quick",
         "--json", str(out), "--history", str(history)],
        cwd=repo_root,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "[history: entry #1" in result.stdout
    assert history.exists()

    payload = json.loads(out.read_text())
    assert payload["mode"] == "quick"
    invariants = payload["invariants"]
    assert invariants["sync_granular_two_steps_per_bit"] is True
    assert invariants["caching_trace_identical"] is True
    assert invariants["caching_bits_identical"] is True

    throughput = payload["probes"]["sync_throughput_n64"]
    assert throughput["n"] == 64
    # Speedup magnitude is hardware-dependent; only sanity-check the
    # counters that prove the caches actually engaged.
    stats = throughput["stats"]
    assert stats["cache_hits"] > 0
    assert stats["observations_reused"] > 0

    geometry = payload["probes"]["geometry_cache"]
    assert geometry["cache_hits"] > 0
    assert geometry["hit_rate"] > 0.9

    sparse = payload["probes"]["event_sparse_n10k"]
    assert sparse["n"] == 10_000
    assert sparse["events_per_sec"] > 0
    # The workload really was sparse: ~1% duty, heap bounded by n.
    assert 0.001 < sparse["duty"] < 0.05
    assert sparse["heap_depth_max"] <= sparse["n"] + 10


def test_engine_parametrized_cells_run_both_engines():
    """table_cells param grids: engine= sweeps like backend= sweeps.

    The sparse benchmark registers one cell per engine; both must be
    executable through the campaign cells()/run_cell() protocol and
    produce duty-matched rows (small n keeps this a smoke test).
    """
    from benchmarks import bench_event_sparse

    names = bench_event_sparse.cells()
    assert "sparse[engine=events]" in names
    assert "sparse[engine=rounds]" in names

    events_row = bench_event_sparse.duty_matched_cell(engine="events", n=300)
    rounds_row = bench_event_sparse.duty_matched_cell(engine="rounds", n=100)
    assert events_row["engine"] == "events"
    assert rounds_row["engine"] == "rounds"
    for row in (events_row, rounds_row):
        assert row["activations"] > 0
        assert 0.001 < row["duty"] < 0.06
