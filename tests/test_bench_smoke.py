"""CI smoke target: ``python -m benchmarks.run_all --quick --json ...``.

Runs the quick probe mode in a subprocess exactly as CI would and
asserts the machine-readable invariants: the sync-granular protocol
still costs 2 instants per bit and the hot-path caches are
semantically transparent (identical traces and bit streams).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys


def test_quick_smoke_passes_and_reports_invariants(tmp_path):
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    out = tmp_path / "BENCH_results.json"
    history = tmp_path / "BENCH_history.jsonl"
    result = subprocess.run(
        [sys.executable, "-m", "benchmarks.run_all", "--quick",
         "--json", str(out), "--history", str(history)],
        cwd=repo_root,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "[history: entry #1" in result.stdout
    assert history.exists()

    payload = json.loads(out.read_text())
    assert payload["mode"] == "quick"
    invariants = payload["invariants"]
    assert invariants["sync_granular_two_steps_per_bit"] is True
    assert invariants["caching_trace_identical"] is True
    assert invariants["caching_bits_identical"] is True

    throughput = payload["probes"]["sync_throughput_n64"]
    assert throughput["n"] == 64
    # Speedup magnitude is hardware-dependent; only sanity-check the
    # counters that prove the caches actually engaged.
    stats = throughput["stats"]
    assert stats["cache_hits"] > 0
    assert stats["observations_reused"] > 0

    geometry = payload["probes"]["geometry_cache"]
    assert geometry["cache_hits"] > 0
    assert geometry["hit_rate"] > 0.9
