"""Property-based tests for the message channel layer.

Random message batches, random payloads and — crucially — random
polling cadence: the channel must deliver exactly once, in order,
regardless of how rarely or unevenly the application polls.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.harness import SwarmHarness, ring_positions
from repro.protocols.sync_granular import SyncGranularProtocol

payloads = st.lists(st.binary(min_size=0, max_size=12), min_size=1, max_size=5)


@settings(max_examples=15, deadline=None)
@given(payloads, st.integers(min_value=0, max_value=10_000))
def test_exactly_once_in_order_under_random_polling(messages, seed):
    harness = SwarmHarness(
        ring_positions(4, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
    )
    channel_out = harness.channels[0]
    channel_in = harness.channels[2]
    total_bits = 0
    for payload in messages:
        total_bits += channel_out.send(2, payload)

    rng = random.Random(seed)
    steps_needed = 2 * total_bits + 4
    done = 0
    while done < steps_needed:
        # Step in random bursts, polling only sometimes.
        burst = rng.randint(1, 7)
        for _ in range(burst):
            harness.simulator.step()
            done += 1
            if done >= steps_needed:
                break
        if rng.random() < 0.5:
            channel_in.poll()
    channel_in.poll()

    received = [m.payload for m in channel_in.inbox]
    assert received == messages  # exactly once, original order
    assert all(m.src == 0 for m in channel_in.inbox)


@settings(max_examples=10, deadline=None)
@given(payloads, payloads)
def test_interleaved_senders_demultiplexed(batch_a, batch_b):
    """Two senders to one receiver: per-sender FIFO order holds even
    though the bit streams interleave on the medium."""
    harness = SwarmHarness(
        ring_positions(4, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
    )
    bits = 0
    for payload in batch_a:
        bits = max(bits, harness.channels[0].send(3, payload))
    for payload in batch_b:
        bits = max(bits, harness.channels[1].send(3, payload))
    total = sum(len(p) * 8 + 16 for p in batch_a + batch_b)
    harness.run(2 * total + 4)

    inbox = harness.channels[3].inbox
    from_a = [m.payload for m in inbox if m.src == 0]
    from_b = [m.payload for m in inbox if m.src == 1]
    assert from_a == batch_a
    assert from_b == batch_b
