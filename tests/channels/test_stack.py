"""Tests for the wireless-primary / movement-backup stack (C5)."""

from __future__ import annotations

from typing import List

import pytest

from repro.channels.stack import DualChannelStack
from repro.errors import ChannelError
from repro.faults.wireless import SimulatedWireless
from repro.protocols.sync_granular import SyncGranularProtocol

from tests.conftest import make_harness


def stack_setup(count: int = 4, ack_timeout: int = 4, drop: float = 0.0, seed: int = 0):
    h = make_harness(count, lambda: SyncGranularProtocol())
    wireless = SimulatedWireless(count, drop_probability=drop, seed=seed)
    stacks: List[DualChannelStack] = [
        DualChannelStack(i, wireless, h.channel(i), ack_timeout=ack_timeout)
        for i in range(count)
    ]
    return h, wireless, stacks


def pump(h, stacks, steps: int):
    for _ in range(steps):
        h.run(1)
        for s in stacks:
            s.tick(h.simulator.time)


class TestValidation:
    def test_ack_timeout_checked(self):
        h, wireless, _ = stack_setup()
        with pytest.raises(ChannelError):
            DualChannelStack(0, wireless, h.channel(0), ack_timeout=0)


class TestHealthyPath:
    def test_wireless_delivery_and_ack(self):
        h, wireless, stacks = stack_setup()
        assert stacks[0].send(2, b"radio", time=0) == "wireless"
        pump(h, stacks, 3)
        assert [(m.via, m.payload) for m in stacks[2].inbox] == [("wireless", b"radio")]
        assert stacks[0].unacked == 0  # ACK came back
        assert stacks[0].fallback_count == 0

    def test_no_duplicate_on_healthy_path(self):
        h, wireless, stacks = stack_setup()
        stacks[0].send(1, b"one", time=0)
        pump(h, stacks, 20)
        assert len(stacks[1].inbox) == 1


class TestCrashFailover:
    def test_detectable_failure_uses_movement_immediately(self):
        h, wireless, stacks = stack_setup()
        wireless.crash_device(0)
        assert stacks[0].send(1, b"fallback", time=0) == "movement"
        assert stacks[0].fallback_count == 1
        pump(h, stacks, 400)
        assert [(m.via, m.payload) for m in stacks[1].inbox] == [("movement", b"fallback")]


class TestJamFailover:
    def test_silent_loss_recovered_by_timeout(self):
        h, wireless, stacks = stack_setup(ack_timeout=3)
        wireless.jam()
        assert stacks[0].send(2, b"jammed", time=0) == "wireless"
        assert stacks[0].unacked == 1
        pump(h, stacks, 500)
        assert [(m.via, m.payload) for m in stacks[2].inbox] == [("movement", b"jammed")]
        assert stacks[0].unacked == 0
        assert stacks[0].fallback_count == 1

    def test_lost_ack_causes_duplicate_suppressed(self):
        """Data arrives by wireless but the ACK is jammed: the sender
        retransmits over movement and the receiver de-duplicates."""
        h, wireless, stacks = stack_setup(ack_timeout=3)
        stacks[0].send(2, b"double?", time=0)
        # Deliver the data frame, then jam before the ACK is sent back:
        # tick only the receiver while jammed so its ACK is lost.
        wireless.jam()
        pump(h, stacks, 500)
        inbox = stacks[2].inbox
        assert [m.payload for m in inbox] == [b"double?"]  # exactly once


class TestIntermittentLoss:
    def test_many_messages_all_delivered_despite_drops(self):
        h, wireless, stacks = stack_setup(ack_timeout=3, drop=0.4, seed=9)
        for i in range(6):
            stacks[0].send(1, f"m{i}".encode(), time=h.simulator.time)
            pump(h, stacks, 40)
        pump(h, stacks, 2000)
        payloads = sorted(m.payload for m in stacks[1].inbox)
        assert payloads == sorted(f"m{i}".encode() for i in range(6))
