"""Tests for the simulated wireless medium."""

from __future__ import annotations

import pytest

from repro.errors import ChannelDownError, ChannelError
from repro.faults.wireless import SimulatedWireless


class TestValidation:
    def test_count_checked(self):
        with pytest.raises(ChannelError):
            SimulatedWireless(0)

    def test_drop_probability_checked(self):
        with pytest.raises(ChannelError):
            SimulatedWireless(2, drop_probability=1.0)
        w = SimulatedWireless(2)
        with pytest.raises(ChannelError):
            w.set_drop_probability(-0.1)

    def test_unknown_endpoints(self):
        w = SimulatedWireless(2)
        with pytest.raises(ChannelError):
            w.send(0, 5, b"x", time=0)
        with pytest.raises(ChannelError):
            w.receive(9)


class TestHealthyMedium:
    def test_unicast_delivery(self):
        w = SimulatedWireless(3)
        w.send(0, 2, b"frame", time=4)
        frames = w.receive(2)
        assert len(frames) == 1
        assert frames[0].src == 0
        assert frames[0].payload == b"frame"
        assert frames[0].sent_at == 4
        assert w.receive(2) == []  # drained
        assert w.receive(1) == []  # not the addressee

    def test_string_payloads_encoded(self):
        w = SimulatedWireless(2)
        w.send(0, 1, "héllo", time=0)
        assert w.receive(1)[0].payload == "héllo".encode("utf-8")

    def test_accounting(self):
        w = SimulatedWireless(2)
        w.send(0, 1, b"a", time=0)
        assert w.frames_sent == 1
        assert w.frames_lost == 0


class TestCrash:
    def test_crashed_sender_raises(self):
        w = SimulatedWireless(2)
        w.crash_device(0)
        assert not w.is_up(0)
        with pytest.raises(ChannelDownError):
            w.send(0, 1, b"x", time=0)

    def test_crashed_receiver_loses_silently(self):
        w = SimulatedWireless(2)
        w.crash_device(1)
        w.send(0, 1, b"x", time=0)  # no error: the sender cannot know
        assert w.frames_lost == 1
        assert w.receive(1) == []

    def test_restore(self):
        w = SimulatedWireless(2)
        w.crash_device(0)
        w.restore_device(0)
        w.send(0, 1, b"x", time=0)
        assert len(w.receive(1)) == 1


class TestJamming:
    def test_jam_drops_silently(self):
        w = SimulatedWireless(2)
        w.jam()
        w.send(0, 1, b"x", time=0)
        assert w.receive(1) == []
        assert w.frames_lost == 1

    def test_unjam_restores(self):
        w = SimulatedWireless(2)
        w.jam()
        w.unjam()
        w.send(0, 1, b"x", time=0)
        assert len(w.receive(1)) == 1


class TestIntermittentLoss:
    def test_loss_rate_roughly_honoured(self):
        w = SimulatedWireless(2, drop_probability=0.5, seed=42)
        for i in range(400):
            w.send(0, 1, b"x", time=i)
        delivered = len(w.receive(1))
        assert 120 < delivered < 280  # ~200 expected

    def test_zero_probability_lossless(self):
        w = SimulatedWireless(2, drop_probability=0.0)
        for i in range(50):
            w.send(0, 1, b"x", time=i)
        assert len(w.receive(1)) == 50

    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            w = SimulatedWireless(2, drop_probability=0.3, seed=7)
            for i in range(100):
                w.send(0, 1, bytes([i]), time=i)
            outcomes.append([f.payload for f in w.receive(1)])
        assert outcomes[0] == outcomes[1]
