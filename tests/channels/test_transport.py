"""Tests for the movement-channel message transport."""

from __future__ import annotations

import pytest

from repro.channels.transport import MovementChannel
from repro.errors import ChannelError, CodingError
from repro.protocols.sync_granular import SyncGranularProtocol

from tests.conftest import make_harness


class TestSendReceive:
    def test_roundtrip_text_and_bytes(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        h.channel(0).send(2, "text message")
        h.channel(1).send(2, b"\x00\x01\xff")
        assert h.pump(lambda hh: len(hh.channel(2).inbox) >= 2, max_steps=3000)
        inbox = h.channel(2).inbox
        payloads = {m.payload for m in inbox}
        assert payloads == {b"text message", b"\x00\x01\xff"}
        sources = {m.src for m in inbox}
        assert sources == {0, 1}

    def test_send_returns_bit_count(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        bits = h.channel(0).send(1, b"ab")
        assert bits == 16 + 16  # header + 2 bytes

    def test_oversized_rejected(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        with pytest.raises(CodingError):
            h.channel(0).send(1, b"x" * 70_000)

    def test_poll_returns_only_fresh(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        h.channel(0).send(1, "one")
        assert h.pump(lambda hh: len(hh.channel(1).inbox) >= 1, max_steps=2000)
        assert h.channel(1).poll() == []  # already drained by pump

    def test_message_order_preserved_per_sender(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        for i in range(3):
            h.channel(0).send(1, f"msg {i}")
        assert h.pump(lambda hh: len(hh.channel(1).inbox) >= 3, max_steps=4000)
        texts = [m.text() for m in h.channel(1).inbox if m.src == 0]
        assert texts == ["msg 0", "msg 1", "msg 2"]

    def test_counters_and_idle(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        channel = h.channel(0)
        assert channel.idle()
        channel.send(1, "x")
        assert channel.messages_sent == 1
        assert not channel.idle()
        assert channel.pending_transmission() > 0
        h.run(50)
        assert channel.idle()

    def test_partial_frame_detection(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        # Queue raw bits that do not complete a frame.
        h.simulator.protocol_of(0).send_bits(1, [0, 0, 0, 1])
        h.run(10)
        with pytest.raises(ChannelError):
            h.channel(1).expect_no_partial_frames()

    def test_completed_at_timestamps_monotone(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        h.channel(0).send(1, "a")
        h.channel(0).send(1, "b")
        assert h.pump(lambda hh: len(hh.channel(1).inbox) >= 2, max_steps=4000)
        times = [m.completed_at for m in h.channel(1).inbox]
        assert times == sorted(times)
        assert times[0] < times[1]
