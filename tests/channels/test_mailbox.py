"""Tests for overhearing and relaying (the redundancy remark)."""

from __future__ import annotations

import pytest

from repro.channels.mailbox import OverhearingMonitor
from repro.errors import ChannelError
from repro.protocols.sync_granular import SyncGranularProtocol

from tests.conftest import make_harness


class TestOverhearing:
    def test_third_party_reconstructs_message(self):
        h = make_harness(5, lambda: SyncGranularProtocol())
        monitor = OverhearingMonitor(h.simulator.protocol_of(4))
        h.channel(0).send(2, "secret-ish")
        assert h.pump(lambda hh: len(hh.channel(2).inbox) >= 1, max_steps=3000)
        log = monitor.log
        assert len(log) == 1
        assert log[0].payload == b"secret-ish"
        assert (log[0].src, log[0].dst) == (0, 2)

    def test_messages_between_filter(self):
        h = make_harness(5, lambda: SyncGranularProtocol())
        monitor = OverhearingMonitor(h.simulator.protocol_of(4))
        h.channel(0).send(2, "a")
        h.channel(1).send(3, "b")
        assert h.pump(
            lambda hh: len(hh.channel(2).inbox) >= 1 and len(hh.channel(3).inbox) >= 1,
            max_steps=3000,
        )
        assert [m.payload for m in monitor.messages_between(0, 2)] == [b"a"]
        assert [m.payload for m in monitor.messages_between(1, 3)] == [b"b"]
        assert monitor.messages_between(0, 3) == []


class TestRelay:
    def test_relay_reaches_addressee(self):
        """The fault-tolerance scenario: the original transmission is
        overheard by robot 4, which re-sends it to the addressee."""
        h = make_harness(5, lambda: SyncGranularProtocol())
        monitor = OverhearingMonitor(h.simulator.protocol_of(4))
        h.channel(0).send(2, "please relay")
        assert h.pump(lambda hh: len(monitor.log) >= 1, max_steps=3000)

        overheard = monitor.log[0]
        monitor.relay(overheard)
        assert h.pump(lambda hh: len(hh.channel(2).inbox) >= 2, max_steps=3000)
        inbox = h.channel(2).inbox
        assert inbox[0].payload == inbox[1].payload == b"please relay"
        # The relayed copy arrives from the relayer, not the origin.
        assert {m.src for m in inbox} == {0, 4}

    def test_relay_to_self_rejected(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        monitor = OverhearingMonitor(h.simulator.protocol_of(3))
        h.channel(0).send(3, "mine")
        assert h.pump(lambda hh: len(monitor.log) >= 1, max_steps=3000)
        with pytest.raises(ChannelError):
            monitor.relay(monitor.log[0])
