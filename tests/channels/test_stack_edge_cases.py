"""Edge cases for the dual-channel stack and its framing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.stack import DualChannelStack
from repro.errors import ChannelError
from repro.faults.wireless import SimulatedWireless
from repro.protocols.sync_granular import SyncGranularProtocol

from tests.conftest import make_harness


def stack_setup(count: int = 3, drop: float = 0.0, seed: int = 0, ack_timeout: int = 3):
    h = make_harness(count, lambda: SyncGranularProtocol())
    wireless = SimulatedWireless(count, drop_probability=drop, seed=seed)
    stacks = [
        DualChannelStack(i, wireless, h.channel(i), ack_timeout=ack_timeout)
        for i in range(count)
    ]
    return h, wireless, stacks


def pump(h, stacks, steps: int) -> None:
    for _ in range(steps):
        h.run(1)
        for s in stacks:
            s.tick(h.simulator.time)


class TestFraming:
    def test_malformed_frame_rejected(self):
        with pytest.raises(ChannelError):
            DualChannelStack._open(b"x")

    def test_envelope_roundtrip(self):
        blob = DualChannelStack._envelope(42, 1, b"payload")
        assert DualChannelStack._open(blob) == (42, 1, b"payload")

    def test_empty_payload_roundtrip(self):
        blob = DualChannelStack._envelope(0, 0, b"")
        assert DualChannelStack._open(blob) == (0, 0, b"")


class TestBookkeeping:
    def test_stale_ack_ignored(self):
        """An ACK for an unknown (already resolved) id is a no-op."""
        h, wireless, stacks = stack_setup()
        # Hand-craft an ACK frame for a message never sent.
        wireless.send(1, 0, DualChannelStack._envelope(99, 1, b""), time=0)
        stacks[0].tick(1)  # must not raise
        assert stacks[0].unacked == 0

    def test_message_id_wraparound(self):
        """More than 256 messages: ids wrap, de-dup keys stay correct
        because old ids have long been resolved."""
        h, wireless, stacks = stack_setup()
        for i in range(300):
            stacks[0].send(1, bytes([i % 251]), time=h.simulator.time)
            pump(h, stacks, 1)
        pump(h, stacks, 5)
        assert len(stacks[1].inbox) == 300

    @settings(max_examples=5, deadline=None)
    @given(st.floats(min_value=0.1, max_value=0.6), st.integers(min_value=0, max_value=1000))
    def test_exactly_once_under_random_loss(self, drop, seed):
        h, wireless, stacks = stack_setup(drop=drop, seed=seed)
        payloads = [f"m{i}".encode() for i in range(4)]
        for payload in payloads:
            stacks[0].send(1, payload, time=h.simulator.time)
            pump(h, stacks, 25)
        pump(h, stacks, 1500)
        got = sorted(m.payload for m in stacks[1].inbox)
        assert got == sorted(payloads)
