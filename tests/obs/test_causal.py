"""Happens-before graphs: building, critical paths, invariants."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.errors import TraceFormatError
from repro.obs.causal import (
    build_causal,
    causal_to_dot,
    causal_to_json,
    check_invariants,
    critical_path,
    is_artifact_flow,
    load_causal,
    render_causal,
    render_critical_path,
    vc_leq,
    vc_less,
)
from repro.obs.events import (
    BIT_ACK,
    BIT_ENCODE_STARTED,
    BIT_MOVED,
    BIT_OVERHEARD,
    BIT_RECEIPT,
    DISPLACEMENT,
    Event,
)
from repro.obs.export import ObsRun, dump_run
from repro.obs.__main__ import record_demo


@pytest.fixture(scope="module")
def demo_trace(tmp_path_factory):
    """The causal trace of the canonical recorded 2-robot demo run."""
    path = tmp_path_factory.mktemp("causal") / "demo.jsonl"
    return load_causal(record_demo(str(path), steps=12))


def _vc(*pairs):
    return [list(pair) for pair in pairs]


def _hand_run(events, meta=None) -> ObsRun:
    return ObsRun(meta=meta or {"protocol": "t", "scheduler": "t"}, events=events)


def _clean_flight_events():
    """One fully stamped bit: encode -> move -> receipt -> ack."""
    return [
        Event(BIT_ENCODE_STARTED, 0, {
            "src": 0, "dst": 1, "seq": 0, "bit": 1, "by": 0,
            "wall": 0.0, "vc": _vc((0, 1)),
        }),
        Event(BIT_MOVED, 0, {
            "src": 0, "dst": 1, "by": 0, "wall": 0.0, "vc": _vc((0, 2)),
        }),
        Event(BIT_RECEIPT, 1, {
            "src": 0, "dst": 1, "bit": 1, "by": 1,
            "wall": 1.0, "vc": _vc((0, 2), (1, 3)),
        }),
        Event(BIT_ACK, 2, {
            "src": 0, "dst": 1, "seq": 0, "by": 0,
            "wall": 2.0, "vc": _vc((0, 4), (1, 3)),
        }),
    ]


class TestVectorClocks:
    def test_leq_is_componentwise(self):
        assert vc_leq(_vc((0, 1)), _vc((0, 2), (1, 5)))
        assert not vc_leq(_vc((0, 3)), _vc((0, 2)))

    def test_less_is_strict(self):
        assert vc_less(_vc((0, 1)), _vc((0, 2)))
        assert not vc_less(_vc((0, 1)), _vc((0, 1)))

    def test_concurrent_clocks_are_unordered(self):
        a, b = _vc((0, 2), (1, 1)), _vc((0, 1), (1, 2))
        assert not vc_less(a, b) and not vc_less(b, a)


class TestBuild:
    def test_demo_has_one_flow_with_three_flights(self, demo_trace):
        graph = demo_trace.flow(0, 1)
        assert graph is not None
        assert graph.bits_sent == 3
        assert graph.bits_delivered == 3

    def test_every_bit_event_is_stamped(self, demo_trace):
        graph = demo_trace.flow(0, 1)
        for flight in graph.flights:
            assert flight.encode is not None and flight.encode.vc
            assert flight.receipt is not None and flight.receipt.vc

    def test_hand_built_flight_yields_the_canonical_chain(self):
        trace = build_causal(_hand_run(_clean_flight_events()))
        graph = trace.flow(0, 1)
        assert [e.category for e in graph.edges] == [
            "sender-compute", "observation-delay", "ack-wait",
        ]
        assert graph.flights[0].latency == 2.0

    def test_displacements_are_recorded_on_the_trace(self):
        trace = build_causal(_hand_run([
            Event(DISPLACEMENT, 3, {"robot": 2}),
        ]))
        assert trace.displacements == [(3, 2)]


class TestCriticalPath:
    def test_telescoping_total_equals_wall_span(self, demo_trace):
        for graph in demo_trace.flows.values():
            path = critical_path(graph)
            assert path.edges
            span = path.nodes[-1].wall - path.nodes[0].wall
            assert path.total == pytest.approx(span)

    def test_attribution_sums_to_the_total(self, demo_trace):
        for graph in demo_trace.flows.values():
            path = critical_path(graph)
            assert sum(path.attribution().values()) == pytest.approx(path.total)

    def test_empty_graph_yields_an_empty_path(self):
        trace = build_causal(_hand_run([]))
        assert trace.flows == {}


class TestInvariants:
    def test_demo_trace_is_clean(self, demo_trace):
        assert check_invariants(demo_trace, strict_acks=True) == []

    def test_phantom_receipt_is_a_violation(self):
        trace = build_causal(_hand_run([
            Event(BIT_RECEIPT, 1, {"src": 0, "dst": 1, "bit": 1, "by": 1}),
        ]))
        violations = check_invariants(trace)
        assert any("never encoded" in v for v in violations)

    def test_vc_regression_on_receipt_is_a_violation(self):
        events = _clean_flight_events()
        # break the receipt's clock: concurrent with the encode
        events[2] = Event(BIT_RECEIPT, 1, {
            "src": 0, "dst": 1, "bit": 1, "by": 1,
            "wall": 1.0, "vc": _vc((1, 3)),
        })
        violations = check_invariants(build_causal(_hand_run(events)))
        assert any("not vector-clock after its encode" in v for v in violations)

    def test_ack_before_receipt_only_flags_under_strict(self):
        events = _clean_flight_events()
        events[2], events[3] = (
            Event(BIT_ACK, 1, {"src": 0, "dst": 1, "seq": 0, "by": 0, "wall": 1.0}),
            Event(BIT_RECEIPT, 2, {"src": 0, "dst": 1, "bit": 1, "by": 1, "wall": 2.0}),
        )
        trace = build_causal(_hand_run(events))
        assert check_invariants(trace, strict_acks=False) == []
        assert any(
            "precedes its receipt" in v
            for v in check_invariants(trace, strict_acks=True)
        )

    def test_unstamped_legacy_traces_still_check(self):
        events = [
            Event(BIT_ENCODE_STARTED, 0, {"src": 0, "dst": 1, "seq": 0, "bit": 1}),
            Event(BIT_MOVED, 0, {"src": 0, "dst": 1}),
            Event(BIT_RECEIPT, 1, {"src": 0, "dst": 1, "bit": 1}),
        ]
        assert check_invariants(build_causal(_hand_run(events))) == []


class TestArtifactFlows:
    def test_displaced_sender_phantom_is_an_artifact(self):
        trace = build_causal(_hand_run([
            Event(DISPLACEMENT, 3, {"robot": 2}),
            Event(BIT_RECEIPT, 5, {"src": 2, "dst": 1, "bit": 0, "by": 1}),
        ]))
        assert is_artifact_flow(trace, (2, 1))
        assert check_invariants(trace) == []

    def test_phantom_without_a_displacement_still_violates(self):
        trace = build_causal(_hand_run([
            Event(BIT_RECEIPT, 5, {"src": 2, "dst": 1, "bit": 0, "by": 1}),
        ]))
        assert not is_artifact_flow(trace, (2, 1))
        assert check_invariants(trace)

    def test_displacement_after_the_decode_does_not_excuse_it(self):
        trace = build_causal(_hand_run([
            Event(BIT_RECEIPT, 2, {"src": 2, "dst": 1, "bit": 0, "by": 1}),
            Event(DISPLACEMENT, 7, {"robot": 2}),
        ]))
        assert not is_artifact_flow(trace, (2, 1))

    def test_self_flow_is_an_artifact(self):
        trace = build_causal(_hand_run([
            Event(BIT_OVERHEARD, 4, {"src": 1, "dst": 1, "bit": 0, "by": 3}),
        ]))
        assert is_artifact_flow(trace, (1, 1))
        assert check_invariants(trace) == []

    def test_a_real_encode_disqualifies_the_excuse(self):
        trace = build_causal(_hand_run([
            Event(DISPLACEMENT, 0, {"robot": 0}),
            *_clean_flight_events(),
        ]))
        assert not is_artifact_flow(trace, (0, 1))


class TestRenderers:
    def test_summary_names_the_flow_and_latency(self, demo_trace):
        text = render_causal(demo_trace)
        assert "flow 0->1" in text
        assert "latency" in text

    def test_critical_path_reports_full_attribution(self, demo_trace):
        text = render_critical_path(demo_trace)
        assert "100.0%" in text
        assert "observation-delay" in text

    def test_json_form_is_serializable_and_versioned(self, demo_trace):
        doc = json.loads(json.dumps(causal_to_json(demo_trace)))
        assert doc["format"] == "repro-causal-v1"
        (flow,) = doc["flows"]
        assert flow["critical_path"]["edges"]
        assert flow["artifact"] is False

    def test_dot_output_is_a_digraph(self, demo_trace):
        dot = causal_to_dot(demo_trace)
        assert dot.startswith("digraph causal {")
        assert '"bit-encode-started:0->1:0"' in dot


class TestLoadCausal:
    def test_loads_from_gzipped_trace(self, tmp_path):
        path = dump_run(
            _hand_run(_clean_flight_events()), str(tmp_path / "run.jsonl.gz")
        )
        trace = load_causal(path)
        assert trace.flow(0, 1).bits_acked == 1

    def test_truncated_line_names_its_line_number(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text(
            '{"format": "repro-obs-v1", "version": 1, "meta": {}}\n'
            '{"kind": "bit-receipt", "t": 1, "src": 0, "ds\n'
        )
        with pytest.raises(TraceFormatError, match="line 2"):
            load_causal(str(path))

    def test_corrupt_gzipped_line_names_its_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write('{"format": "repro-obs-v1", "version": 1, "meta": {}}\n')
            handle.write("[1, 2, 3]\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            load_causal(str(path))
