"""The bit-transparency property: observation must not perturb.

For every protocol the paper describes, an instrumented run and a bare
run of the identical seeded scenario must be indistinguishable — same
position trace, same delivered bit streams, same monitor verdicts.
And with no recorder attached, the obs layer must dispatch *nothing*
(the zero-overhead-when-disabled contract).
"""

from __future__ import annotations

import pytest

from repro.obs import recorder as recorder_module
from repro.obs.recorder import ObsRecorder, dispatch_count
from repro.verify.engine import _received_fingerprint, _trace_fingerprint, drive
from repro.verify.monitors import attach
from repro.verify.scenarios import CELLS, PROTOCOLS, build_run

_SEED = 1


def _drive_cell(protocol: str, instrument: bool):
    """One seeded synchronous run of ``protocol``; optionally recorded."""
    cell = CELLS[(protocol, "synchronous")]
    run = build_run(cell, _SEED, quick=True)
    recorder = None
    if instrument:
        recorder = ObsRecorder(
            meta={"protocol": protocol, "scheduler": "synchronous"}
        )
        recorder.attach(run.sim)
    attach(run.sim, run.monitors)
    steps = drive(run)
    if recorder is not None:
        recorder.detach(run.sim)
    verdicts = [
        (m.name, [(v.invariant, v.time, v.message) for v in m.violations])
        for m in run.monitors
    ]
    return run, steps, verdicts, recorder


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestBitTransparency:
    def test_instrumented_run_is_byte_identical(self, protocol):
        bare, bare_steps, bare_verdicts, _ = _drive_cell(protocol, False)
        inst, inst_steps, inst_verdicts, recorder = _drive_cell(protocol, True)
        assert inst_steps == bare_steps
        assert _trace_fingerprint(inst) == _trace_fingerprint(bare)
        assert _received_fingerprint(inst) == _received_fingerprint(bare)
        assert tuple(inst.sim.positions) == tuple(bare.sim.positions)
        assert inst_verdicts == bare_verdicts
        # the recorder did actually observe the run it left untouched
        assert recorder is not None and len(recorder.events) > 0

    def test_disabled_path_dispatches_nothing(self, protocol):
        before = dispatch_count()
        _drive_cell(protocol, False)
        assert dispatch_count() == before
        assert recorder_module._dispatches == before
