"""The bit-transparency property: observation must not perturb.

For every protocol the paper describes, an instrumented run and a bare
run of the identical seeded scenario must be indistinguishable — same
position trace, same delivered bit streams, same monitor verdicts.
And with no recorder attached, the obs layer must dispatch *nothing*
(the zero-overhead-when-disabled contract).
"""

from __future__ import annotations

import itertools

import pytest

from repro.obs import recorder as recorder_module
from repro.obs.events import PHASE
from repro.obs.profiler import phase_hotspots, render_hotspots
from repro.obs.recorder import ObsRecorder, dispatch_count
from repro.verify.engine import _received_fingerprint, _trace_fingerprint, drive
from repro.verify.monitors import attach
from repro.verify.scenarios import CELLS, PROTOCOLS, build_run

_SEED = 1


def _fake_clock():
    ticks = itertools.count()
    return lambda: next(ticks) * 0.001


def _drive_cell(protocol: str, instrument: bool, clock=None, sink=None):
    """One seeded synchronous run of ``protocol``; optionally recorded."""
    cell = CELLS[(protocol, "synchronous")]
    run = build_run(cell, _SEED, quick=True)
    recorder = None
    if instrument:
        recorder = ObsRecorder(
            clock=clock,
            meta={"protocol": protocol, "scheduler": "synchronous"},
        )
        recorder.attach(run.sim)
        if sink is not None:
            recorder.add_sink(sink)
    attach(run.sim, run.monitors)
    steps = drive(run)
    if recorder is not None:
        recorder.detach(run.sim)
    verdicts = [
        (m.name, [(v.invariant, v.time, v.message) for v in m.violations])
        for m in run.monitors
    ]
    return run, steps, verdicts, recorder


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestBitTransparency:
    def test_instrumented_run_is_byte_identical(self, protocol):
        bare, bare_steps, bare_verdicts, _ = _drive_cell(protocol, False)
        inst, inst_steps, inst_verdicts, recorder = _drive_cell(protocol, True)
        assert inst_steps == bare_steps
        assert _trace_fingerprint(inst) == _trace_fingerprint(bare)
        assert _received_fingerprint(inst) == _received_fingerprint(bare)
        assert tuple(inst.sim.positions) == tuple(bare.sim.positions)
        assert inst_verdicts == bare_verdicts
        # the recorder did actually observe the run it left untouched
        assert recorder is not None and len(recorder.events) > 0

    def test_disabled_path_dispatches_nothing(self, protocol):
        before = dispatch_count()
        _drive_cell(protocol, False)
        assert dispatch_count() == before
        assert recorder_module._dispatches == before


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestCausalStampingTransparency:
    """Vector-clock stamping rides attach/detach without perturbing."""

    def test_bit_events_carry_vector_clock_stamps(self, protocol):
        from repro.obs.events import BIT_KINDS

        _, _, _, recorder = _drive_cell(protocol, True)
        bit_events = [e for e in recorder.events if e.kind in BIT_KINDS]
        assert bit_events
        for event in bit_events:
            assert event.get("vc"), f"unstamped {event.kind}"
            assert isinstance(event.get("wall"), (int, float))

    def test_robot_phase_hook_is_uninstalled_after_detach(self, protocol):
        run, _, _, _ = _drive_cell(protocol, True)
        assert getattr(run.sim, "_robot_phase_hook", None) is None

    def test_stamps_are_deterministic_across_runs(self, protocol):
        stamps = []
        for _ in range(2):
            _, _, _, recorder = _drive_cell(protocol, True)
            stamps.append(
                [(e.kind, e.time, e.get("vc")) for e in recorder.events
                 if e.get("vc") is not None]
            )
        assert stamps[0] == stamps[1]


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestTapTransparency:
    """A live sink teed from the recorder must not perturb the run."""

    def test_tapped_run_is_byte_identical(self, protocol):
        from repro.obs.stream import StreamingSink

        bare, bare_steps, bare_verdicts, _ = _drive_cell(protocol, False)
        sink = StreamingSink()
        inst, inst_steps, inst_verdicts, recorder = _drive_cell(
            protocol, True, sink=sink
        )
        assert inst_steps == bare_steps
        assert _trace_fingerprint(inst) == _trace_fingerprint(bare)
        assert _received_fingerprint(inst) == _received_fingerprint(bare)
        assert inst_verdicts == bare_verdicts
        # the tap saw the exact event stream the recorder kept
        assert sink.accepted == len(recorder.events)
        assert sink.dropped == 0
        assert sink.drain() == recorder.events

    def test_disabled_path_still_dispatches_nothing_with_stream_loaded(
        self, protocol
    ):
        import repro.obs.stream  # noqa: F401 — loading the tap changes nothing

        before = dispatch_count()
        _drive_cell(protocol, False)
        assert dispatch_count() == before


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestProfilerAttachment:
    """The span profiler rides the same attachment, for every protocol."""

    def test_profiled_run_stays_transparent(self, protocol):
        bare, bare_steps, bare_verdicts, _ = _drive_cell(protocol, False)
        inst, inst_steps, _, recorder = _drive_cell(
            protocol, True, clock=_fake_clock()
        )
        assert inst_steps == bare_steps
        assert _trace_fingerprint(inst) == _trace_fingerprint(bare)
        assert _received_fingerprint(inst) == _received_fingerprint(bare)
        # phase spans were recorded, including the compute sub-phases
        phases = {e.get("phase") for e in recorder.events if e.kind == PHASE}
        assert {"schedule", "compute", "move"} <= phases
        assert "compute.observe" in phases
        assert "compute.decide" in phases

    def test_hotspot_table_is_byte_identical_under_a_fake_clock(self, protocol):
        runs = [
            _drive_cell(protocol, True, clock=_fake_clock())[3].to_run()
            for _ in range(2)
        ]
        tables = [render_hotspots([run]) for run in runs]
        assert tables[0] == tables[1]
        assert f"hotspots [{protocol} x synchronous]" in tables[0]
        stats = phase_hotspots(runs[0].events)
        assert stats  # a non-empty, ranked table
        assert all(s.self_seconds >= 0.0 for s in stats)
