"""Run diffing: clean on identical seeded runs, forensic otherwise."""

from __future__ import annotations

import itertools

import pytest

from repro.obs.__main__ import main
from repro.obs.diff import (
    MetricDelta,
    diff_history_entries,
    diff_runs,
    render_diff,
)
from repro.obs.export import ObsRun, dump_run
from repro.obs.history import HistoryEntry, HistoryStore
from repro.obs.recorder import ObsRecorder
from repro.verify.engine import drive
from repro.verify.scenarios import CELLS, build_run

_SEED = 7


def _fake_clock():
    ticks = itertools.count()
    return lambda: next(ticks) * 0.001


@pytest.fixture(autouse=True)
def _frozen_shared_memo_stats(monkeypatch):
    """Pin the process-wide SEC memo counters.

    They accumulate across runs in one process, so without this two
    recordings of the same seeded scenario would differ in their
    ``shared_sec_*`` gauges — exactly the cross-run noise the
    injectable clock removes from the phase profile.
    """
    monkeypatch.setattr(
        "repro.perf.memo.shared_sec_stats",
        lambda: {"hits": 0, "misses": 0, "entries": 0},
    )


def _record(protocol: str) -> ObsRun:
    cell = CELLS[(protocol, "synchronous")]
    run = build_run(cell, _SEED, quick=True)
    recorder = ObsRecorder(
        clock=_fake_clock(),
        meta={"protocol": protocol, "scheduler": "synchronous"},
    )
    recorder.attach(run.sim)
    drive(run)
    recorder.detach(run.sim)
    return recorder.to_run()


class TestDiffRuns:
    def test_same_seeded_run_diffs_clean(self):
        diff = diff_runs(_record("sync_two"), _record("sync_two"))
        assert diff.identical
        assert diff.metric_deltas == []
        assert diff.divergence is None
        assert "identical" in render_diff(diff)
        assert "zero metric deltas" in render_diff(diff)

    def test_different_protocols_localize_the_first_divergence(self):
        diff = diff_runs(_record("sync_two"), _record("sync_granular"))
        assert not diff.identical
        assert diff.divergence is not None
        # header is JSONL line 1, so event i lives on line i + 2
        assert diff.divergence.line == diff.divergence.index + 2
        text = render_diff(diff, label_a="sync_two", label_b="sync_granular")
        assert "first divergence" in text
        assert f"JSONL line {diff.divergence.line}" in text
        assert "protocol: 'sync_two' -> 'sync_granular'" in text

    def test_truncation_is_reported_as_an_early_end(self):
        full = _record("sync_two")
        cut = ObsRun(
            meta=dict(full.meta),
            events=full.events[:-3],
            metrics=full.metrics,
        )
        diff = diff_runs(full, cut)
        assert diff.divergence is not None
        assert diff.divergence.index == len(full.events) - 3
        assert diff.divergence.reason == "run B ended here"
        assert diff.events_total == (len(full.events), len(full.events) - 3)

    def test_changed_event_counts_are_tabulated(self):
        a, b = _record("sync_two"), _record("sync_granular")
        diff = diff_runs(a, b)
        for kind, (count_a, count_b) in diff.event_counts.items():
            assert count_a == len(a.of_kind(kind))
            assert count_b == len(b.of_kind(kind))


class TestMetricDelta:
    def test_verdict_reads_the_direction_of_goodness(self):
        assert MetricDelta("cached_s", 1.0, 0.5).verdict == "better"
        assert MetricDelta("cached_s", 0.5, 1.5).verdict == "worse"
        assert MetricDelta("speedup", 4.0, 2.0).verdict == "worse"
        assert MetricDelta("sim_epoch", 1.0, 2.0).verdict == "changed"
        assert MetricDelta("cached_s", None, 1.0).verdict == "only in B"
        assert MetricDelta("cached_s", 1.0, None).verdict == "only in A"


class TestHistoryDiff:
    def test_equal_entries_diff_clean(self):
        a = HistoryEntry(source="t", run_id="r", metrics={"x": 1.0}, seq=1)
        b = HistoryEntry(source="t", run_id="r", metrics={"x": 1.0}, seq=2)
        assert diff_history_entries(a, b).identical

    def test_deltas_carry_direction_annotations(self):
        a = HistoryEntry(
            source="t", run_id="r", metrics={"cached_s": 0.5, "only_a": 1.0},
            seq=1,
        )
        b = HistoryEntry(
            source="t", run_id="r", metrics={"cached_s": 1.5}, seq=2
        )
        diff = diff_history_entries(a, b)
        names = [d.name for d in diff.metric_deltas]
        assert names == ["cached_s", "only_a"]
        text = render_diff(diff, "entry #1", "entry #2")
        assert "worse, lower is better" in text
        assert "only in A" in text


class TestCli:
    def test_identical_dumped_runs_exit_zero(self, tmp_path, capsys):
        a = dump_run(_record("sync_two"), str(tmp_path / "a.jsonl"))
        b = dump_run(_record("sync_two"), str(tmp_path / "b.jsonl"))
        assert main(["diff", a, b, "--gate"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_gate_exits_three_on_any_difference(self, tmp_path, capsys):
        a = dump_run(_record("sync_two"), str(tmp_path / "a.jsonl"))
        b = dump_run(_record("sync_granular"), str(tmp_path / "b.jsonl"))
        assert main(["diff", a, b]) == 0  # report-only by default
        assert main(["diff", a, b, "--gate"]) == 3
        assert "first divergence" in capsys.readouterr().out

    def test_missing_file_is_a_one_line_error(self, tmp_path, capsys):
        a = dump_run(_record("sync_two"), str(tmp_path / "a.jsonl"))
        assert main(["diff", a, str(tmp_path / "absent.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "no such run file" in err
        assert "Traceback" not in err

    def _history(self, tmp_path, rows):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        for row in rows:
            store.append(HistoryEntry(source="t", run_id="t", metrics=row))
        return str(store.path)

    def test_history_entry_diff_by_seq(self, tmp_path, capsys):
        path = self._history(
            tmp_path, [{"cached_s": 0.5}, {"cached_s": 0.7}]
        )
        assert main(["diff", "1", "2", "--history", path]) == 0
        out = capsys.readouterr().out
        assert "entry #1" in out and "entry #2" in out
        assert "cached_s" in out

    def test_unknown_history_seq_is_a_one_line_error(self, tmp_path, capsys):
        path = self._history(tmp_path, [{"cached_s": 0.5}])
        assert main(["diff", "1", "9", "--history", path]) == 1
        assert "no history entry #9" in capsys.readouterr().err

    def test_non_numeric_seq_with_history_is_rejected(self, tmp_path, capsys):
        path = self._history(tmp_path, [{"cached_s": 0.5}])
        assert main(["diff", "a.jsonl", "2", "--history", path]) == 1
        assert "seq numbers" in capsys.readouterr().err
