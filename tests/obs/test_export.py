"""The JSONL export: exact round-trips, line-numbered diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, TraceFormatError
from repro.obs.events import STEP, Event
from repro.obs.export import (
    FORMAT,
    ObsRun,
    dump_run,
    load_run,
    run_from_jsonl,
    run_to_jsonl,
)


def _sample_run() -> ObsRun:
    return ObsRun(
        meta={"protocol": "sync_two", "scheduler": "synchronous", "count": 2},
        events=[
            Event(STEP, 0, {"active": [0, 1], "epoch": 1}),
            Event(STEP, 1, {"active": [0, 1], "epoch": 2}),
        ],
        metrics=[{"name": "sim_steps_total", "type": "counter", "value": 2}],
    )


class TestRoundTrip:
    def test_events_meta_and_metrics_survive_exactly(self):
        run = _sample_run()
        loaded = run_from_jsonl(run_to_jsonl(run))
        assert loaded.meta == run.meta
        assert loaded.events == run.events
        assert loaded.metrics == run.metrics

    def test_serialisation_is_deterministic(self):
        assert run_to_jsonl(_sample_run()) == run_to_jsonl(_sample_run())

    def test_dump_and_load_via_files(self, tmp_path):
        path = dump_run(_sample_run(), str(tmp_path / "run.jsonl"))
        loaded = load_run(path)
        assert loaded.events == _sample_run().events

    def test_run_accessors(self):
        run = _sample_run()
        assert run.count == 2
        assert run.total_instants == 2
        assert len(run.of_kind(STEP)) == 2


class TestGzip:
    """``*.jsonl.gz`` paths compress transparently and deterministically."""

    def test_round_trip_through_a_gzipped_file(self, tmp_path):
        path = dump_run(_sample_run(), str(tmp_path / "run.jsonl.gz"))
        loaded = load_run(path)
        assert loaded.meta == _sample_run().meta
        assert loaded.events == _sample_run().events
        assert loaded.metrics == _sample_run().metrics

    def test_the_file_really_is_gzip(self, tmp_path):
        path = dump_run(_sample_run(), str(tmp_path / "run.jsonl.gz"))
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"

    def test_compressed_dumps_are_byte_identical(self, tmp_path):
        """The pinned gzip mtime keeps identical runs byte-identical."""
        a = dump_run(_sample_run(), str(tmp_path / "a.jsonl.gz"))
        b = dump_run(_sample_run(), str(tmp_path / "b.jsonl.gz"))
        with open(a, "rb") as ha, open(b, "rb") as hb:
            assert ha.read() == hb.read()

    def test_garbled_gzip_payload_is_a_trace_format_error(self, tmp_path):
        import gzip

        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("{not json\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            load_run(str(path))


class TestFormatErrors:
    """Garbled input fails loudly, with the offending line number."""

    def test_empty_document(self):
        with pytest.raises(TraceFormatError, match="empty"):
            run_from_jsonl("")

    def test_truncated_line_names_the_line(self):
        text = run_to_jsonl(_sample_run())
        truncated = text[: len(text) // 2]
        with pytest.raises(TraceFormatError, match=r"line \d+"):
            run_from_jsonl(truncated)

    def test_garbled_json_names_the_line(self):
        good = run_to_jsonl(_sample_run()).splitlines()
        good[1] = '{"kind": "step", "t": 0, "active": [0,'
        with pytest.raises(TraceFormatError, match="line 2"):
            run_from_jsonl("\n".join(good))

    def test_non_object_line(self):
        good = run_to_jsonl(_sample_run()).splitlines()
        good[2] = "[1, 2, 3]"
        with pytest.raises(TraceFormatError, match="line 3"):
            run_from_jsonl("\n".join(good))

    def test_unknown_format(self):
        with pytest.raises(TraceFormatError, match="unknown obs format"):
            run_from_jsonl('{"format": "not-a-run", "version": 1, "meta": {}}\n')

    def test_unsupported_version(self):
        with pytest.raises(TraceFormatError, match="version"):
            run_from_jsonl(
                '{"format": "%s", "version": 99, "meta": {}}\n' % FORMAT
            )

    def test_missing_meta(self):
        with pytest.raises(TraceFormatError, match="meta"):
            run_from_jsonl('{"format": "%s", "version": 1}\n' % FORMAT)

    def test_content_after_metrics_trailer(self):
        text = run_to_jsonl(_sample_run()) + '{"kind": "step", "t": 9}\n'
        with pytest.raises(TraceFormatError, match="after the metrics trailer"):
            run_from_jsonl(text)

    def test_bad_event_kind_names_the_line(self):
        good = run_to_jsonl(_sample_run()).splitlines()
        good[1] = '{"kind": "tea-break", "t": 0}'
        with pytest.raises(TraceFormatError, match="line 2"):
            run_from_jsonl("\n".join(good))

    def test_errors_are_catchable_as_reproerror(self):
        """Callers that only know the base hierarchy still catch it."""
        with pytest.raises(ReproError):
            run_from_jsonl("not json at all")
