"""The metrics registry: instruments, labels, deterministic snapshots."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_negative_increment_is_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_snapshot_is_json_ready(self):
        c = Counter()
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(7)
        g.set(3.5)
        assert g.value == 3.5
        assert g.snapshot() == {"type": "gauge", "value": 3.5}


class TestHistogram:
    def test_default_buckets_are_the_decade_ladder(self):
        h = Histogram()
        assert h.bounds[0] == 1e-6 and h.bounds[-1] == 100.0

    def test_observations_land_in_the_right_bucket(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(0.5)   # <= 1.0
        h.observe(1.0)   # <= 1.0 (bounds are inclusive upper bounds)
        h.observe(5.0)   # <= 10.0
        h.observe(50.0)  # overflow
        assert h.counts == [2, 1]
        assert h.overflow == 1
        assert h.count == 4
        assert h.total == pytest.approx(56.5)
        assert h.mean == pytest.approx(56.5 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_exact_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        h.observe(1.0)    # exactly the first bound -> first bucket
        h.observe(10.0)   # exactly the middle bound -> second bucket
        h.observe(100.0)  # exactly the last bound -> last bucket, not overflow
        assert h.counts == [1, 1, 1]
        assert h.overflow == 0

    def test_just_above_an_edge_spills_to_the_next_bucket(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(1.0000001)
        assert h.counts == [0, 1]
        h.observe(10.0000001)
        assert h.overflow == 1

    def test_negative_and_zero_land_in_the_first_bucket(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(-5.0)
        h.observe(0.0)
        assert h.counts == [2, 0]
        assert h.overflow == 0
        assert h.total == pytest.approx(-5.0)

    def test_overflow_counts_toward_count_and_total(self):
        h = Histogram(bounds=(1.0,))
        h.observe(99.0)
        assert h.counts == [0]
        assert h.overflow == 1
        assert h.count == 1
        assert h.total == pytest.approx(99.0)
        assert h.mean == pytest.approx(99.0)

    def test_unsorted_bounds_are_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(2.0, 1.0))

    def test_empty_bounds_are_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")
        assert len(reg) == 1

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        a = reg.counter("bits", protocol="sync_two")
        b = reg.counter("bits", protocol="async_n")
        a.inc(5)
        assert b.value == 0
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", p="1", s="2")
        b = reg.counter("x", s="2", p="1")
        assert a is b

    def test_type_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("v")
        with pytest.raises(ObservabilityError):
            reg.gauge("v")
        with pytest.raises(ObservabilityError):
            reg.histogram("v")

    def test_histogram_bounds_must_be_stable(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        reg.histogram("lat")  # omitting bounds later is fine
        reg.histogram("lat", buckets=(1.0, 2.0))  # repeating them too
        with pytest.raises(ObservabilityError):
            reg.histogram("lat", buckets=(5.0,))

    def test_collect_is_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a", k="2").inc(2)
        reg.counter("a", k="1").inc(1)
        snapshot = reg.collect()
        assert [e["name"] for e in snapshot] == ["a", "a", "z"]
        assert snapshot == reg.collect()
        assert snapshot[0]["labels"] == {"k": "1"}

    def test_snapshots_are_label_order_deterministic(self):
        """Same series touched with shuffled label kwargs: one snapshot."""
        reg_a = MetricsRegistry()
        reg_a.counter("bits", protocol="p", scheduler="s").inc(3)
        reg_b = MetricsRegistry()
        reg_b.counter("bits", scheduler="s", protocol="p").inc(3)
        snap_a, snap_b = reg_a.collect(), reg_b.collect()
        assert snap_a == snap_b
        assert list(snap_a[0]["labels"]) == sorted(snap_a[0]["labels"])

    def test_histogram_snapshot_carries_the_bucket_table(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        reg.histogram("lat").observe(50.0)
        (entry,) = reg.collect()
        assert entry["type"] == "histogram"
        assert entry["bounds"] == [1.0, 10.0]
        assert entry["counts"] == [1, 0]
        assert entry["overflow"] == 1
        assert entry["count"] == 2

    def test_absorb_records_gauges(self):
        reg = MetricsRegistry()
        reg.absorb({"hit_rate": 0.5, "hits": 10}, protocol="sync_two")
        assert reg.gauge("hit_rate", protocol="sync_two").value == 0.5
        assert reg.gauge("hits", protocol="sync_two").value == 10

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0

    def test_default_registry_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
        finally:
            set_default_registry(previous)
        assert default_registry() is previous
