"""The metrics registry: instruments, labels, deterministic snapshots."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_negative_increment_is_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_snapshot_is_json_ready(self):
        c = Counter()
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(7)
        g.set(3.5)
        assert g.value == 3.5
        assert g.snapshot() == {"type": "gauge", "value": 3.5}


class TestHistogram:
    def test_default_buckets_are_the_decade_ladder(self):
        h = Histogram()
        assert h.bounds[0] == 1e-6 and h.bounds[-1] == 100.0

    def test_observations_land_in_the_right_bucket(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(0.5)   # <= 1.0
        h.observe(1.0)   # <= 1.0 (bounds are inclusive upper bounds)
        h.observe(5.0)   # <= 10.0
        h.observe(50.0)  # overflow
        assert h.counts == [2, 1]
        assert h.overflow == 1
        assert h.count == 4
        assert h.total == pytest.approx(56.5)
        assert h.mean == pytest.approx(56.5 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_unsorted_bounds_are_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(2.0, 1.0))

    def test_empty_bounds_are_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")
        assert len(reg) == 1

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        a = reg.counter("bits", protocol="sync_two")
        b = reg.counter("bits", protocol="async_n")
        a.inc(5)
        assert b.value == 0
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", p="1", s="2")
        b = reg.counter("x", s="2", p="1")
        assert a is b

    def test_type_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("v")
        with pytest.raises(ObservabilityError):
            reg.gauge("v")
        with pytest.raises(ObservabilityError):
            reg.histogram("v")

    def test_histogram_bounds_must_be_stable(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        reg.histogram("lat")  # omitting bounds later is fine
        reg.histogram("lat", buckets=(1.0, 2.0))  # repeating them too
        with pytest.raises(ObservabilityError):
            reg.histogram("lat", buckets=(5.0,))

    def test_collect_is_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a", k="2").inc(2)
        reg.counter("a", k="1").inc(1)
        snapshot = reg.collect()
        assert [e["name"] for e in snapshot] == ["a", "a", "z"]
        assert snapshot == reg.collect()
        assert snapshot[0]["labels"] == {"k": "1"}

    def test_absorb_records_gauges(self):
        reg = MetricsRegistry()
        reg.absorb({"hit_rate": 0.5, "hits": 10}, protocol="sync_two")
        assert reg.gauge("hit_rate", protocol="sync_two").value == 0.5
        assert reg.gauge("hits", protocol="sync_two").value == 10

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0

    def test_default_registry_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
        finally:
            set_default_registry(previous)
        assert default_registry() is previous
