"""The longitudinal history store and its ingest adapters."""

from __future__ import annotations

import json

import pytest

from repro.campaign.__main__ import main as campaign_main
from repro.errors import TraceFormatError
from repro.obs.history import (
    HISTORY_SCHEMA,
    HistoryEntry,
    HistoryStore,
    entry_from_campaign,
    entry_from_registry,
    entry_from_results,
    flatten_scalars,
    metrics_from_snapshot,
)
from repro.obs.registry import MetricsRegistry


def _entry(**metrics) -> HistoryEntry:
    return HistoryEntry(source="test", run_id="t", metrics=metrics)


class TestStore:
    def test_append_assigns_increasing_seq_and_stamps(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        first = store.append(_entry(a=1.0))
        second = store.append(_entry(a=2.0))
        assert (first.seq, second.seq) == (1, 2)
        assert first.recorded_at is not None

    def test_entries_round_trip_exactly(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        entry = HistoryEntry(
            source="run_all",
            run_id="quick",
            metrics={"cached_s": 0.5},
            meta={"mode": "quick"},
            git_commit="deadbeef",
        )
        store.append(entry)
        loaded = store.entries()[0]
        assert loaded.metrics == {"cached_s": 0.5}
        assert loaded.meta == {"mode": "quick"}
        assert loaded.git_commit == "deadbeef"
        assert loaded.source == "run_all"

    def test_missing_file_reads_as_empty(self, tmp_path):
        store = HistoryStore(str(tmp_path / "absent.jsonl"))
        assert store.entries() == []
        assert not store.exists()

    def test_lines_are_self_describing(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        store.append(_entry(a=1.0))
        doc = json.loads(store.path.read_text().splitlines()[0])
        assert doc["schema"] == HISTORY_SCHEMA
        assert doc["seq"] == 1

    def test_garbled_line_names_the_line(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        store.append(_entry(a=1.0))
        with open(store.path, "a") as handle:
            handle.write("{oops\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            store.entries()

    def test_wrong_schema_line_is_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"schema": "something-else", "seq": 1}\n')
        with pytest.raises(TraceFormatError, match="line 1"):
            HistoryStore(str(path)).entries()

    def test_series_tracks_one_metric_over_time(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        store.append(_entry(a=1.0, b=9.0))
        store.append(_entry(a=2.0))
        store.append(_entry(b=7.0))
        assert store.series("a") == [(1, 1.0), (2, 2.0)]
        assert store.metric_names() == ["a", "b"]

    def test_sqlite_index_is_a_pure_derivation(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        store.append(_entry(a=1.0))
        store.append(_entry(a=3.0))
        rows = store.query_index(
            "SELECT seq, value FROM metrics WHERE name = ? ORDER BY seq", "a"
        )
        assert rows == [(1, 1.0), (2, 3.0)]
        store.index_path.unlink()
        assert store.query_index("SELECT COUNT(*) FROM entries") == [(2,)]


class TestGzipStore:
    """``*.jsonl.gz`` histories append and read transparently."""

    def test_append_and_read_back_through_gzip(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl.gz"))
        store.append(_entry(a=1.0))
        store.append(_entry(a=2.0))
        loaded = store.entries()
        assert [e.seq for e in loaded] == [1, 2]
        assert loaded[1].metrics == {"a": 2.0}

    def test_the_file_really_is_gzip(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl.gz"))
        store.append(_entry(a=1.0))
        with open(store.path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"

    def test_cli_diff_reads_a_gzipped_history(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        store = HistoryStore(str(tmp_path / "h.jsonl.gz"))
        store.append(_entry(a=1.0))
        store.append(_entry(a=5.0))
        assert obs_main(["diff", "1", "2", "--history", str(store.path)]) == 0
        out = capsys.readouterr().out
        assert "entry #1" in out and "entry #2" in out
        assert "a" in out

    def test_cli_regress_gates_a_gzipped_history(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        store = HistoryStore(str(tmp_path / "h.jsonl.gz"))
        for value in (1.0, 1.0, 1.1, 1.0, 50.0):
            store.append(_entry(elapsed_s=value))
        assert obs_main(["regress", "--history", str(store.path)]) == 3
        assert "elapsed_s" in capsys.readouterr().err


class TestFlatten:
    def test_numeric_and_boolean_leaves_only(self):
        flat = flatten_scalars(
            {"a": 1, "b": {"c": 2.5, "ok": True}, "s": "skip", "l": [1, 2]}
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "b.ok": 1.0}

    def test_snapshot_metrics_carry_sorted_labels(self):
        registry = MetricsRegistry()
        registry.counter("bits", scheduler="sync", protocol="p").inc(3)
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        registry.histogram("lat", buckets=[1.0]).observe(1.5)
        flat = metrics_from_snapshot(registry.collect())
        assert flat["bits{protocol=p,scheduler=sync}"] == 3.0
        assert flat["lat.count"] == 2.0
        assert flat["lat.sum"] == 2.0
        assert flat["lat.mean"] == 1.0


class TestIngest:
    def test_entry_from_v4_results_uses_the_registry_snapshot(self):
        results = {
            "schema": "repro-bench-results",
            "version": 4,
            "mode": "quick",
            "git_commit": "abc123",
            "metrics": [
                {"name": "cached_s", "labels": {"probe": "t"},
                 "type": "gauge", "value": 0.5},
            ],
        }
        entry = entry_from_results(results)
        assert entry.metrics == {"cached_s{probe=t}": 0.5}
        assert entry.git_commit == "abc123"
        assert entry.run_id == "run_all-quick"
        assert entry.meta["version"] == 4

    def test_entry_from_legacy_results_flattens_probe_blocks(self):
        results = {
            "mode": "quick",
            "elapsed_s": 2.0,
            "probes": {"t": {"cached_s": 0.5, "output": "text"}},
            "invariants": {"good": True},
        }
        entry = entry_from_results(results)
        assert entry.metrics == {
            "probe.t.cached_s": 0.5,
            "invariant.good": 1.0,
            "elapsed_s": 2.0,
        }

    def test_entry_from_registry(self):
        registry = MetricsRegistry()
        registry.gauge("epoch").set(7)
        entry = entry_from_registry(registry, run_id="r1", meta={"n": 4})
        assert entry.source == "registry"
        assert entry.metrics == {"epoch": 7.0}
        assert entry.meta == {"n": 4}


def _selftest_spec(tmp_path, behaviors):
    doc = {
        "name": "history-export",
        "defaults": {"timeout_s": 10.0, "max_attempts": 1, "backoff_s": 0.05},
        "cells": [
            {"kind": "selftest", "params": {"behavior": b, "value": i}}
            for i, b in enumerate(behaviors)
        ],
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(doc))
    return str(path)


class TestCampaignExport:
    def test_export_history_appends_store_aggregates(self, tmp_path, capsys):
        spec = _selftest_spec(tmp_path, ["ok", "ok"])
        store = str(tmp_path / "store")
        assert campaign_main(["run", "--spec", spec, "--store", store]) == 0
        history = str(tmp_path / "h.jsonl")
        assert campaign_main(
            ["export-history", store, "--history", history]
        ) == 0
        assert "entry #1" in capsys.readouterr().out
        entries = HistoryStore(history).entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.source == "campaign"
        assert entry.run_id == "history-export"
        assert entry.metrics["cells_total"] == 2.0
        assert entry.metrics["cells_ok"] == 2.0
        assert entry.metrics["cells_failed"] == 0.0
        cell_series = [m for m in entry.metrics if m.startswith("cell.")]
        assert len(cell_series) == 2
        assert all(name.endswith(".elapsed_s") for name in cell_series)

    def test_entry_from_campaign_on_a_missing_store_errors(self, tmp_path):
        from repro.campaign.store import ResultStore
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            entry_from_campaign(ResultStore(str(tmp_path / "nope")))
