"""SLO declarations, attainment windows, error-budget burn."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.slo import SLO, SLOTracker, default_serve_slos, slos_from_json


class TestSLO:
    def test_latency_objective_judges_latency_and_errors(self):
        slo = SLO("fast", op="step", target=0.9, latency_s=0.1)
        assert slo.is_good(0.05, error=False)
        assert not slo.is_good(0.2, error=False)  # too slow
        assert not slo.is_good(0.05, error=True)  # errored
        assert slo.error_budget == pytest.approx(0.1)

    def test_availability_objective_ignores_latency(self):
        slo = SLO("up", target=0.999)
        assert slo.is_good(100.0, error=False)
        assert not slo.is_good(0.0, error=True)

    def test_op_scoping(self):
        assert SLO("a", op="step").watches("step")
        assert not SLO("a", op="step").watches("create")
        assert SLO("a", op="*").watches("anything")

    def test_objective_is_human_readable(self):
        assert SLO("x", op="step", target=0.95, latency_s=0.25).objective() == (
            "95% of step <= 250ms"
        )
        assert SLO("y", target=0.999).objective() == "99.9% of all ops succeed"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "x", "target": 0.0},
            {"name": "x", "target": 1.0},
            {"name": "x", "latency_s": 0.0},
            {"name": "x", "window": 0},
        ],
    )
    def test_invalid_declarations_rejected(self, kwargs):
        with pytest.raises(ObservabilityError):
            SLO(**kwargs)

    def test_config_round_trip(self):
        slos = default_serve_slos()
        parsed = slos_from_json([slo.to_json() for slo in slos])
        assert parsed == slos

    def test_duplicate_names_rejected(self):
        with pytest.raises(ObservabilityError, match="duplicate"):
            slos_from_json([{"name": "a"}, {"name": "a"}])

    def test_malformed_config_rejected(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            slos_from_json([{"op": "step"}])  # no name
        with pytest.raises(ObservabilityError):
            slos_from_json(["not-an-object"])  # type: ignore[list-item]


class TestSLOTracker:
    def test_empty_window_is_vacuously_ok(self):
        tracker = SLOTracker(default_serve_slos())
        assert tracker.attainment("step-latency") == 1.0
        assert tracker.all_ok()

    def test_attainment_and_burn(self):
        tracker = SLOTracker((SLO("fast", op="step", target=0.9,
                                  latency_s=0.1, window=10),))
        for _ in range(8):
            tracker.observe("step", 0.01)
        tracker.observe("step", 0.5)   # slow
        tracker.observe("step", 0.01, error=True)  # errored
        assert tracker.attainment("fast") == pytest.approx(0.8)
        # bad fraction 0.2 over budget 0.1 -> burn 2.0
        assert tracker.burn("fast") == pytest.approx(2.0)
        assert not tracker.all_ok()

    def test_window_rolls(self):
        tracker = SLOTracker((SLO("fast", op="*", target=0.5,
                                  latency_s=0.1, window=4),))
        for _ in range(4):
            tracker.observe("step", 9.0)  # all bad
        assert tracker.attainment("fast") == 0.0
        for _ in range(4):
            tracker.observe("step", 0.01)  # all good, evicting the bad
        assert tracker.attainment("fast") == 1.0

    def test_unwatched_ops_do_not_count(self):
        tracker = SLOTracker((SLO("steps", op="step", target=0.9),))
        tracker.observe("create", 0.0, error=True)
        assert tracker.attainment("steps") == 1.0

    def test_status_rows_and_metrics(self):
        tracker = SLOTracker(default_serve_slos())
        tracker.observe("step", 0.01)
        rows = tracker.status()
        assert [row["name"] for row in rows] == ["step-latency", "availability"]
        assert all(row["ok"] for row in rows)
        metrics = tracker.as_metrics()
        assert metrics["slo_step_latency_attainment"] == 1.0
        assert metrics["slo_availability_burn"] == 0.0
        assert metrics["slo_ok"] == 1.0
