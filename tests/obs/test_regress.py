"""Regression gating over the metrics history."""

from __future__ import annotations

import pytest

from repro.obs.__main__ import main
from repro.obs.history import (
    HistoryEntry,
    HistoryStore,
    RegressPolicy,
    detect,
    direction_of,
    render_regressions,
)
from repro.obs.history.regress import baseline, mad, median


def _entries(*metric_dicts):
    return [
        HistoryEntry(source="test", run_id="t", metrics=dict(m), seq=i + 1)
        for i, m in enumerate(metric_dicts)
    ]


class TestStatistics:
    def test_median_odd_and_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad_is_robust_to_one_outlier(self):
        values = [1.0, 1.0, 1.0, 1.0, 100.0]
        med, deviation = baseline(values)
        assert med == 1.0
        assert deviation == 0.0
        assert mad([1.0, 2.0, 3.0]) == 1.0


class TestDirection:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("cached_s", "lower"),
            ("elapsed_s", "lower"),
            ("cached_s{probe=sync_throughput_n64}", "lower"),
            ("sim_phase_seconds{phase=move}.sum", "lower"),
            ("cache_misses", "lower"),
            ("speedup", "higher"),
            ("uncached_steps_per_sec", "higher"),
            ("hit_rate", "higher"),
            ("invariant.caching_trace_identical", "either"),
            ("sim_epoch", "either"),
        ],
    )
    def test_name_conventions(self, name, expected):
        assert direction_of(name) == expected


class TestDetect:
    def test_identical_runs_are_clean(self):
        entries = _entries(*[{"cached_s": 0.5, "speedup": 4.0}] * 5)
        report = detect(entries)
        assert report.ok
        assert report.checked == 2
        assert report.skipped == 0

    def test_synthetic_3x_slowdown_names_the_metric(self):
        entries = _entries(
            *[{"cached_s": 0.5}] * 4, {"cached_s": 1.5}
        )
        report = detect(entries)
        assert not report.ok
        assert [f.metric for f in report.findings] == ["cached_s"]
        finding = report.findings[0]
        assert finding.value == 1.5
        assert finding.baseline_median == 0.5
        assert finding.direction == "lower"
        assert "cached_s" in render_regressions(report)

    def test_improvement_in_the_good_direction_never_flags(self):
        entries = _entries(*[{"cached_s": 0.5}] * 4, {"cached_s": 0.1})
        assert detect(entries).ok

    def test_higher_is_better_metrics_flag_drops(self):
        entries = _entries(*[{"speedup": 5.0}] * 4, {"speedup": 1.5})
        report = detect(entries)
        assert [f.metric for f in report.findings] == ["speedup"]

    def test_min_samples_guard_skips_young_metrics(self):
        entries = _entries({"cached_s": 0.5}, {"cached_s": 99.0})
        report = detect(entries)
        assert report.ok
        assert report.skipped == 1
        assert report.checked == 0

    def test_mad_noise_band_absorbs_ordinary_jitter(self):
        noisy = [{"cached_s": v} for v in (0.50, 0.55, 0.45, 0.52, 0.48)]
        entries = _entries(*noisy, {"cached_s": 0.56})
        # 0.56 clears the 10% relative gate (12% over the median) but
        # sits inside the MAD noise band of this jittery baseline, so
        # it must not flag — both gates are required.
        assert detect(entries).ok

    def test_direction_override_wins(self):
        entries = _entries(*[{"weird": 1.0}] * 4, {"weird": 3.0})
        policy = RegressPolicy(directions={"weird": "higher"})
        assert detect(entries, policy).ok  # up is good now

    def test_metric_restriction(self):
        entries = _entries(
            *[{"cached_s": 0.5, "other_s": 0.5}] * 4,
            {"cached_s": 1.5, "other_s": 1.5},
        )
        policy = RegressPolicy(metrics=("other_s",))
        report = detect(entries, policy)
        assert [f.metric for f in report.findings] == ["other_s"]

    def test_empty_history(self):
        report = detect([])
        assert report.ok
        assert "empty history" in render_regressions(report)


class TestCli:
    def _seed(self, tmp_path, rows):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        for row in rows:
            store.append(HistoryEntry(source="t", run_id="t", metrics=row))
        return str(store.path)

    def test_identical_history_exits_zero(self, tmp_path, capsys):
        path = self._seed(tmp_path, [{"cached_s": 0.5}] * 5)
        assert main(["regress", "--history", path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_slowdown_gates_with_exit_three(self, tmp_path, capsys):
        path = self._seed(tmp_path, [{"cached_s": 0.5}] * 4 + [{"cached_s": 1.5}])
        assert main(["regress", "--history", path]) == 3
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "cached_s" in out

    def test_report_only_never_gates(self, tmp_path):
        path = self._seed(tmp_path, [{"cached_s": 0.5}] * 4 + [{"cached_s": 1.5}])
        assert main(["regress", "--history", path, "--report-only"]) == 0

    def test_missing_history_is_a_one_line_error(self, tmp_path, capsys):
        assert main(
            ["regress", "--history", str(tmp_path / "absent.jsonl")]
        ) == 1
        err = capsys.readouterr().err
        assert "no such history file" in err
        assert "Traceback" not in err

    def test_tolerance_flags_are_respected(self, tmp_path):
        path = self._seed(tmp_path, [{"cached_s": 0.5}] * 4 + [{"cached_s": 1.5}])
        assert main(
            ["regress", "--history", path, "--rel-tolerance", "5.0"]
        ) == 0
