"""The live plane: traces, rings, windows, exposition, the dashboard."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.live import (
    RequestTrace,
    RequestTracer,
    TraceRing,
    WindowAggregator,
    to_prometheus,
    validate_exposition,
    render_top,
)
from repro.obs.registry import MetricsRegistry


class TestRequestTrace:
    def test_spans_telescope_to_end_to_end(self):
        trace = RequestTrace("r1", "step", app="chat", started=10.0)
        trace.add_span("queue-wait", 10.0, 10.3)
        trace.add_span("execute", 10.3, 10.9)
        trace.add_span("dispatch", 10.9, 11.0)
        trace.ended = 11.0
        assert trace.seconds == pytest.approx(1.0)
        assert trace.coverage() == pytest.approx(1.0)
        assert trace.span_seconds() == pytest.approx(
            {"queue-wait": 0.3, "execute": 0.6, "dispatch": 0.1}
        )

    def test_negative_spans_are_clamped(self):
        trace = RequestTrace("r1", "step", started=0.0)
        trace.add_span("weird", 5.0, 4.0)
        assert trace.spans[0].seconds == 0.0

    def test_json_form_carries_error(self):
        trace = RequestTrace("r9", "step", app="chat", sid="s1", started=0.0)
        trace.ended = 0.5
        trace.error = "ServeError"
        doc = trace.to_json()
        assert doc["trace"] == "r9" and doc["error"] == "ServeError"
        assert doc["sid"] == "s1"


class TestTraceRing:
    def test_drop_oldest_and_counters(self):
        ring = TraceRing(maxlen=2)
        for i in range(5):
            ring.add(RequestTrace(f"r{i}", "step", started=0.0))
        assert len(ring) == 2
        assert ring.added == 5 and ring.dropped == 3
        assert [t.trace_id for t in ring.traces()] == ["r3", "r4"]

    def test_find_returns_newest_match(self):
        ring = TraceRing(maxlen=8)
        first = RequestTrace("dup", "step", started=0.0)
        second = RequestTrace("dup", "step", started=1.0)
        ring.add(first)
        ring.add(second)
        assert ring.find("dup") is second
        assert ring.find("absent") is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ObservabilityError):
            TraceRing(0)


class TestWindowAggregator:
    def test_rolling_percentiles_per_key(self):
        agg = WindowAggregator(window=100)
        for ms in range(1, 101):
            agg.observe("step", "chat", ms / 1e3)
        agg.observe("step", "gossip", 5.0, error=True)
        rows = {(r["op"], r["app"]): r for r in agg.snapshot()}
        chat = rows[("step", "chat")]
        assert chat["count"] == 100 and chat["errors"] == 0
        assert chat["p50"] == pytest.approx(0.050)
        assert chat["p99"] == pytest.approx(0.099)
        assert rows[("step", "gossip")]["errors"] == 1
        assert agg.percentile("step", "chat", 50) == pytest.approx(0.050)
        assert agg.percentile("no", "where", 99) == 0.0

    def test_window_bounds_memory(self):
        agg = WindowAggregator(window=4)
        for _ in range(100):
            agg.observe("step", "chat", 1.0)
        (row,) = agg.snapshot()
        assert row["window"] == 4 and row["count"] == 100


class TestRequestTracer:
    def test_start_finish_feeds_every_surface(self):
        tracer = RequestTracer(window=16)
        trace = tracer.start("step", app="chat", sid="s1")
        trace.add_span("queue-wait", trace.started, trace.started + 0.001)
        tracer.finish(trace)
        errored = tracer.start("step", app="chat", sid="s1")
        tracer.finish(errored, error="ServeError")
        assert len(tracer.ring) == 2
        rows = tracer.requests.snapshot()
        assert rows[0]["count"] == 2 and rows[0]["errors"] == 1
        snapshot = {
            (name, labels): inst.snapshot()
            for name, labels, inst in tracer.registry.series()
        }
        ok_key = ("serve_requests_total",
                  (("app", "chat"), ("op", "step"), ("outcome", "ok")))
        err_key = ("serve_requests_total",
                   (("app", "chat"), ("op", "step"), ("outcome", "error")))
        assert snapshot[ok_key]["value"] == 1
        assert snapshot[err_key]["value"] == 1
        # the errored request burned availability budget
        assert tracer.slo.attainment("availability") == pytest.approx(0.5)

    def test_service_minted_ids_are_unique(self):
        tracer = RequestTracer()
        ids = {tracer.start("step").trace_id for _ in range(10)}
        assert len(ids) == 10
        assert all(i.startswith("r") for i in ids)

    def test_caller_supplied_id_wins(self):
        tracer = RequestTracer()
        assert tracer.start("step", trace_id="mine").trace_id == "mine"

    def test_span_percentile(self):
        tracer = RequestTracer()
        trace = tracer.start("step", app="chat")
        trace.add_span("queue-wait", 0.0, 0.25)
        tracer.finish(trace)
        assert tracer.span_percentile("queue-wait", 99) == pytest.approx(0.25)

    def test_telemetry_shape(self):
        tracer = RequestTracer()
        tracer.finish(tracer.start("step", app="chat"))
        frame = tracer.telemetry()
        assert set(frame) == {"requests", "spans", "slos", "ring"}
        assert frame["ring"]["added"] == 1


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", app="chat", outcome="ok").inc(3)
        registry.gauge("queue_depth").set(7)
        hist = registry.histogram("latency_s", buckets=(0.1, 1.0), app="chat")
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        return registry

    def test_renders_and_validates(self):
        text = to_prometheus(self._registry())
        assert validate_exposition(text) > 0
        lines = text.splitlines()
        assert '# TYPE requests_total counter' in lines
        assert 'requests_total{app="chat",outcome="ok"} 3' in lines
        assert "queue_depth 7" in lines

    def test_histogram_ladder_is_cumulative(self):
        text = to_prometheus(self._registry())
        lines = [l for l in text.splitlines() if l.startswith("latency_s")]
        assert 'latency_s_bucket{app="chat",le="0.1"} 1' in lines
        assert 'latency_s_bucket{app="chat",le="1.0"} 2' in lines
        assert 'latency_s_bucket{app="chat",le="+Inf"} 3' in lines
        assert 'latency_s_count{app="chat"} 3' in lines
        assert any(l.startswith('latency_s_sum{app="chat"}') for l in lines)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", what='say "hi"\nplease\\now').inc()
        text = to_prometheus(registry)
        assert validate_exposition(text) == 1
        assert '\\"hi\\"' in text and "\\n" in text

    def test_validator_rejects_garbage(self):
        for bad in (
            "not a metric line at all!",
            'name{unquoted=oops} 1',
            "",  # no samples
        ):
            with pytest.raises(ObservabilityError):
                validate_exposition(bad)

    def test_deterministic_output(self):
        assert to_prometheus(self._registry()) == to_prometheus(self._registry())


class TestRenderTop:
    def test_renders_a_full_frame(self):
        tracer = RequestTracer()
        tracer.finish(tracer.start("step", app="chat"))
        frame = {
            "stats": {"open": 1, "live": 1, "evicted": 0, "queue_depth": 0,
                      "workers": 2, "accepting": True, "created": 1,
                      "closed": 0, "instants": 64, "evictions": 0,
                      "restores": 0, "rejections": 0},
            "health": {"status": "ok"},
            **tracer.telemetry(),
        }
        text = render_top(frame)
        assert "service: OK" in text
        assert "step" in text and "chat" in text
        assert "availability" in text
        assert "trace ring" in text

    def test_renders_the_empty_service(self):
        text = render_top({"stats": {}, "health": {"status": "ok"}})
        assert "no requests in the window yet" in text
