"""The deterministic span profiler and its hotspot tables."""

from __future__ import annotations

from repro.obs.events import (
    BIT_ENCODE_STARTED,
    BIT_RECEIPT,
    PHASE,
    Event,
)
from repro.obs.export import ObsRun
from repro.obs.profiler import (
    flow_hotspots,
    phase_hotspots,
    render_hotspots,
)


def _phase(name, seconds, t=0):
    return Event(PHASE, t, {"phase": name, "seconds": seconds})


class TestPhaseHotspots:
    def test_self_time_ranks_and_totals_roll_up(self):
        events = [
            _phase("compute", 0.01),
            _phase("compute.observe", 0.20),
            _phase("compute.decide", 0.30),
            _phase("move", 0.05),
            _phase("compute.observe", 0.20),
        ]
        stats = {s.name: s for s in phase_hotspots(events)}
        assert stats["compute.observe"].calls == 2
        assert stats["compute.observe"].self_seconds == 0.40
        # the parent's total absorbs every dotted descendant
        assert stats["compute"].self_seconds == 0.01
        assert abs(stats["compute"].total_seconds - 0.71) < 1e-12
        assert stats["move"].total_seconds == 0.05
        # ranking is by self time, descending
        names = [s.name for s in phase_hotspots(events)]
        assert names[0] == "compute.observe"
        assert names[1] == "compute.decide"

    def test_ties_break_by_name_deterministically(self):
        events = [_phase("b", 0.1), _phase("a", 0.1)]
        assert [s.name for s in phase_hotspots(events)] == ["a", "b"]

    def test_top_k_truncates(self):
        events = [_phase(f"p{i}", float(i)) for i in range(6)]
        assert len(phase_hotspots(events, top=3)) == 3


class TestFlowHotspots:
    def test_flows_aggregate_delivered_bits(self):
        events = [
            Event(BIT_ENCODE_STARTED, 0, {"src": 0, "dst": 1, "bit": 1}),
            Event(BIT_RECEIPT, 2, {"src": 0, "dst": 1, "bit": 1}),
            Event(BIT_ENCODE_STARTED, 3, {"src": 0, "dst": 1, "bit": 0}),
            Event(BIT_RECEIPT, 5, {"src": 0, "dst": 1, "bit": 0}),
            Event(BIT_ENCODE_STARTED, 0, {"src": 2, "dst": 3, "bit": 1}),
        ]
        stats = flow_hotspots(events)
        assert [(s.src, s.dst) for s in stats] == [(0, 1), (2, 3)]
        first = stats[0]
        assert first.bits == 2
        assert first.delivered == 2
        assert first.total_instants == 4.0
        assert first.mean_instants == 2.0
        # the lost bit contributes to the count but not the totals
        assert stats[1].delivered == 0
        assert stats[1].mean_instants == 0.0


class TestRender:
    def _run(self, protocol="sync_two", scheduler="synchronous"):
        return ObsRun(
            meta={"protocol": protocol, "scheduler": scheduler},
            events=[
                _phase("compute", 0.25),
                _phase("move", 0.75),
                Event(BIT_ENCODE_STARTED, 0, {"src": 0, "dst": 1, "bit": 1}),
                Event(BIT_RECEIPT, 1, {"src": 0, "dst": 1, "bit": 1}),
            ],
        )

    def test_sections_group_by_protocol_x_scheduler(self):
        text = render_hotspots([self._run(), self._run(protocol="async_two")])
        assert "hotspots [async_two x synchronous]" in text
        assert "hotspots [sync_two x synchronous]" in text
        # sections are in sorted label order regardless of input order
        assert text.index("async_two") < text.index("sync_two x")

    def test_rendering_is_byte_identical_for_identical_runs(self):
        a = render_hotspots([self._run()])
        b = render_hotspots([self._run()])
        assert a == b
        assert "compute" in a and "r0->r1" in a

    def test_empty_input(self):
        assert "no runs" in render_hotspots([])
