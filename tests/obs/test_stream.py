"""The live telemetry tap: bounded sink, rolling latencies, watch."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.events import BIT_ACK, BIT_ENCODE_STARTED, BIT_RECEIPT, STEP, Event
from repro.obs.export import dump_run
from repro.obs.stream import FlowLatencyTracker, StreamingSink, watch_file
from repro.obs.__main__ import record_demo


def _lines(events) -> str:
    return "".join(json.dumps(e.to_json()) + "\n" for e in events)


def _flight(seq: int, start: int, latency: int):
    """encode/receipt/ack events for one bit on flow 0->1."""
    return [
        Event(BIT_ENCODE_STARTED, start, {"src": 0, "dst": 1, "seq": seq, "bit": 1}),
        Event(BIT_RECEIPT, start + latency - 1, {"src": 0, "dst": 1, "bit": 1}),
        Event(BIT_ACK, start + latency, {"src": 0, "dst": 1, "seq": seq}),
    ]


class TestStreamingSink:
    def test_accept_then_drain_preserves_order(self):
        sink = StreamingSink()
        events = [Event(STEP, t, {}) for t in range(3)]
        for event in events:
            sink.accept(event)
        assert sink.drain() == events
        assert sink.drain() == []

    def test_overflow_drops_the_oldest_and_counts_it(self):
        sink = StreamingSink(maxlen=2)
        for t in range(5):
            sink.accept(Event(STEP, t, {}))
        assert [e.time for e in sink.drain()] == [3, 4]
        assert sink.dropped == 3
        assert sink.accepted == 5

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            StreamingSink(maxlen=0)

    def test_writer_outrunning_reader_surfaces_on_the_registry(self):
        """A consumer falling behind is visible on the metrics endpoint,
        not only on the sink's own ``dropped`` property."""
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        sink = StreamingSink(maxlen=4, registry=registry)
        for t in range(16):  # writer races ahead; nobody drains
            sink.accept(Event(STEP, t, {}))
        assert sink.dropped == 12
        counter = registry.counter("obs_stream_dropped_events")
        assert counter.value == 12
        # the survivors are the newest, in order
        assert [e.time for e in sink.drain()] == [12, 13, 14, 15]
        sink.accept(Event(STEP, 99, {}))  # room again: no new drops
        assert counter.value == 12

    def test_recorder_tees_every_event_into_the_sink(self, tmp_path):
        from repro.obs.recorder import ObsRecorder  # noqa: F401 — assert importable

        sink_events = []

        class Spy(StreamingSink):
            def accept(self, event):
                sink_events.append(event.kind)
                super().accept(event)

        # record_demo with a sink attached via monkey-wiring is covered
        # in test_transparency; here we check the tee sees the same
        # stream the recorder keeps.
        recorder = _attached_demo_recorder(Spy())
        assert sink_events  # the tap saw live traffic
        assert sink_events == [e.kind for e in recorder.events]


def _attached_demo_recorder(sink):
    """Run the 2-robot demo with ``sink`` teed in; returns the recorder."""
    from repro.apps.harness import SwarmHarness
    from repro.geometry.vec import Vec2
    from repro.obs.recorder import ObsRecorder
    from repro.protocols.sync_two import SyncTwoProtocol

    harness = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(),
        identified=False,
        sigma=6.0,
    )
    recorder = ObsRecorder(meta={"protocol": "sync_two", "scheduler": "synchronous"})
    recorder.attach(harness.simulator)
    recorder.add_sink(sink)
    harness.simulator.protocol_of(0).send_bits(1, [1, 0, 1])
    harness.run(10)
    recorder.detach(harness.simulator)
    return recorder


class TestFlowLatencyTracker:
    def test_latency_is_encode_to_ack(self):
        tracker = FlowLatencyTracker()
        for event in _flight(0, start=0, latency=4):
            tracker.consume(event)
        (row,) = tracker.snapshot()
        assert row["flow"] == "0->1"
        assert row["sent"] == row["delivered"] == row["acked"] == 1
        assert row["p50"] == 4.0

    def test_percentiles_over_many_flights(self):
        tracker = FlowLatencyTracker()
        clock = 0
        for seq, latency in enumerate([1] * 9 + [100]):
            for event in _flight(seq, start=clock, latency=latency):
                tracker.consume(event)
            clock += latency + 1
        (row,) = tracker.snapshot()
        assert row["p50"] == 1.0
        assert row["p99"] == 100.0

    def test_window_forgets_old_samples(self):
        tracker = FlowLatencyTracker(window=2)
        clock = 0
        for seq, latency in enumerate([100, 1, 1]):
            for event in _flight(seq, start=clock, latency=latency):
                tracker.consume(event)
            clock += latency + 1
        (row,) = tracker.snapshot()
        assert row["p99"] == 1.0  # the 100 fell out of the window

    def test_render_is_a_table_with_a_header(self):
        tracker = FlowLatencyTracker()
        for event in _flight(0, start=0, latency=2):
            tracker.consume(event)
        text = tracker.render()
        assert "flow" in text.splitlines()[0]
        assert "0->1" in text

    def test_empty_tracker_renders_a_placeholder(self):
        assert "no bit-lifecycle events" in FlowLatencyTracker().render()


class TestWatchFile:
    def test_once_reads_the_whole_file_and_returns_event_count(self, tmp_path):
        path = record_demo(str(tmp_path / "demo.jsonl"), steps=10)
        out = io.StringIO()
        consumed = watch_file(path, once=True, out=out)
        assert consumed > 0
        assert "0->1" in out.getvalue()

    def test_gz_paths_imply_a_single_frame(self, tmp_path):
        from repro.obs.export import load_run

        plain = record_demo(str(tmp_path / "demo.jsonl"), steps=10)
        gz = dump_run(load_run(plain), str(tmp_path / "demo.jsonl.gz"))
        out = io.StringIO()
        assert watch_file(gz, out=out) > 0
        assert "0->1" in out.getvalue()

    def test_tail_loop_picks_up_appended_lines(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text("")
        chunks = iter([
            _lines(_flight(0, start=0, latency=2)),
            _lines(_flight(1, start=3, latency=6)),
        ])

        def feed(_interval):
            path.write_text(path.read_text() + next(chunks))

        # pre-seed the first chunk; the fake sleep appends the second
        feed(0)
        out = io.StringIO()
        consumed = watch_file(
            str(path), interval=0.0, iterations=2, out=out, sleep=feed
        )
        assert consumed == 6
        text = out.getvalue()
        assert "watch frame 1" in text and "watch frame 2" in text

    def test_partial_trailing_line_is_buffered_not_crashed(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(
            _lines(_flight(0, start=0, latency=2)) + '{"kind": "bit-rec'
        )  # torn mid-write
        out = io.StringIO()
        consumed = watch_file(str(path), iterations=1, out=out, sleep=lambda _: None)
        assert consumed == 3  # the torn tail stayed in the buffer
