"""The ASCII report views and the ``python -m repro.obs`` CLI."""

from __future__ import annotations

import pytest

from repro.obs.__main__ import main, record_demo
from repro.obs.export import load_run
from repro.obs.report import (
    render_gantt,
    render_metrics,
    render_profile,
    render_report,
    render_timeline,
)


@pytest.fixture(scope="module")
def demo_path(tmp_path_factory) -> str:
    """One recorded 2-robot sync_two run, shared across this module."""
    path = tmp_path_factory.mktemp("obs") / "demo.jsonl"
    return record_demo(str(path), steps=12)


class TestViews:
    def test_timeline_shows_every_robot(self, demo_path):
        text = render_timeline(load_run(demo_path))
        assert "r0" in text and "r1" in text
        assert "#" in text  # synchronous schedule: everyone active

    def test_gantt_shows_bit_rows_and_marks(self, demo_path):
        text = render_gantt(load_run(demo_path))
        assert "r0->r1" in text
        assert "E" in text and "R" in text

    def test_metrics_table_lists_bit_counters(self, demo_path):
        text = render_metrics(load_run(demo_path))
        assert "bits_total" in text
        assert "sim_steps_total" in text

    def test_profile_lists_every_phase(self, demo_path):
        text = render_profile(load_run(demo_path))
        for phase in ("schedule", "compute", "move", "record"):
            assert phase in text

    def test_report_concatenates_everything(self, demo_path):
        text = render_report(load_run(demo_path))
        for fragment in ("activation timeline", "bit lifecycle", "metrics"):
            assert fragment in text

    def test_wide_runs_are_strided_to_fit(self, demo_path):
        run = load_run(demo_path)
        narrow = render_timeline(run, width=8)
        rows = [line for line in narrow.splitlines() if line.startswith("  r")]
        assert rows and all(len(r) <= 7 + 8 for r in rows)
        assert "every 2th instant" in narrow  # downsampling is announced


class TestCli:
    @pytest.mark.parametrize(
        "command", ["report", "timeline", "gantt", "metrics", "profile"]
    )
    def test_views_render_from_a_run_file(self, demo_path, command, capsys):
        assert main([command, demo_path]) == 0
        assert capsys.readouterr().out.strip()

    def test_demo_records_a_loadable_run(self, tmp_path, capsys):
        out = tmp_path / "fresh.jsonl"
        assert main(["demo", str(out), "--steps", "8"]) == 0
        run = load_run(str(out))
        assert run.total_instants == 8
        assert run.meta["protocol"] == "sync_two"

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such run file" in capsys.readouterr().err

    def test_garbled_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "repro-obs-v1", "version": 1, "meta": {}}\n{oops\n')
        assert main(["report", str(bad)]) == 1
        assert "line 2" in capsys.readouterr().err


class TestDiagnostics:
    """Every failure mode is one line on stderr — never a traceback."""

    def _err(self, capsys) -> str:
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        return err

    def test_directory_instead_of_a_run_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 1
        self._err(capsys)

    def test_garbled_gzip_run_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl.gz"
        bad.write_bytes(b"\x1f\x8bnot really gzip")
        assert main(["report", str(bad)]) == 1
        self._err(capsys)

    def test_hotspots_with_a_missing_run(self, demo_path, tmp_path, capsys):
        assert main(["hotspots", demo_path, str(tmp_path / "gone.jsonl")]) == 1
        assert "no such run file" in self._err(capsys)

    def test_history_on_a_missing_file(self, tmp_path, capsys):
        assert main(["history", "--history", str(tmp_path / "h.jsonl")]) == 1
        assert "no such history file" in self._err(capsys)

    def test_history_with_an_unknown_metric(self, tmp_path, capsys):
        from repro.obs.history import HistoryEntry, HistoryStore

        store = HistoryStore(str(tmp_path / "h.jsonl"))
        store.append(HistoryEntry(source="t", run_id="t", metrics={"a": 1.0}))
        assert main(
            ["history", "--history", str(store.path), "--metric", "zzz"]
        ) == 1
        assert "no metric 'zzz'" in self._err(capsys)

    def test_garbled_history_line_names_the_line(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text("{oops\n")
        assert main(["regress", "--history", str(path)]) == 1
        assert "line 1" in self._err(capsys)


class TestJsonFormat:
    """``--format json`` machine twins of the ASCII views."""

    @pytest.mark.parametrize("command", ["timeline", "gantt", "metrics"])
    def test_json_output_parses_and_names_its_view(
        self, demo_path, command, capsys
    ):
        import json

        assert main([command, demo_path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["view"] == command

    def test_timeline_json_carries_instants_and_active_sets(
        self, demo_path, capsys
    ):
        import json

        main(["timeline", demo_path, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["robots"] == 2
        assert doc["instants"][0]["active"] == [0, 1]

    def test_gantt_json_carries_bit_milestones(self, demo_path, capsys):
        import json

        main(["gantt", demo_path, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        first = doc["bits"][0]
        assert first["src"] == 0 and first["dst"] == 1
        assert first["delivered"] is True
        assert first["moves"]

    def test_ascii_stays_the_default(self, demo_path, capsys):
        assert main(["metrics", demo_path]) == 0
        out = capsys.readouterr().out
        assert "bits_total" in out and not out.startswith("{")

    def test_views_without_a_json_twin_reject_the_flag(self, demo_path, capsys):
        with pytest.raises(SystemExit):
            main(["profile", demo_path, "--format", "json"])


class TestCausalCli:
    def test_summary_lists_the_flow(self, demo_path, capsys):
        assert main(["causal", demo_path]) == 0
        out = capsys.readouterr().out
        assert "flow 0->1" in out

    def test_critical_path_attributes_all_latency(self, demo_path, capsys):
        assert main(["causal", demo_path, "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "100.0%" in out

    def test_dot_emits_graphviz(self, demo_path, capsys):
        assert main(["causal", demo_path, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph causal {")

    def test_json_emits_the_versioned_document(self, demo_path, capsys):
        import json

        assert main(["causal", demo_path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-causal-v1"
        assert doc["flows"][0]["critical_path"]["edges"]

    def test_output_modes_are_mutually_exclusive(self, demo_path):
        with pytest.raises(SystemExit):
            main(["causal", demo_path, "--dot", "--json"])

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["causal", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such run file" in capsys.readouterr().err


class TestWatchCli:
    def test_once_prints_the_latency_table(self, demo_path, capsys):
        assert main(["watch", demo_path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "0->1" in out and "p99" in out

    def test_bounded_iterations_terminate(self, demo_path, capsys):
        assert main(["watch", demo_path, "--iterations", "1",
                     "--interval", "0"]) == 0
        assert "watch frame 1" in capsys.readouterr().out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "gone.jsonl")]) == 1
        assert "no such run file" in capsys.readouterr().err


class TestRegressDiagnostic:
    """Exit 3 comes with a one-line stderr diagnostic naming offenders."""

    def _history_with_regression(self, tmp_path):
        from repro.obs.history import HistoryEntry, HistoryStore

        store = HistoryStore(str(tmp_path / "h.jsonl"))
        for value in (1.0, 1.0, 1.1, 1.0):
            store.append(
                HistoryEntry(source="t", run_id="t", metrics={"elapsed_s": value})
            )
        store.append(
            HistoryEntry(source="t", run_id="t", metrics={"elapsed_s": 10.0})
        )
        return str(store.path)

    def test_gating_failure_names_metric_and_band(self, tmp_path, capsys):
        path = self._history_with_regression(tmp_path)
        assert main(["regress", "--history", path]) == 3
        captured = capsys.readouterr()
        assert "REGRESSIONS" in captured.out
        line = captured.err.strip()
        assert line.count("\n") == 0  # one line, grep-able
        assert "out of bounds" in line
        assert "elapsed_s=10" in line
        assert "median 1" in line and "band [" in line

    def test_report_only_suppresses_the_diagnostic(self, tmp_path, capsys):
        path = self._history_with_regression(tmp_path)
        assert main(["regress", "--history", path, "--report-only"]) == 0
        assert capsys.readouterr().err == ""


class TestHotspotsCli:
    def test_hotspots_render_for_the_demo_run(self, demo_path, capsys):
        assert main(["hotspots", demo_path]) == 0
        out = capsys.readouterr().out
        assert "hotspots [sync_two x synchronous]" in out
        assert "r0->r1" in out

    def test_top_zero_means_all_rows(self, demo_path, capsys):
        assert main(["hotspots", demo_path, "--top", "0"]) == 0
        out = capsys.readouterr().out
        # the sub-phase rows only fit when nothing is truncated
        assert "compute.observe" in out
        assert "compute.decide" in out
