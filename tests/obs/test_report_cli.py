"""The ASCII report views and the ``python -m repro.obs`` CLI."""

from __future__ import annotations

import pytest

from repro.obs.__main__ import main, record_demo
from repro.obs.export import load_run
from repro.obs.report import (
    render_gantt,
    render_metrics,
    render_profile,
    render_report,
    render_timeline,
)


@pytest.fixture(scope="module")
def demo_path(tmp_path_factory) -> str:
    """One recorded 2-robot sync_two run, shared across this module."""
    path = tmp_path_factory.mktemp("obs") / "demo.jsonl"
    return record_demo(str(path), steps=12)


class TestViews:
    def test_timeline_shows_every_robot(self, demo_path):
        text = render_timeline(load_run(demo_path))
        assert "r0" in text and "r1" in text
        assert "#" in text  # synchronous schedule: everyone active

    def test_gantt_shows_bit_rows_and_marks(self, demo_path):
        text = render_gantt(load_run(demo_path))
        assert "r0->r1" in text
        assert "E" in text and "R" in text

    def test_metrics_table_lists_bit_counters(self, demo_path):
        text = render_metrics(load_run(demo_path))
        assert "bits_total" in text
        assert "sim_steps_total" in text

    def test_profile_lists_every_phase(self, demo_path):
        text = render_profile(load_run(demo_path))
        for phase in ("schedule", "compute", "move", "record"):
            assert phase in text

    def test_report_concatenates_everything(self, demo_path):
        text = render_report(load_run(demo_path))
        for fragment in ("activation timeline", "bit lifecycle", "metrics"):
            assert fragment in text

    def test_wide_runs_are_strided_to_fit(self, demo_path):
        run = load_run(demo_path)
        narrow = render_timeline(run, width=8)
        rows = [line for line in narrow.splitlines() if line.startswith("  r")]
        assert rows and all(len(r) <= 7 + 8 for r in rows)
        assert "every 2th instant" in narrow  # downsampling is announced


class TestCli:
    @pytest.mark.parametrize(
        "command", ["report", "timeline", "gantt", "metrics", "profile"]
    )
    def test_views_render_from_a_run_file(self, demo_path, command, capsys):
        assert main([command, demo_path]) == 0
        assert capsys.readouterr().out.strip()

    def test_demo_records_a_loadable_run(self, tmp_path, capsys):
        out = tmp_path / "fresh.jsonl"
        assert main(["demo", str(out), "--steps", "8"]) == 0
        run = load_run(str(out))
        assert run.total_instants == 8
        assert run.meta["protocol"] == "sync_two"

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such run file" in capsys.readouterr().err

    def test_garbled_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "repro-obs-v1", "version": 1, "meta": {}}\n{oops\n')
        assert main(["report", str(bad)]) == 1
        assert "line 2" in capsys.readouterr().err


class TestDiagnostics:
    """Every failure mode is one line on stderr — never a traceback."""

    def _err(self, capsys) -> str:
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        return err

    def test_directory_instead_of_a_run_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 1
        self._err(capsys)

    def test_garbled_gzip_run_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl.gz"
        bad.write_bytes(b"\x1f\x8bnot really gzip")
        assert main(["report", str(bad)]) == 1
        self._err(capsys)

    def test_hotspots_with_a_missing_run(self, demo_path, tmp_path, capsys):
        assert main(["hotspots", demo_path, str(tmp_path / "gone.jsonl")]) == 1
        assert "no such run file" in self._err(capsys)

    def test_history_on_a_missing_file(self, tmp_path, capsys):
        assert main(["history", "--history", str(tmp_path / "h.jsonl")]) == 1
        assert "no such history file" in self._err(capsys)

    def test_history_with_an_unknown_metric(self, tmp_path, capsys):
        from repro.obs.history import HistoryEntry, HistoryStore

        store = HistoryStore(str(tmp_path / "h.jsonl"))
        store.append(HistoryEntry(source="t", run_id="t", metrics={"a": 1.0}))
        assert main(
            ["history", "--history", str(store.path), "--metric", "zzz"]
        ) == 1
        assert "no metric 'zzz'" in self._err(capsys)

    def test_garbled_history_line_names_the_line(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text("{oops\n")
        assert main(["regress", "--history", str(path)]) == 1
        assert "line 1" in self._err(capsys)


class TestHotspotsCli:
    def test_hotspots_render_for_the_demo_run(self, demo_path, capsys):
        assert main(["hotspots", demo_path]) == 0
        out = capsys.readouterr().out
        assert "hotspots [sync_two x synchronous]" in out
        assert "r0->r1" in out

    def test_top_zero_means_all_rows(self, demo_path, capsys):
        assert main(["hotspots", demo_path, "--top", "0"]) == 0
        out = capsys.readouterr().out
        # the sub-phase rows only fit when nothing is truncated
        assert "compute.observe" in out
        assert "compute.decide" in out
