"""The event model and the span builders derived from it."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.obs.events import (
    BIT_ENCODE_STARTED,
    BIT_RECEIPT,
    EVENT_KINDS,
    PHASE,
    STEP,
    Event,
)
from repro.obs.spans import activation_spans, bit_spans, phase_totals


class TestEvent:
    def test_json_roundtrip_is_exact(self):
        event = Event(STEP, 4, {"active": [0, 2], "epoch": 7})
        assert Event.from_json(event.to_json()) == event

    def test_attr_colliding_with_envelope_is_rejected(self):
        with pytest.raises(TraceFormatError):
            Event(STEP, 0, {"kind": "oops"}).to_json()

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(TraceFormatError):
            Event.from_json({"kind": "tea-break", "t": 0})

    def test_missing_or_bool_instant_is_rejected(self):
        with pytest.raises(TraceFormatError):
            Event.from_json({"kind": STEP})
        with pytest.raises(TraceFormatError):
            Event.from_json({"kind": STEP, "t": True})

    def test_every_declared_kind_parses(self):
        for kind in EVENT_KINDS:
            assert Event.from_json({"kind": kind, "t": 1}).kind == kind


class TestActivationSpans:
    def test_thirds_of_the_instant_per_active_robot(self):
        events = [Event(STEP, 5, {"active": [1]})]
        spans = activation_spans(events)
        assert [s.name for s in spans] == ["look", "compute", "move"]
        assert spans[0].start == pytest.approx(5.0)
        assert spans[-1].end == pytest.approx(6.0)
        assert all(s.robot == 1 for s in spans)
        assert all(s.duration == pytest.approx(1.0 / 3.0) for s in spans)

    def test_idle_robots_get_no_spans(self):
        assert activation_spans([Event(STEP, 0, {"active": []})]) == []


class TestBitSpans:
    def test_kth_start_matches_kth_receipt_per_flow(self):
        events = [
            Event(BIT_ENCODE_STARTED, 0, {"src": 0, "dst": 1, "bit": 1}),
            Event(BIT_ENCODE_STARTED, 3, {"src": 0, "dst": 1, "bit": 0}),
            Event(BIT_RECEIPT, 2, {"src": 0, "dst": 1, "bit": 1}),
        ]
        spans = bit_spans(events)
        assert len(spans) == 2
        first, second = spans
        assert (first.start, first.end) == (0.0, 2.0)
        assert first.attrs["delivered"] is True
        assert second.end is None and second.duration is None
        assert second.attrs["delivered"] is False
        assert second.attrs["seq"] == 1

    def test_flows_are_kept_apart(self):
        events = [
            Event(BIT_ENCODE_STARTED, 0, {"src": 0, "dst": 1, "bit": 1}),
            Event(BIT_ENCODE_STARTED, 0, {"src": 2, "dst": 3, "bit": 0}),
            Event(BIT_RECEIPT, 1, {"src": 2, "dst": 3, "bit": 0}),
        ]
        spans = bit_spans(events)
        by_flow = {(s.attrs["src"], s.attrs["dst"]): s for s in spans}
        assert by_flow[(0, 1)].end is None
        assert by_flow[(2, 3)].end == 1.0


class TestPhaseTotals:
    def test_samples_and_seconds_accumulate(self):
        events = [
            Event(PHASE, 0, {"phase": "move", "seconds": 0.25}),
            Event(PHASE, 1, {"phase": "move", "seconds": 0.75}),
            Event(PHASE, 0, {"phase": "compute", "seconds": 0.5}),
        ]
        totals = phase_totals(events)
        assert totals["move"] == (2, pytest.approx(1.0))
        assert totals["compute"] == (1, pytest.approx(0.5))
