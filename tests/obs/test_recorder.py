"""The run recorder: lifecycle, every stream, injected clock."""

from __future__ import annotations

import itertools

import pytest

from repro.apps.harness import SwarmHarness
from repro.errors import ObservabilityError
from repro.geometry.vec import Vec2
from repro.obs.events import (
    BIT_ACK,
    BIT_ENCODE_STARTED,
    BIT_MOVED,
    BIT_RECEIPT,
    DISPLACEMENT,
    MONITOR,
    PHASE,
    SCHEDULE,
    STEP,
)
from repro.obs.recorder import ObsRecorder
from repro.protocols.sync_two import SyncTwoProtocol
from repro.verify import monitors as monitors_module
from repro.verify.monitors import InvariantMonitor


def _pair_harness() -> SwarmHarness:
    return SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(),
        identified=False,
        sigma=6.0,
    )


def _recorded_pair(steps: int = 12, **recorder_kwargs):
    harness = _pair_harness()
    recorder = ObsRecorder(
        meta={"protocol": "sync_two", "scheduler": "synchronous"},
        **recorder_kwargs,
    )
    recorder.attach(harness.simulator)
    harness.simulator.protocol_of(0).send_bits(1, [1, 0, 1])
    harness.run(steps)
    recorder.detach(harness.simulator)
    return harness, recorder


class TestLifecycle:
    def test_double_attach_is_an_error(self):
        harness = _pair_harness()
        recorder = ObsRecorder()
        recorder.attach(harness.simulator)
        with pytest.raises(ObservabilityError):
            recorder.attach(harness.simulator)
        recorder.detach(harness.simulator)

    def test_detach_from_the_wrong_simulator_is_an_error(self):
        a, b = _pair_harness(), _pair_harness()
        recorder = ObsRecorder()
        recorder.attach(a.simulator)
        with pytest.raises(ObservabilityError):
            recorder.detach(b.simulator)
        recorder.detach(a.simulator)

    def test_detach_restores_the_monitor_hook(self):
        sentinel_calls = []
        previous = monitors_module.set_flag_hook(
            lambda *args: sentinel_calls.append(args)
        )
        try:
            harness = _pair_harness()
            recorder = ObsRecorder()
            recorder.attach(harness.simulator)
            recorder.detach(harness.simulator)
            restored = monitors_module.set_flag_hook(None)
            assert restored is not None and restored is not recorder._on_monitor
        finally:
            monitors_module.set_flag_hook(previous)

    def test_detach_clears_protocol_sinks(self):
        harness = _pair_harness()
        recorder = ObsRecorder()
        recorder.attach(harness.simulator)
        recorder.detach(harness.simulator)
        for i in range(harness.simulator.count):
            assert harness.simulator.protocol_of(i)._obs_sink is None


class TestStreams:
    def test_step_and_schedule_events_per_instant(self):
        _, recorder = _recorded_pair(steps=6)
        run = recorder.to_run()
        assert len(run.of_kind(STEP)) == 6
        assert len(run.of_kind(SCHEDULE)) == 6
        assert run.total_instants == 6
        step0 = run.of_kind(STEP)[0]
        assert step0.get("active") == [0, 1]
        assert len(step0.get("positions")) == 2

    def test_bit_lifecycle_events_cover_the_payload(self):
        _, recorder = _recorded_pair(steps=12)
        run = recorder.to_run()
        assert len(run.of_kind(BIT_ENCODE_STARTED)) == 3
        assert len(run.of_kind(BIT_MOVED)) == 3
        assert len(run.of_kind(BIT_RECEIPT)) == 3
        # the sender advanced past bits 0 and 1; bit 2's ack has no
        # successor pop to witness it
        assert len(run.of_kind(BIT_ACK)) == 2
        bits = [e.get("bit") for e in run.of_kind(BIT_ENCODE_STARTED)]
        assert bits == [1, 0, 1]

    def test_metrics_count_what_the_events_show(self):
        _, recorder = _recorded_pair(steps=6)
        labels = {"protocol": "sync_two", "scheduler": "synchronous"}
        assert recorder.registry.counter("sim_steps_total", **labels).value == 6
        assert (
            recorder.registry.counter("sim_activations_total", **labels).value == 12
        )

    def test_displacement_fault_is_recorded(self):
        harness = _pair_harness()
        recorder = ObsRecorder().attach(harness.simulator)
        harness.run(2)
        # displace only; further stepping would (correctly) confuse the
        # protocol's decoder — that's the fault model, not the recorder
        harness.simulator.displace(1, Vec2(3.0, 4.0))
        recorder.detach(harness.simulator)
        faults = recorder.to_run().of_kind(DISPLACEMENT)
        assert len(faults) == 1
        assert faults[0].get("robot") == 1
        assert faults[0].get("to") == [3.0, 4.0]

    def test_monitor_firing_lands_on_the_timeline(self):
        class AlwaysFires(InvariantMonitor):
            """Test double: flags once on the first step."""

            name = "always-fires"

            def on_step(self, sim, step):
                if step.time == 0:
                    self._flag(step.time, "deliberate")

        harness = _pair_harness()
        recorder = ObsRecorder(
            meta={"protocol": "sync_two", "scheduler": "synchronous"}
        )
        recorder.attach(harness.simulator)
        monitor = AlwaysFires()
        harness.simulator.add_step_listener(monitor.on_step)
        harness.run(2)
        recorder.detach(harness.simulator)
        fired = recorder.to_run().of_kind(MONITOR)
        assert len(fired) == 1
        assert fired[0].get("invariant") == "always-fires"
        assert (
            recorder.registry.counter(
                "verify_monitor_firings_total",
                invariant="always-fires",
                protocol="sync_two",
                scheduler="synchronous",
            ).value
            == 1
        )


class TestInjectedClock:
    def test_phase_profile_is_deterministic_with_a_fake_clock(self):
        ticks = itertools.count(0.0)
        clock = lambda: next(ticks) * 0.5  # noqa: E731 - tiny test stub
        _, recorder = _recorded_pair(steps=3, clock=clock)
        phases = recorder.to_run().of_kind(PHASE)
        # 8 timed phases per instant: schedule/compute/move/record plus
        # one compute.observe + compute.decide pair per active robot
        assert len(phases) == 24
        assert [e.get("phase") for e in phases[:8]] == [
            "schedule", "compute",
            "compute.observe", "compute.decide",
            "compute.observe", "compute.decide",
            "move", "record",
        ]
        # each phase spans exactly one tick of the injected clock
        assert all(e.get("seconds") == pytest.approx(0.5) for e in phases)
        hist = recorder.registry.histogram(
            "sim_phase_seconds",
            phase="move",
            protocol="sync_two",
            scheduler="synchronous",
        )
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.5)

    def test_timing_false_records_no_phases(self):
        _, recorder = _recorded_pair(steps=3, timing=False)
        assert recorder.to_run().of_kind(PHASE) == []


class TestPerfAbsorption:
    def test_detach_folds_perf_counters_into_the_registry(self):
        _, recorder = _recorded_pair(steps=4)
        run = recorder.to_run()
        names = {entry["name"] for entry in run.metrics}
        assert "perf_cache_hits" in names
        assert "perf_hit_rate" in names
