"""Tests for ASCII rendering."""

from __future__ import annotations

from repro.analysis.render import render_configuration, render_paths
from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep


class TestRenderConfiguration:
    def test_empty(self):
        assert "empty" in render_configuration([])

    def test_all_points_drawn(self):
        pts = [Vec2(0, 0), Vec2(10, 0), Vec2(5, 8)]
        scene = render_configuration(pts)
        for glyph in "012":
            assert glyph in scene

    def test_custom_labels(self):
        scene = render_configuration([Vec2(0, 0), Vec2(5, 5)], labels={0: "A", 1: "B"})
        assert "A" in scene and "B" in scene

    def test_dimensions(self):
        scene = render_configuration([Vec2(0, 0), Vec2(10, 10)], width=30, height=10)
        lines = scene.split("\n")
        assert len(lines) == 10
        assert all(len(line) <= 30 for line in lines)

    def test_single_point_does_not_crash(self):
        assert "0" in render_configuration([Vec2(3, 3)])


class TestRenderPaths:
    def test_trace_rendering(self):
        trace = Trace(initial_positions=(Vec2(0, 0), Vec2(10, 0)))
        trace.steps.append(
            TraceStep(time=0, active=frozenset({0}), positions=(Vec2(0, 3), Vec2(10, 0)))
        )
        trace.steps.append(
            TraceStep(time=1, active=frozenset({0}), positions=(Vec2(0, 6), Vec2(10, 0)))
        )
        scene = render_paths(trace)
        assert "o" in scene  # start marker
        assert "0" in scene  # final position of robot 0
        assert "." in scene  # waypoints

    def test_robot_subset(self):
        trace = Trace(initial_positions=(Vec2(0, 0), Vec2(10, 0)))
        trace.steps.append(
            TraceStep(time=0, active=frozenset({1}), positions=(Vec2(0, 0), Vec2(10, 5)))
        )
        scene = render_paths(trace, robots=[1])
        assert "1" in scene
        assert "0" not in scene.replace("o", "")  # robot 0 not drawn
