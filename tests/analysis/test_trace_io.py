"""Tests for trace serialization."""

from __future__ import annotations

import pytest

from repro.analysis.trace_io import (
    dump_trace,
    load_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ReproError
from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep
from repro.protocols.sync_granular import SyncGranularProtocol


def small_trace() -> Trace:
    trace = Trace(initial_positions=(Vec2(0, 0), Vec2(10, 0)))
    trace.steps.append(
        TraceStep(time=0, active=frozenset({0}), positions=(Vec2(1.5, -0.25), Vec2(10, 0)))
    )
    trace.steps.append(
        TraceStep(time=1, active=frozenset({0, 1}), positions=(Vec2(0, 0), Vec2(9, 1)))
    )
    return trace


class TestRoundtrip:
    def test_text_roundtrip(self):
        original = small_trace()
        restored = trace_from_jsonl(trace_to_jsonl(original))
        assert restored.initial_positions == original.initial_positions
        assert len(restored) == len(original)
        for a, b in zip(restored.steps, original.steps):
            assert a == b

    def test_file_roundtrip(self, tmp_path):
        original = small_trace()
        path = dump_trace(original, str(tmp_path / "run.jsonl"))
        restored = load_trace(path)
        assert restored.steps == original.steps

    def test_real_run_roundtrip(self):
        h = SwarmHarness(
            ring_positions(4, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        h.simulator.protocol_of(0).send_bits(2, [1, 0, 1])
        h.run(10)
        original = h.simulator.trace
        restored = trace_from_jsonl(trace_to_jsonl(original))
        assert restored.min_pairwise_distance() == pytest.approx(
            original.min_pairwise_distance()
        )
        assert restored.distance_travelled(0) == pytest.approx(
            original.distance_travelled(0)
        )

    def test_empty_trace(self):
        trace = Trace(initial_positions=(Vec2(0, 0),))
        restored = trace_from_jsonl(trace_to_jsonl(trace))
        assert restored.steps == []
        assert restored.count == 1


class TestValidation:
    def test_empty_document(self):
        with pytest.raises(ReproError):
            trace_from_jsonl("")

    def test_wrong_format(self):
        with pytest.raises(ReproError):
            trace_from_jsonl('{"format": "something-else", "count": 1, "initial": [[0,0]]}')

    def test_count_mismatch(self):
        with pytest.raises(ReproError):
            trace_from_jsonl('{"format": "repro-trace-v1", "count": 2, "initial": [[0,0]]}')

    def test_non_contiguous_times(self):
        text = trace_to_jsonl(small_trace())
        lines = text.splitlines()
        with pytest.raises(ReproError):
            trace_from_jsonl("\n".join([lines[0], lines[2]]))
