"""Tests for the SVG renderer."""

from __future__ import annotations

import pytest

from repro.analysis.svg import svg_configuration, svg_trace, write_svg
from repro.geometry.granular import Granular
from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep


def small_trace() -> Trace:
    trace = Trace(initial_positions=(Vec2(0, 0), Vec2(10, 0)))
    trace.steps.append(
        TraceStep(time=0, active=frozenset({0}), positions=(Vec2(0, 2), Vec2(10, 0)))
    )
    return trace


class TestSvgConfiguration:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_configuration([])

    def test_valid_document(self):
        doc = svg_configuration([Vec2(0, 0), Vec2(5, 5)])
        assert doc.startswith("<svg ")
        assert doc.rstrip().endswith("</svg>")
        assert doc.count("<circle") >= 2  # one dot per robot
        assert "<text" in doc

    def test_granulars_drawn(self):
        granular = Granular(
            center=Vec2(0, 0), radius=2.0, num_diameters=4, zero_direction=Vec2(0, 1)
        )
        doc = svg_configuration([Vec2(0, 0), Vec2(10, 0)], granulars={0: granular})
        # Disc outline + 4 diameters + 2 dots.
        assert doc.count("<line") == 4
        assert "stroke-dasharray" in doc

    def test_custom_labels(self):
        doc = svg_configuration([Vec2(0, 0)], labels={0: "kappa"})
        assert ">kappa<" in doc


class TestSvgTrace:
    def test_valid_document(self):
        doc = svg_trace(small_trace())
        assert "<polyline" in doc
        assert ">r0<" in doc and ">r1<" in doc

    def test_robot_subset(self):
        doc = svg_trace(small_trace(), robots=[0])
        assert ">r0<" in doc
        assert ">r1<" not in doc


class TestWriteSvg:
    def test_roundtrip(self, tmp_path):
        doc = svg_configuration([Vec2(0, 0), Vec2(3, 4)])
        path = write_svg(doc, str(tmp_path / "scene.svg"))
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == doc
