"""Tests for trace animation."""

from __future__ import annotations

import io

import pytest

from repro.analysis.animate import animate_frames, play
from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep


def build_trace(steps: int = 4) -> Trace:
    trace = Trace(initial_positions=(Vec2(0, 0), Vec2(10, 0)))
    for t in range(steps):
        trace.steps.append(
            TraceStep(
                time=t,
                active=frozenset({0}),
                positions=(Vec2(0, float(t + 1)), Vec2(10, 0)),
            )
        )
    return trace


class TestAnimateFrames:
    def test_frame_count(self):
        frames = animate_frames(build_trace(4))
        assert len(frames) == 5  # t=0..4

    def test_every_parameter(self):
        frames = animate_frames(build_trace(4), every=2)
        assert len(frames) == 3  # t=0, 2, 4
        with pytest.raises(ValueError):
            animate_frames(build_trace(2), every=0)

    def test_captions_and_glyphs(self):
        frames = animate_frames(build_trace(3))
        assert frames[0].startswith("t=0/3")
        assert frames[-1].startswith("t=3/3")
        for frame in frames:
            assert "0" in frame
            assert "1" in frame

    def test_trails_accumulate(self):
        frames = animate_frames(build_trace(4), trails=True)
        assert "." not in frames[0]
        assert "." in frames[-1]

    def test_no_trails(self):
        frames = animate_frames(build_trace(4), trails=False)
        assert all("." not in frame for frame in frames)

    def test_fixed_viewport(self):
        """All frames share dimensions (no jitter)."""
        frames = animate_frames(build_trace(4), width=40, height=12)
        for frame in frames:
            lines = frame.split("\n")
            assert len(lines) == 13  # caption + grid
            assert all(len(line) <= 40 for line in lines[1:])


class TestPlay:
    def test_captured_playback(self):
        buffer = io.StringIO()
        count = play(build_trace(3), stream=buffer)
        assert count == 4
        text = buffer.getvalue()
        assert "t=0/3" in text and "t=3/3" in text
        assert "\x1b[" not in text  # no ANSI control when captured
