"""Tests for run metrics and audits."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    bit_latencies,
    collision_audit,
    silence_audit,
    transmission_stats,
)
from repro.geometry.vec import Vec2
from repro.model.protocol import BitEvent
from repro.model.trace import Trace, TraceStep
from repro.protocols.sync_granular import SyncGranularProtocol

from tests.conftest import make_harness


def small_trace() -> Trace:
    trace = Trace(initial_positions=(Vec2(0, 0), Vec2(10, 0)))
    trace.steps.append(
        TraceStep(time=0, active=frozenset({0, 1}), positions=(Vec2(1, 0), Vec2(10, 0)))
    )
    trace.steps.append(
        TraceStep(time=1, active=frozenset({0}), positions=(Vec2(0, 0), Vec2(10, 0)))
    )
    return trace


class TestTransmissionStats:
    def test_aggregates(self):
        events = [BitEvent(time=1, src=0, dst=1, bit=1)]
        stats = transmission_stats(small_trace(), events)
        assert stats.bits_delivered == 1
        assert stats.steps == 2
        assert stats.steps_per_bit == 2.0
        assert stats.total_distance == pytest.approx(2.0)
        assert stats.distance_per_bit == pytest.approx(2.0)
        assert stats.activations == 3

    def test_no_bits_gives_inf(self):
        stats = transmission_stats(small_trace(), [])
        assert stats.steps_per_bit == float("inf")

    def test_live_run(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        h.simulator.protocol_of(0).send_bits(1, [1, 0, 1, 0])
        h.run(8)
        stats = transmission_stats(
            h.simulator.trace, h.simulator.protocol_of(1).received
        )
        assert stats.bits_delivered == 4
        assert stats.steps_per_bit == pytest.approx(2.0)


class TestBitLatencies:
    def test_matches_streams_fifo(self):
        submissions = [(0, 0, 1), (0, 0, 1), (2, 1, 0)]
        delivered = [
            BitEvent(time=3, src=0, dst=1, bit=1),
            BitEvent(time=5, src=0, dst=1, bit=0),
            BitEvent(time=6, src=1, dst=0, bit=1),
        ]
        assert bit_latencies(submissions, delivered) == [3, 5, 4]

    def test_undelivered_bits_skipped(self):
        submissions = [(0, 0, 1), (1, 0, 1)]
        delivered = [BitEvent(time=4, src=0, dst=1, bit=1)]
        assert bit_latencies(submissions, delivered) == [4]


class TestAudits:
    def test_silence_audit_flags_movers(self):
        trace = small_trace()
        assert silence_audit(trace, [0]) == [0]
        assert silence_audit(trace, [1]) == []

    def test_collision_audit(self):
        assert collision_audit(small_trace()) == pytest.approx(9.0)
