"""Trace parsing must fail loudly and name the offending line."""

from __future__ import annotations

import pytest

from repro.analysis.trace_io import dump_trace, load_trace, trace_from_jsonl, trace_to_jsonl
from repro.errors import ReproError, TraceFormatError
from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep


def _sample_trace() -> Trace:
    trace = Trace(initial_positions=(Vec2(0.0, 0.0), Vec2(1.0, 0.0)))
    for t in range(3):
        trace.steps.append(
            TraceStep(
                time=t,
                active=frozenset({0, 1}),
                positions=(Vec2(float(t), 0.0), Vec2(1.0, float(t))),
            )
        )
    return trace


class TestHappyPath:
    def test_roundtrip_still_works(self, tmp_path):
        path = dump_trace(_sample_trace(), str(tmp_path / "t.jsonl"))
        loaded = load_trace(path)
        assert loaded.steps == _sample_trace().steps
        assert loaded.initial_positions == _sample_trace().initial_positions


class TestTraceFormatError:
    def test_empty_document(self):
        with pytest.raises(TraceFormatError, match="empty"):
            trace_from_jsonl("   \n  \n")

    def test_truncated_mid_line_names_the_line(self):
        text = trace_to_jsonl(_sample_trace())
        cut = text[: int(len(text) * 0.8)]
        with pytest.raises(TraceFormatError, match=r"line \d+.*truncated"):
            trace_from_jsonl(cut)

    def test_garbled_step_names_the_line(self):
        lines = trace_to_jsonl(_sample_trace()).splitlines()
        lines[2] = lines[2][:-5] + "oops}"
        with pytest.raises(TraceFormatError, match="line 3"):
            trace_from_jsonl("\n".join(lines))

    def test_non_object_line(self):
        lines = trace_to_jsonl(_sample_trace()).splitlines()
        lines[1] = '"just a string"'
        with pytest.raises(TraceFormatError, match="line 2.*object"):
            trace_from_jsonl("\n".join(lines))

    def test_unknown_format_names_line_one(self):
        with pytest.raises(TraceFormatError, match="line 1.*unknown trace format"):
            trace_from_jsonl('{"format": "elephant-v9", "count": 0, "initial": []}')

    def test_missing_header_keys(self):
        with pytest.raises(TraceFormatError, match="line 1.*malformed trace header"):
            trace_from_jsonl('{"format": "repro-trace-v1"}')

    def test_missing_step_keys_name_the_line(self):
        lines = trace_to_jsonl(_sample_trace()).splitlines()
        lines[2] = '{"t": 1, "active": [0]}'
        with pytest.raises(TraceFormatError, match="line 3.*malformed step"):
            trace_from_jsonl("\n".join(lines))

    def test_non_contiguous_instants_name_the_line(self):
        lines = trace_to_jsonl(_sample_trace()).splitlines()
        del lines[2]  # drop t=1: the old t=2 line is now line 3
        with pytest.raises(TraceFormatError, match="line 3.*non-contiguous"):
            trace_from_jsonl("\n".join(lines))

    def test_position_count_mismatch_names_the_line(self):
        lines = trace_to_jsonl(_sample_trace()).splitlines()
        lines[3] = '{"t": 2, "active": [0], "positions": [[0.0, 0.0]]}'
        with pytest.raises(TraceFormatError, match="line 4.*positions"):
            trace_from_jsonl("\n".join(lines))

    def test_still_catchable_as_reproerror(self):
        """Existing except-clauses on the base class keep working."""
        with pytest.raises(ReproError):
            trace_from_jsonl("garbage")
