"""Tests for the slice trade-off table."""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    SliceTradeoffRow,
    log_slice_choice,
    slice_tradeoff_table,
)


class TestLogSliceChoice:
    def test_grows_logarithmically(self):
        assert log_slice_choice(4) == 2
        assert log_slice_choice(256) == 8
        assert log_slice_choice(1024) == 10

    def test_floor_of_two(self):
        assert log_slice_choice(2) == 2


class TestTable:
    def test_rows_per_size_and_base(self):
        rows = slice_tradeoff_table([16, 64], bases=[2, 4])
        assert len(rows) == 4
        assert {(r.n, r.k) for r in rows} == {(16, 2), (16, 4), (64, 2), (64, 4)}

    def test_default_bases_use_log_choice(self):
        rows = slice_tradeoff_table([256])
        assert len(rows) == 1
        assert rows[0].k == 8

    def test_slowdown_consistency(self):
        for row in slice_tradeoff_table([16, 256, 4096], bases=[2, 8]):
            assert row.steps_logk == row.steps_full + 2 * row.digits
            assert row.slowdown == pytest.approx(row.steps_logk / row.steps_full)

    def test_shape_matches_paper_claim(self):
        """Slowdown grows with n (fixed k) and the k = O(log n) column
        stays within a constant factor of log n / log log n."""
        fixed_k = [r.slowdown for r in slice_tradeoff_table([16, 256, 4096], bases=[2])]
        assert fixed_k == sorted(fixed_k)
        for row in slice_tradeoff_table([64, 1024, 4096]):
            assert 0.3 < row.slowdown / row.reference < 5.0

    def test_longer_payloads_amortise_addressing(self):
        one_bit = slice_tradeoff_table([256], bases=[4], payload_bits=1)[0]
        long_msg = slice_tradeoff_table([256], bases=[4], payload_bits=128)[0]
        assert long_msg.slowdown < one_bit.slowdown
        assert long_msg.slowdown < 1.1  # addressing nearly free for long frames
