"""Tests for square and hexagonal lattices."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discrete.lattice import HexLattice, SquareLattice
from repro.errors import GeometryError
from repro.geometry.vec import Vec2

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
points = st.builds(Vec2, coords, coords)


class TestValidation:
    def test_pitch_positive(self):
        for cls in (SquareLattice, HexLattice):
            with pytest.raises(GeometryError):
                cls(pitch=0.0)


class TestSquareLattice:
    def test_snap_rounds(self):
        lat = SquareLattice(pitch=1.0)
        assert lat.snap(Vec2(0.4, 0.6)) == Vec2(0.0, 1.0)
        assert lat.snap(Vec2(-1.4, 2.5001)) == Vec2(-1.0, 3.0)

    def test_snap_respects_pitch(self):
        lat = SquareLattice(pitch=2.5)
        assert lat.snap(Vec2(3.7, 0.0)) == Vec2(2.5, 0.0)

    def test_eight_directions(self):
        lat = SquareLattice()
        dirs = lat.directions()
        assert len(dirs) == 8
        for d in dirs:
            assert d.norm() == pytest.approx(1.0)

    def test_unit_steps(self):
        lat = SquareLattice(pitch=2.0)
        assert lat.unit_step(0) == 2.0  # axial
        assert lat.unit_step(1) == pytest.approx(2.0 * math.sqrt(2.0))  # diagonal

    def test_step_from_lands_on_lattice(self):
        lat = SquareLattice(pitch=1.0)
        for d in range(8):
            target = lat.step_from(Vec2(2.0, 3.0), d, 3)
            assert lat.is_lattice_point(target)

    def test_step_from_validates(self):
        lat = SquareLattice()
        with pytest.raises(GeometryError):
            lat.step_from(Vec2(0.5, 0.0), 0, 1)
        with pytest.raises(GeometryError):
            lat.step_from(Vec2(0.0, 0.0), 0, -1)

    @settings(deadline=None)
    @given(points)
    def test_snap_idempotent_and_close(self, p):
        lat = SquareLattice(pitch=1.0)
        snapped = lat.snap(p)
        assert lat.snap(snapped) == snapped
        # Nearest grid point is within half a cell diagonal.
        assert snapped.distance_to(p) <= math.sqrt(0.5) + 1e-9


class TestHexLattice:
    def test_six_directions_unit(self):
        lat = HexLattice()
        dirs = lat.directions()
        assert len(dirs) == 6
        for d in dirs:
            assert d.norm() == pytest.approx(1.0)
        assert lat.unit_step(3) == lat.pitch

    def test_neighbors_at_pitch(self):
        lat = HexLattice(pitch=1.0)
        origin = Vec2(0.0, 0.0)
        for d in range(6):
            neighbor = lat.step_from(origin, d, 1)
            assert neighbor.distance_to(origin) == pytest.approx(1.0)
            assert lat.is_lattice_point(neighbor)

    def test_snap_prefers_nearest(self):
        lat = HexLattice(pitch=1.0)
        # Near the origin.
        assert lat.snap(Vec2(0.1, 0.1)) == Vec2(0.0, 0.0)

    @settings(deadline=None)
    @given(points)
    def test_snap_nearest_property(self, p):
        """The snapped point is at most one lattice spacing away and no
        lattice neighbour of it is strictly closer to p."""
        lat = HexLattice(pitch=1.0)
        snapped = lat.snap(p)
        assert lat.is_lattice_point(snapped)
        d0 = snapped.distance_to(p)
        assert d0 <= 1.0  # within the covering radius (~0.577)
        for d in range(6):
            neighbor = lat.step_from(snapped, d, 1)
            assert neighbor.distance_to(p) >= d0 - 1e-9

    @settings(deadline=None)
    @given(points)
    def test_snap_idempotent(self, p):
        lat = HexLattice(pitch=1.0)
        snapped = lat.snap(p)
        assert lat.snap(snapped).distance_to(snapped) <= 1e-9
