"""Tests for the lattice world and the lattice log_k protocol."""

from __future__ import annotations

import math

import pytest

from repro.discrete.lattice import HexLattice, SquareLattice
from repro.discrete.lattice_protocol import LatticeLogKProtocol
from repro.discrete.simulator import LatticeSimulator
from repro.errors import ModelError, ProtocolError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.protocols.sync_granular import SyncGranularProtocol


def square_swarm(count: int = 6, k: int = 3, spacing: float = 12.0):
    lattice = SquareLattice(pitch=1.0)
    positions = [
        Vec2(spacing * (i % 3), spacing * (i // 3)) for i in range(count)
    ]
    robots = [
        Robot(
            position=p,
            protocol=LatticeLogKProtocol(k=k, lattice=lattice),
            sigma=6.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    return LatticeSimulator(robots, lattice), robots


class TestLatticeSimulator:
    def test_requires_lattice_starts(self):
        lattice = SquareLattice(pitch=1.0)
        robots = [
            Robot(position=Vec2(0.5, 0.0), protocol=SyncGranularProtocol(), observable_id=0),
            Robot(position=Vec2(5.0, 0.0), protocol=SyncGranularProtocol(), observable_id=1),
        ]
        with pytest.raises(ModelError):
            LatticeSimulator(robots, lattice)

    def test_destinations_snapped(self):
        sim, robots = square_swarm()
        robots[0].protocol.send_bits(4, [1, 0])
        sim.run(10)
        lattice = sim.lattice
        for t in range(len(sim.trace) + 1):
            for p in sim.trace.positions_at(t):
                assert lattice.is_lattice_point(p)


class TestLatticeLogKProtocol:
    def test_k_bounded_by_lattice(self):
        with pytest.raises(ProtocolError):
            LatticeLogKProtocol(k=4, lattice=SquareLattice())  # needs 5 diameters
        with pytest.raises(ProtocolError):
            LatticeLogKProtocol(k=3, lattice=HexLattice())  # needs 4 diameters

    def test_sec_naming_rejected(self):
        with pytest.raises(ProtocolError):
            LatticeLogKProtocol(k=2, lattice=SquareLattice(), naming="sec")

    def test_square_delivery(self):
        sim, robots = square_swarm(count=6, k=3)
        robots[0].protocol.send_bits(4, [1, 0, 1])
        sim.run(40)
        assert [e.bit for e in robots[4].protocol.received] == [1, 0, 1]

    def test_square_delivery_base_2(self):
        sim, robots = square_swarm(count=6, k=2)
        robots[5].protocol.send_bits(1, [0, 0, 1])
        sim.run(60)
        assert [e.bit for e in robots[1].protocol.received] == [0, 0, 1]

    def test_hex_delivery(self):
        lattice = HexLattice(pitch=1.0)
        raw = [
            Vec2(0.0, 0.0),
            Vec2(12.0, 0.0),
            Vec2(6.0, 6.0 * math.sqrt(3.0)),
            Vec2(18.0, 6.0 * math.sqrt(3.0)),
        ]
        positions = [lattice.snap(p) for p in raw]
        robots = [
            Robot(
                position=p,
                protocol=LatticeLogKProtocol(k=2, lattice=lattice),
                sigma=6.0,
                observable_id=i,
            )
            for i, p in enumerate(positions)
        ]
        sim = LatticeSimulator(robots, lattice)
        robots[1].protocol.send_bits(2, [0, 1])
        sim.run(40)
        assert [e.bit for e in robots[2].protocol.received] == [0, 1]

    def test_coarse_lattice_rejected(self):
        """A pitch comparable to the granular cannot host excursions."""
        lattice = SquareLattice(pitch=8.0)
        positions = [Vec2(0.0, 0.0), Vec2(16.0, 0.0)]
        robots = [
            Robot(
                position=p,
                protocol=LatticeLogKProtocol(k=2, lattice=lattice),
                sigma=10.0,
                observable_id=i,
            )
            for i, p in enumerate(positions)
        ]
        with pytest.raises(ProtocolError):
            LatticeSimulator(robots, lattice)

    def test_all_pairs_chatter_on_lattice(self):
        sim, robots = square_swarm(count=6, k=3)
        for i in range(6):
            for j in range(6):
                if i != j:
                    robots[i].protocol.send_bits(j, [i & 1])
        sim.run(120)
        for j in range(6):
            received = robots[j].protocol.received
            assert len(received) == 5
            assert {(e.src, e.bit) for e in received} == {
                (i, i & 1) for i in range(6) if i != j
            }
        assert sim.trace.min_pairwise_distance() > 0.0


class TestResolutionLimit:
    """The Section 5 scenario the lattice world embodies."""

    def test_full_slicing_refuses_low_resolution(self):
        with pytest.raises(ProtocolError, match="use SyncLogKProtocol"):
            protocol = SyncGranularProtocol(max_directions=8)
            from repro.model.protocol import BindingInfo

            protocol.bind(
                BindingInfo(
                    index=0,
                    count=6,  # needs 12 directions > 8
                    sigma=1.0,
                    initial_positions=tuple(
                        Vec2(float(i), float(i % 2)) for i in range(6)
                    ),
                    observable_ids=tuple(range(6)),
                )
            )

    def test_logk_fits_the_same_resolution(self):
        from repro.protocols.sync_logk import SyncLogKProtocol

        # k=3 -> 8 slice directions: fine at resolution 8, any n.
        SyncLogKProtocol(k=3, max_directions=8)
        with pytest.raises(ProtocolError):
            SyncLogKProtocol(k=4, max_directions=8)

    def test_small_swarm_still_fits(self):
        # 2n = 8 <= 8: a 4-robot swarm works at resolution 8.
        SyncGranularProtocol(max_directions=8)  # constructor ok
        from repro.model.protocol import BindingInfo

        protocol = SyncGranularProtocol(max_directions=8)
        protocol.bind(
            BindingInfo(
                index=0,
                count=4,
                sigma=1.0,
                initial_positions=(
                    Vec2(0, 0),
                    Vec2(10, 0),
                    Vec2(0, 10),
                    Vec2(10, 10),
                ),
                observable_ids=(0, 1, 2, 3),
            )
        )
