"""Smoke test for the experiment driver.

``python benchmarks/run_all.py`` regenerates every experiment table
(the EXPERIMENTS.md source); this test keeps the whole driver green —
an experiment module that starts crashing is caught here even if its
pytest-benchmark wrapper is skipped.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestRunAll:
    def test_every_experiment_table_regenerates(self):
        result = subprocess.run(
            [sys.executable, "benchmarks/run_all.py", "--no-history"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        ok_lines = [line for line in result.stdout.splitlines() if ": ok in" in line]
        # At least one success line per experiment module registered in
        # MODULES (parametrized modules contribute one line per cell).
        source = (REPO_ROOT / "benchmarks" / "run_all.py").read_text()
        modules_block = source.split("MODULES = [", 1)[1].split("]", 1)[0]
        registered = [
            line.strip().rstrip(",")
            for line in modules_block.splitlines()
            if "bench_" in line
        ]
        succeeded = {line.split("[", 1)[1].split(":", 1)[0] for line in ok_lines}
        missing = [
            name for name in registered
            if f"benchmarks.{name}" not in succeeded
        ]
        assert not missing, f"no success line for {missing}"
        assert len(ok_lines) >= len(registered)
        assert "FAILED" not in result.stderr


class TestQuickGate:
    """``--quick`` must gate CI: probe failures => nonzero exit."""

    def _cheap_probes(self, monkeypatch, run_all, **overrides):
        """Replace every probe with a cheap stub, then apply overrides."""
        good = {
            "throughput_probe": lambda n=64, steps=40: {
                "n": n, "steps": steps, "uncached_s": 1.0, "cached_s": 0.5,
                "speedup": 2.0, "uncached_steps_per_sec": 1.0,
                "cached_steps_per_sec": 2.0, "trace_identical": True,
                "bits_identical": True,
                "stats": {"observation_reuse_rate": 1.0},
            },
            "geometry_cache_probe": lambda: {"ok": True},
            "adversarial_transparency_probe": lambda: {
                "seeds": 0, "runs": 0, "failures": 0, "ok": True,
                "violations": [],
            },
            "sync_invariant_holds": lambda: True,
        }
        good.update(overrides)
        for name, fake in good.items():
            monkeypatch.setattr(run_all, name, fake)

    def test_quick_mode_exits_zero_when_clean(self, monkeypatch):
        import benchmarks.run_all as run_all

        self._cheap_probes(monkeypatch, run_all)
        assert run_all.main(["--quick", "--no-history"]) == 0

    def test_transparency_violation_exits_nonzero(self, monkeypatch):
        import benchmarks.run_all as run_all

        broken = dict(self._good_throughput(), trace_identical=False)
        self._cheap_probes(
            monkeypatch, run_all,
            throughput_probe=lambda n=64, steps=40: broken,
        )
        assert run_all.main(["--quick", "--no-history"]) == 1

    def test_adversarial_violation_exits_nonzero(self, monkeypatch):
        import benchmarks.run_all as run_all

        self._cheap_probes(
            monkeypatch, run_all,
            adversarial_transparency_probe=lambda: {
                "seeds": 1, "runs": 25, "failures": 3, "ok": False,
                "violations": ["[transparency @ end] traces diverged"],
            },
        )
        assert run_all.main(["--quick", "--no-history"]) == 1

    def test_crashing_probe_is_a_failure_not_a_traceback(self, monkeypatch):
        import benchmarks.run_all as run_all

        def boom(n=64, steps=40):
            raise RuntimeError("probe exploded")

        self._cheap_probes(monkeypatch, run_all, throughput_probe=boom)
        assert run_all.main(["--quick", "--no-history"]) == 1

    @staticmethod
    def _good_throughput():
        return {
            "n": 64, "steps": 40, "uncached_s": 1.0, "cached_s": 0.5,
            "speedup": 2.0, "uncached_steps_per_sec": 1.0,
            "cached_steps_per_sec": 2.0, "trace_identical": True,
            "bits_identical": True,
            "stats": {"observation_reuse_rate": 1.0},
        }


class TestResultsSchema:
    """The JSON payload identifies itself: schema, version, commit."""

    def test_results_carry_schema_version_and_commit(self, monkeypatch, tmp_path):
        import json

        import benchmarks.run_all as run_all

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        out = tmp_path / "results.json"
        assert run_all.main(["--quick", "--no-history", "--json", str(out)]) == 0
        results = json.loads(out.read_text())
        assert results["schema"] == run_all.RESULTS_SCHEMA
        assert results["version"] == run_all.RESULTS_VERSION
        # this test runs inside the repo's own git checkout
        assert isinstance(results["git_commit"], str)
        assert len(results["git_commit"]) == 40

    def test_results_record_wall_clock_and_workers(self, monkeypatch, tmp_path):
        """v3 payload: per-probe wall clock plus the worker count."""
        import json

        import benchmarks.run_all as run_all

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        out = tmp_path / "results.json"
        assert run_all.main(["--quick", "--no-history", "--json", str(out)]) == 0
        results = json.loads(out.read_text())
        assert results["workers"] == 0
        assert results["elapsed_s"] > 0.0
        timings = results["probes_elapsed_s"]
        assert set(timings) == set(results["probes"])
        assert all(t >= 0.0 for t in timings.values())

    def test_git_commit_is_none_outside_a_checkout(self, monkeypatch):
        import benchmarks.run_all as run_all

        def no_git(*args, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(run_all.subprocess, "run", no_git)
        assert run_all.git_commit() is None


class TestHistory:
    """Every driver run appends one entry to the metrics history."""

    def test_two_runs_yield_two_entries_with_increasing_seq(
        self, monkeypatch, tmp_path
    ):
        import benchmarks.run_all as run_all
        from repro.obs.history import HistoryStore

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        history = tmp_path / "BENCH_history.jsonl"
        assert run_all.main(["--quick", "--history", str(history)]) == 0
        assert run_all.main(["--quick", "--history", str(history)]) == 0
        entries = HistoryStore(str(history)).entries()
        assert [e.seq for e in entries] == [1, 2]
        for entry in entries:
            assert entry.source == "run_all"
            assert entry.run_id == "run_all-quick"
            assert len(entry.git_commit) == 40
            assert entry.metrics  # the registry snapshot flattened
            assert any(m.startswith("probe_elapsed_s") for m in entry.metrics)

    def test_results_carry_the_registry_snapshot(self, monkeypatch, tmp_path):
        import json

        import benchmarks.run_all as run_all

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        out = tmp_path / "results.json"
        assert run_all.main(
            ["--quick", "--no-history", "--json", str(out)]
        ) == 0
        results = json.loads(out.read_text())
        assert results["version"] == 4
        series = results["metrics"]
        assert isinstance(series, list) and series
        names = [entry["name"] for entry in series]
        assert names == sorted(names)
        assert "probe_elapsed_s" in names

    def test_failed_append_fails_the_run(self, monkeypatch, tmp_path):
        import benchmarks.run_all as run_all

        def boom(results, path):
            raise OSError("disk full")

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        monkeypatch.setattr(run_all, "append_history", boom)
        assert run_all.main(
            ["--quick", "--history", str(tmp_path / "h.jsonl")]
        ) == 1

    def test_no_history_skips_the_append(self, monkeypatch, tmp_path):
        import benchmarks.run_all as run_all

        def boom(results, path):
            raise AssertionError("should not be called")

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        monkeypatch.setattr(run_all, "append_history", boom)
        assert run_all.main(["--quick", "--no-history"]) == 0


class TestBitLatencyProbe:
    """The bit-latency histograms land in the snapshot with labels."""

    @pytest.fixture(scope="class")
    def probe(self):
        import benchmarks.run_all as run_all

        return run_all.bit_latency_probe()

    def test_probe_covers_both_engines_per_protocol(self, probe):
        coverage = {
            (e["labels"]["protocol"], e["labels"]["engine"])
            for e in probe["series"]
        }
        assert ("sync_two", "rounds") in coverage
        assert ("sync_two", "events") in coverage
        assert ("async_n", "rounds") in coverage
        assert probe["latency_samples"] > 0

    def test_engines_agree_on_the_measured_latency(self, probe):
        by_key = {
            (e["labels"]["protocol"], e["labels"]["engine"]): e
            for e in probe["series"]
        }
        for protocol in ("sync_two", "async_n"):
            rounds = by_key[(protocol, "rounds")]
            events = by_key[(protocol, "events")]
            assert rounds["count"] == events["count"]
            assert rounds["sum"] == pytest.approx(events["sum"])

    def test_series_merges_into_the_snapshot_sorted(self, probe):
        import benchmarks.run_all as run_all

        snapshot = run_all.registry_snapshot({"bit_latency": probe}, {}, {})
        names = [e["name"] for e in snapshot]
        assert names == sorted(names)
        assert names.count("bit_latency_instants") == probe["histograms"]

    def test_history_ingest_flattens_with_labels(self, probe):
        import benchmarks.run_all as run_all
        from repro.obs.history import metrics_from_snapshot

        flat = metrics_from_snapshot(
            run_all.registry_snapshot({"bit_latency": probe}, {}, {})
        )
        key = (
            "bit_latency_instants{engine=rounds,protocol=sync_two,"
            "scheduler=synchronous}"
        )
        assert flat[f"{key}.count"] >= 1
        assert flat[f"{key}.mean"] > 0

    def test_probe_registry_includes_bit_latency_in_quick(self):
        import benchmarks.run_all as run_all

        assert "bit_latency" in run_all.PROBES
        assert "bit_latency" not in run_all._SLOW_PROBES


class TestObsFlag:
    """``--obs PATH`` exports a run and gates on transparency."""

    def test_obs_export_is_loadable_and_reported(self, monkeypatch, tmp_path):
        import json

        import benchmarks.run_all as run_all
        from repro.obs.export import load_run

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        obs_path = tmp_path / "run.jsonl"
        out = tmp_path / "results.json"
        code = run_all.main(
            ["--quick", "--no-history", "--obs", str(obs_path), "--json", str(out)]
        )
        assert code == 0
        run = load_run(str(obs_path))
        assert run.total_instants > 0
        results = json.loads(out.read_text())
        assert results["obs"]["transparent"] is True
        assert results["invariants"]["obs_transparency"] is True
        assert results["obs"]["events"] == len(run.events)

    def test_opaque_recorder_exits_nonzero(self, monkeypatch, tmp_path):
        import benchmarks.run_all as run_all

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        monkeypatch.setattr(
            run_all,
            "obs_probe",
            lambda path, n=8, steps=24: {
                "path": path, "n": n, "steps": steps,
                "events": 0, "transparent": False, "metrics": [],
            },
        )
        assert run_all.main(
            ["--quick", "--no-history", "--obs", str(tmp_path / "r.jsonl")]
        ) == 1

    def test_crashing_obs_probe_is_a_failure(self, monkeypatch, tmp_path):
        import benchmarks.run_all as run_all

        def boom(path, n=8, steps=24):
            raise RuntimeError("recorder exploded")

        TestQuickGate._cheap_probes(TestQuickGate(), monkeypatch, run_all)
        monkeypatch.setattr(run_all, "obs_probe", boom)
        assert run_all.main(
            ["--quick", "--no-history", "--obs", str(tmp_path / "r.jsonl")]
        ) == 1
