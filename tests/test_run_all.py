"""Smoke test for the experiment driver.

``python benchmarks/run_all.py`` regenerates every experiment table
(the EXPERIMENTS.md source); this test keeps the whole driver green —
an experiment module that starts crashing is caught here even if its
pytest-benchmark wrapper is skipped.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestRunAll:
    def test_every_experiment_table_regenerates(self):
        result = subprocess.run(
            [sys.executable, "benchmarks/run_all.py"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        ok_lines = [line for line in result.stdout.splitlines() if ": ok in" in line]
        # One success line per experiment module registered in MODULES.
        source = (REPO_ROOT / "benchmarks" / "run_all.py").read_text()
        modules_block = source.split("MODULES = [", 1)[1].split("]", 1)[0]
        registered = [line for line in modules_block.splitlines() if "bench_" in line]
        assert len(ok_lines) == len(registered), (
            f"{len(ok_lines)} experiments succeeded, {len(registered)} registered"
        )
        assert "FAILED" not in result.stderr
