"""Engine-level properties: determinism, heap invariants, fairness.

Everything here runs the real :class:`repro.events.engine.EventSimulator`
— no mocks — and checks the guarantees the module docstring makes:
same seed, same run; one pending event per robot; the continuous
clock never runs backwards; the gap clamp bounds every robot's
inter-Look time.
"""

from __future__ import annotations

import pytest

from repro.errors import EventError
from repro.events.delay import ConstantDelay
from repro.events.distributions import Deterministic, Exponential, Pareto, Uniform
from repro.events.engine import EventSimulator
from repro.events.timing import TimingModel
from repro.model.scheduler import SynchronousScheduler

from tests.events._support import IdleProtocol, MarchProtocol, line_swarm

pytestmark = pytest.mark.events


def _free_timing(**overrides):
    defaults = dict(
        look=Uniform(0.1, 0.6),
        compute=Uniform(0.1, 0.6),
        move=Uniform(0.1, 0.6),
        gap=Exponential(mean=2.0),
        max_gap=10.0,
    )
    defaults.update(overrides)
    return TimingModel.free(**defaults)


def _free_sim(n=6, seed=0, **kwargs):
    kwargs.setdefault("timing", _free_timing())
    return EventSimulator(line_swarm(n, MarchProtocol), None, seed=seed, **kwargs)


class TestDeterminism:
    def test_same_seed_identical_event_log_trace_and_positions(self):
        a = _free_sim(seed=42, record_events=True)
        b = _free_sim(seed=42, record_events=True)
        for _ in range(60):
            a.step()
            b.step()
        assert a.event_log == b.event_log
        assert a.clock == b.clock
        assert list(a.trace.steps) == list(b.trace.steps)
        assert tuple(a.positions) == tuple(b.positions)

    def test_different_seeds_diverge(self):
        a = _free_sim(seed=1, record_events=True)
        b = _free_sim(seed=2, record_events=True)
        for _ in range(30):
            a.step()
            b.step()
        assert a.event_log != b.event_log

    def test_event_log_is_opt_in(self):
        sim = _free_sim()
        with pytest.raises(EventError, match="record_events=True"):
            sim.event_log


class TestHeapInvariants:
    def test_one_pending_event_per_robot_between_steps(self):
        n = 8
        sim = _free_sim(n=n, seed=3)
        assert sim.heap_depth == n  # one first-Look per robot
        for _ in range(80):
            sim.step()
            # Every pop pushes the robot's next phase: the heap always
            # holds exactly one in-flight event per robot at rest.
            assert sim.heap_depth == n
            robots = sorted(event[2] for event in sim.pending_events)
            assert robots == list(range(n))

    def test_pending_events_are_sorted_and_never_in_the_past(self):
        sim = _free_sim(n=5, seed=9)
        for _ in range(60):
            sim.step()
            times = [event[0] for event in sim.pending_events]
            assert times == sorted(times)
            assert times[0] >= sim.clock

    def test_clock_is_monotone_and_trace_times_are_ordinals(self):
        sim = _free_sim(n=4, seed=7)
        last = 0.0
        for i in range(50):
            step = sim.step()
            assert step.time == i  # ordinal step index, not the clock
            assert sim.clock >= last
            last = sim.clock
        assert sim.events_processed > 0

    def test_heavy_tail_event_storm_keeps_the_phase_cycle(self):
        # Pareto phases/gaps with infinite variance: the heap must
        # still serve every robot a strict look->compute->move cycle.
        timing = _free_timing(
            look=Pareto(alpha=1.1, scale=0.3),
            compute=Pareto(alpha=1.1, scale=0.3),
            move=Pareto(alpha=1.1, scale=0.3),
            gap=Pareto(alpha=0.9, scale=1.0),
            max_gap=50.0,
        )
        n = 10
        sim = _free_sim(n=n, seed=17, timing=timing, record_events=True)
        for _ in range(200):
            sim.step()
            assert sim.heap_depth == n
        cycle = ("look", "compute", "move")
        for robot in range(n):
            phases = [p for (_, p, r) in sim.event_log if r == robot]
            assert phases, f"robot {robot} never activated"
            for i, phase in enumerate(phases):
                assert phase == cycle[i % 3]


class TestFairness:
    def test_max_gap_bounds_every_inter_look_interval(self):
        # Unit phases + clamped exponential gaps: consecutive Looks of
        # any robot are at most look+compute+move+max_gap apart.
        timing = TimingModel.free(
            gap=Exponential(mean=5.0),
            max_gap=8.0,
            activate_all_first=False,
        )
        sim = _free_sim(n=5, seed=11, timing=timing, record_events=True)
        for _ in range(300):
            sim.step()
        bound = 3.0 + 8.0 + 1e-9
        looks = {}
        for time, phase, robot in sim.event_log:
            if phase != "look":
                continue
            if robot in looks:
                assert time - looks[robot] <= bound
            else:
                assert time <= 8.0 + 1e-9  # first Look after one gap draw
            looks[robot] = time
        assert len(looks) == 5  # everyone activated


class TestConstructionErrors:
    def test_free_timing_forbids_a_scheduler(self):
        with pytest.raises(EventError, match="free-running timing"):
            EventSimulator(
                line_swarm(3), SynchronousScheduler(), timing=_free_timing()
            )

    def test_timing_and_delay_types_are_validated(self):
        with pytest.raises(EventError, match="timing must be a TimingModel"):
            EventSimulator(line_swarm(3), None, timing="fast")
        with pytest.raises(EventError, match="delay must be a DelayModel"):
            EventSimulator(line_swarm(3), None, delay=1.5)

    @pytest.mark.parametrize("bad", [0.0, -3.0])
    def test_visibility_radius_must_be_positive(self, bad):
        with pytest.raises(EventError, match="visibility_radius"):
            EventSimulator(line_swarm(3), None, visibility_radius=bad)


class TestMetrics:
    def test_registry_wiring_matches_the_event_log(self):
        from repro.obs.history import metrics_from_snapshot
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        sim = _free_sim(n=4, seed=5, registry=registry, record_events=True)
        for _ in range(40):
            sim.step()
        snapshot = metrics_from_snapshot(registry.collect())
        by_phase = {"look": 0, "compute": 0, "move": 0}
        for _, phase, _ in sim.event_log:
            by_phase[phase] += 1
        for phase, count in by_phase.items():
            assert snapshot[f"event_count{{phase={phase}}}"] == count
        assert snapshot["event_heap_depth_max"] >= 4
        # Histograms land as .count/.sum/.mean scalar projections.
        assert snapshot["event_phase_latency{phase=look}.count"] == by_phase["look"]
        assert snapshot["event_activation_gap.count"] > 0


class TestEngineExposure:
    def test_make_simulator_routes_to_the_event_engine(self):
        from repro.batch import ENGINES, make_simulator

        assert ENGINES == ("rounds", "events")
        sim = make_simulator(
            line_swarm(3), SynchronousScheduler(), engine="events"
        )
        assert isinstance(sim, EventSimulator)
        with pytest.raises(ValueError, match="unknown engine"):
            make_simulator(line_swarm(3), engine="instant")
        with pytest.raises(ValueError, match="scalar backend"):
            make_simulator(line_swarm(3), engine="events", backend="batch")
        with pytest.raises(ValueError, match="event-engine knobs"):
            make_simulator(
                line_swarm(3), engine="rounds", timing=_free_timing()
            )

    def test_harness_engine_knob_builds_an_event_simulator(self):
        from repro.apps.harness import SwarmHarness
        from repro.geometry.vec import Vec2

        harness = SwarmHarness(
            [Vec2(10.0 * i, 0.0) for i in range(4)],
            MarchProtocol,
            engine="events",
            timing=_free_timing(),
            delay=ConstantDelay(0.5),
        )
        sim = harness.simulator
        assert isinstance(sim, EventSimulator)
        for _ in range(20):
            sim.step()
        assert sim.clock > 0.0
