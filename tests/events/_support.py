"""Shared swarm builders for the event-engine test suite.

World-frame robots on a well-separated line: with the default
:class:`~repro.geometry.frames.Frame` the local/world transform is a
pure translation by the robot's anchor, which keeps the white-box
tests (delay visibility, heap invariants) free of rotation algebra.
"""

from __future__ import annotations

from typing import Callable, List

from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BitEvent, Protocol
from repro.model.robot import Robot


class IdleProtocol(Protocol):
    """Decode nothing, stay put — pure engine ballast."""

    def _decode(self, observation: Observation) -> List[BitEvent]:
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position


class MarchProtocol(Protocol):
    """March +x by a fixed stride every activation."""

    def __init__(self, stride: float = 0.5) -> None:
        super().__init__()
        self.stride = stride

    def _decode(self, observation: Observation) -> List[BitEvent]:
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position + Vec2(self.stride, 0.0)


def line_swarm(
    n: int,
    factory: Callable[[], Protocol] = IdleProtocol,
    *,
    sigma: float = 1.0,
    pitch: float = 10.0,
) -> List[Robot]:
    """n world-frame robots on a line, ``pitch`` units apart."""
    return [
        Robot(
            position=Vec2(pitch * i, 0.0),
            protocol=factory(),
            sigma=sigma,
            observable_id=i,
        )
        for i in range(n)
    ]
