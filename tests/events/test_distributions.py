"""Duration distributions: validation, sampling, means, determinism."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import EventError
from repro.events.distributions import Deterministic, Exponential, Pareto, Uniform

pytestmark = pytest.mark.events


class TestValidation:
    @pytest.mark.parametrize("bad", [-1.0, -0.001, float("nan"), float("inf")])
    def test_deterministic_rejects_non_finite_or_negative(self, bad):
        with pytest.raises(EventError, match="finite and >= 0"):
            Deterministic(bad)

    @pytest.mark.parametrize(
        "low, high",
        [(2.0, 1.0), (-1.0, 1.0), (0.0, float("inf")), (float("nan"), 1.0)],
    )
    def test_uniform_rejects_bad_bounds(self, low, high):
        with pytest.raises(EventError, match="uniform bounds"):
            Uniform(low, high)

    @pytest.mark.parametrize("bad", [0.0, -3.0, float("inf"), float("nan")])
    def test_exponential_rejects_non_positive_mean(self, bad):
        with pytest.raises(EventError, match="exponential mean"):
            Exponential(bad)

    def test_pareto_rejects_bad_shape_and_scale(self):
        with pytest.raises(EventError, match="alpha"):
            Pareto(alpha=0.0)
        with pytest.raises(EventError, match="alpha"):
            Pareto(alpha=float("inf"))
        with pytest.raises(EventError, match="scale"):
            Pareto(alpha=1.5, scale=0.0)
        with pytest.raises(EventError, match="scale"):
            Pareto(alpha=1.5, scale=-2.0)


class TestSampling:
    def test_deterministic_never_consumes_the_rng(self):
        rng = random.Random(7)
        before = rng.getstate()
        dist = Deterministic(2.5)
        assert all(dist.sample(rng) == 2.5 for _ in range(10))
        assert rng.getstate() == before

    def test_uniform_stays_within_bounds(self):
        dist = Uniform(1.0, 3.0)
        rng = random.Random(11)
        for _ in range(500):
            assert 1.0 <= dist.sample(rng) <= 3.0

    def test_exponential_is_positive_with_roughly_the_right_mean(self):
        dist = Exponential(mean=5.0)
        rng = random.Random(13)
        draws = [dist.sample(rng) for _ in range(4_000)]
        assert all(d >= 0.0 for d in draws)
        assert abs(sum(draws) / len(draws) - 5.0) < 0.5

    def test_pareto_consumes_exactly_one_draw_per_sample(self):
        # The engine's per-robot RNG streams rely on predictable draw
        # counts; Pareto promises a single rng.random() per sample.
        a, b = random.Random(3), random.Random(3)
        Pareto(alpha=1.2).sample(a)
        b.random()
        assert a.getstate() == b.getstate()

    def test_pareto_is_heavy_tailed_but_non_negative(self):
        dist = Pareto(alpha=0.8, scale=0.5)
        rng = random.Random(5)
        draws = [dist.sample(rng) for _ in range(5_000)]
        assert all(d >= 0.0 for d in draws)
        # Infinite-mean regime: the max dwarfs the median.
        assert max(draws) > 100 * sorted(draws)[len(draws) // 2]

    @pytest.mark.parametrize(
        "dist",
        [Uniform(0.5, 2.0), Exponential(mean=3.0), Pareto(alpha=1.5, scale=2.0)],
        ids=["uniform", "exponential", "pareto"],
    )
    def test_same_seed_same_sequence(self, dist):
        rng1, rng2 = random.Random(42), random.Random(42)
        seq1 = [dist.sample(rng1) for _ in range(20)]
        seq2 = [dist.sample(rng2) for _ in range(20)]
        assert seq1 == seq2


class TestMeans:
    def test_closed_form_means(self):
        assert Deterministic(2.0).mean() == 2.0
        assert Uniform(1.0, 3.0).mean() == 2.0
        assert Exponential(mean=7.5).mean() == 7.5
        # E[scale * (X - 1)] with X ~ Pareto(alpha): scale / (alpha - 1).
        assert Pareto(alpha=3.0, scale=4.0).mean() == 2.0

    def test_pareto_mean_is_infinite_at_or_below_alpha_one(self):
        assert Pareto(alpha=1.0).mean() == math.inf
        assert Pareto(alpha=0.5).mean() == math.inf
        assert math.isfinite(Pareto(alpha=1.001).mean())
