"""Golden scripted-schedule corpus: rounds vs events, byte for byte.

The strongest form of the round-emulation promise: feed *the same
explicit activation script* (a :class:`ScriptedScheduler`) to both
engines and require byte-identical traces, bit streams and final
configurations — then pin the whole run shape with a stored CRC so a
behaviour change in **either** engine trips the corpus, not just a
divergence between them.

The corpus lives beside the matrix regression seeds in
``tests/verify/seeds.json`` under the ``event_script_corpus`` key.
Regenerate after an intentional engine/builder change with::

    PYTHONPATH=src:. python - <<'PY'
    import json, pathlib
    from tests.events import test_script_differential as tsd
    entries = []
    for protocol in tsd.PROTOCOLS:
        for seed in (3, 17):
            run, steps = tsd.build_twin(protocol, seed, "rounds")
            entries.append({
                "protocol": protocol, "seed": seed, "size": run.size,
                "steps": steps, "crc": tsd.run_crc(run, steps),
            })
    path = pathlib.Path("tests/verify/seeds.json")
    corpus = json.loads(path.read_text())
    corpus[tsd.CORPUS_KEY] = entries
    path.write_text(json.dumps(corpus, indent=2) + "\n")
    PY
"""

from __future__ import annotations

import json
import pathlib
import random
import zlib
from typing import List

import pytest

from repro.model.scheduler import ScriptedScheduler
from repro.verify.engine import _received_fingerprint, _trace_fingerprint, drive
from repro.verify.monitors import attach
from repro.verify.scenarios import CELLS, PROTOCOLS, build_run

pytestmark = [pytest.mark.events, pytest.mark.verify]

_CORPUS_PATH = pathlib.Path(__file__).parent.parent / "verify" / "seeds.json"
CORPUS_KEY = "event_script_corpus"

#: Protocols whose correctness argument assumes every robot is
#: activated every instant — their scripts are full-activation; the
#: async protocols get seeded *partial* activation sets instead.
FULL_ACTIVATION = frozenset({"sync_two", "sync_granular", "sync_logk", "flocking"})


def _corpus():
    with open(_CORPUS_PATH) as handle:
        return json.load(handle)


def _entries():
    return _corpus().get(CORPUS_KEY, [])


def make_script(protocol: str, seed: int, size: int, length: int) -> List[frozenset]:
    """The deterministic activation script of one corpus run."""
    if protocol in FULL_ACTIVATION:
        return [frozenset(range(size))] * length
    rng = random.Random(88_000_017 * seed + size)
    script: List[frozenset] = []
    for _ in range(length):
        active = frozenset(i for i in range(size) if rng.random() < 0.6)
        if not active:
            active = frozenset([rng.randrange(size)])
        script.append(active)
    return script


def build_twin(protocol: str, seed: int, engine: str):
    """Build and drive one scripted run on one engine."""
    cell = CELLS[(protocol, "synchronous")]
    # The swarm size is drawn from the cell's own seeded blueprint
    # (independent of the scheduler), so a throwaway build reveals the
    # size the script must cover.
    size = build_run(cell, seed, quick=True).size
    # drive() runs at most quick_steps plus the 4-instant cooldown;
    # a little headroom keeps the script from ever exhausting.
    script = make_script(protocol, seed, size, cell.quick_steps + 8)
    run = build_run(
        cell,
        seed,
        quick=True,
        engine=engine,
        scheduler_factory=lambda: ScriptedScheduler(script),
    )
    assert run.size == size
    attach(run.sim, run.monitors)
    steps = drive(run)
    return run, steps


def run_crc(run, steps: int) -> int:
    """CRC of the full observable run shape (exact float coordinates).

    ``repr(float)`` is the shortest round-tripping form, so the blob —
    unlike ``Vec2.__repr__``'s display precision — pins positions
    exactly.
    """
    trace = [
        (
            step.time,
            tuple(sorted(step.active)),
            tuple((p.x, p.y) for p in step.positions),
        )
        for step in run.sim.trace.steps
    ]
    final = tuple((p.x, p.y) for p in run.sim.positions)
    blob = repr((steps, run.size, trace, _received_fingerprint(run), final))
    return zlib.crc32(blob.encode("ascii"))


class TestCorpusShape:
    def test_corpus_covers_every_protocol_at_both_seeds(self):
        pairs = {(e["protocol"], e["seed"]) for e in _entries()}
        assert pairs == {(p, s) for p in PROTOCOLS for s in (3, 17)}

    def test_async_scripts_are_genuinely_partial_but_never_empty(self):
        for protocol in ("async_two", "async_n"):
            script = make_script(protocol, seed=3, size=5, length=24)
            assert any(len(step) < 5 for step in script)
            assert all(step for step in script)

    def test_full_activation_scripts_for_synchronous_protocols(self):
        script = make_script("sync_two", seed=3, size=4, length=6)
        assert script == [frozenset(range(4))] * 6


@pytest.mark.parametrize(
    "entry",
    _entries(),
    ids=lambda e: f"{e['protocol']}-s{e['seed']}",
)
def test_scripted_golden_replay_is_byte_identical(entry):
    rounds, r_steps = build_twin(entry["protocol"], entry["seed"], "rounds")
    events, e_steps = build_twin(entry["protocol"], entry["seed"], "events")
    assert rounds.size == events.size == entry["size"]
    assert r_steps == e_steps == entry["steps"]
    assert _trace_fingerprint(rounds) == _trace_fingerprint(events)
    assert _received_fingerprint(rounds) == _received_fingerprint(events)
    assert tuple(rounds.sim.positions) == tuple(events.sim.positions)
    assert rounds.sim.epoch == events.sim.epoch
    # The stored CRC pins the run itself, not just engine agreement.
    assert run_crc(rounds, r_steps) == entry["crc"]
    assert run_crc(events, e_steps) == entry["crc"]
