"""Timing models: the two operating modes and the fairness clamp."""

from __future__ import annotations

import random

import pytest

from repro.errors import EventError
from repro.events.distributions import Deterministic, Exponential, Uniform
from repro.events.timing import TimingModel

pytestmark = pytest.mark.events


class TestConstruction:
    def test_round_emulation_is_the_oracle_configuration(self):
        timing = TimingModel.round_emulation()
        assert timing.scheduler_driven is True
        assert timing.max_gap is None
        rng = random.Random(0)
        for name in ("look", "compute", "move"):
            assert timing.sample_phase(name, rng) == 1.0
        assert timing.sample_gap(rng) == 1.0

    def test_free_defaults_omitted_phases_to_unit(self):
        timing = TimingModel.free(gap=Exponential(mean=4.0))
        assert timing.scheduler_driven is False
        assert timing.activate_all_first is True
        rng = random.Random(0)
        assert timing.sample_phase("look", rng) == 1.0
        assert timing.sample_phase("compute", rng) == 1.0
        assert timing.sample_phase("move", rng) == 1.0

    def test_non_distribution_fields_are_rejected(self):
        with pytest.raises(EventError, match="must be a Distribution"):
            TimingModel.free(look=1.0)  # a bare float is not a Distribution
        with pytest.raises(EventError, match="must be a Distribution"):
            TimingModel(
                look=Deterministic(1.0),
                compute=Deterministic(1.0),
                move=Deterministic(1.0),
                gap="soon",
            )

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("inf"), float("nan")])
    def test_invalid_max_gap_is_rejected(self, bad):
        with pytest.raises(EventError, match="max_gap"):
            TimingModel.free(gap=Exponential(mean=1.0), max_gap=bad)


class TestSampling:
    def test_gap_draws_are_clamped_to_max_gap(self):
        timing = TimingModel.free(gap=Deterministic(10.0), max_gap=2.0)
        assert timing.sample_gap(random.Random(0)) == 2.0
        # Draws under the clamp pass through untouched.
        loose = TimingModel.free(gap=Uniform(0.0, 1.0), max_gap=2.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 0.0 <= loose.sample_gap(rng) <= 1.0

    def test_belt_and_braces_guard_against_buggy_distributions(self):
        class Negative(Deterministic):
            def __init__(self):
                super().__init__(1.0)

            def sample(self, rng):
                return -1.0

        timing = TimingModel.free(look=Negative(), gap=Negative())
        rng = random.Random(0)
        with pytest.raises(EventError, match="look distribution produced"):
            timing.sample_phase("look", rng)
        with pytest.raises(EventError, match="gap distribution produced"):
            timing.sample_gap(rng)
