"""Round-emulation equivalence: every protocol, both scheduler arms.

The tentpole claim — the event engine in round-emulation mode is
*byte-identical* to the round engine — exercised per protocol through
the :mod:`repro.verify.events` oracle: identical traces, bit streams,
final configurations, epochs and monitor verdicts, under both full
synchrony and a seeded fair-asynchronous scheduler (genuinely partial
activation).  The full seed fan runs in CI via
``python -m repro.verify --event-oracle``; this is the per-protocol
pytest surface.
"""

from __future__ import annotations

import pytest

from repro.model.scheduler import FairAsynchronousScheduler
from repro.verify.events import compare_cell
from repro.verify.scenarios import CELLS, PROTOCOLS

pytestmark = [pytest.mark.events, pytest.mark.verify]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_synchronous_cells_are_byte_identical(protocol):
    cell = CELLS[(protocol, "synchronous")]
    result = compare_cell(cell, seed=5, quick=True)
    assert result.ok, (result.problems, result.error)
    assert result.steps > 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fair_async_partial_activation_is_byte_identical(protocol):
    cell = CELLS[(protocol, "synchronous")]
    result = compare_cell(
        cell,
        seed=8,
        quick=True,
        scheduler_factory=lambda: FairAsynchronousScheduler(seed=97),
        variant="fair_async",
    )
    assert result.ok, (result.problems, result.error)
