"""Delay-model visibility: a Look may lag reality, never lead it.

White-box tests of ``EventSimulator._config_for_observation``: the
engine's release rule (a change of ``j`` at ``t`` becomes visible at
``t + delay_fcn(j, i, t)``) is driven directly by planting position
changes in the history via :meth:`displace` and advancing the clock
by hand — no stepping, so every assertion pins one rule exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import EventError
from repro.events.delay import (
    ConstantDelay,
    DelayModel,
    TargetedSpikeDelay,
    ZeroDelay,
)
from repro.events.engine import EventSimulator
from repro.geometry.vec import Vec2

from tests.events._support import IdleProtocol, line_swarm

pytestmark = pytest.mark.events


def _sim(delay, n=3):
    return EventSimulator(line_swarm(n, IdleProtocol), None, delay=delay)


class TestReleaseRule:
    def test_change_is_hidden_until_its_release_time(self):
        sim = _sim(ConstantDelay(5.0))
        sim._clock = 10.0
        sim.displace(1, Vec2(105.0, 0.0))
        sim._clock = 12.0  # release is 10 + 5 = 15
        assert sim._config_for_observation(0)[1] == Vec2(10.0, 0.0)
        sim._clock = 15.0  # boundary: released at exactly change+delay
        assert sim._config_for_observation(0)[1] == Vec2(105.0, 0.0)

    def test_latest_released_change_wins(self):
        sim = _sim(ConstantDelay(3.0))
        sim._clock = 2.0
        sim.displace(1, Vec2(105.0, 0.0))  # releases at 5
        sim._clock = 8.0
        sim.displace(1, Vec2(205.0, 0.0))  # releases at 11
        sim._clock = 3.0  # neither released: the initial position
        assert sim._config_for_observation(0)[1] == Vec2(10.0, 0.0)
        sim._clock = 9.0  # only the first change has been released
        assert sim._config_for_observation(0)[1] == Vec2(105.0, 0.0)
        sim._clock = 11.0  # the newest released change shadows older ones
        assert sim._config_for_observation(0)[1] == Vec2(205.0, 0.0)

    def test_initial_positions_are_always_visible(self):
        # Even an absurd delay cannot hide where everyone started: the
        # time-zero configuration is common knowledge (Section 2).
        sim = _sim(ConstantDelay(1e6))
        sim._clock = 1.0
        assert list(sim._config_for_observation(0)) == list(sim._anchors)

    def test_a_robot_senses_itself_live(self):
        sim = _sim(ConstantDelay(50.0))
        sim._clock = 10.0
        sim.displace(0, Vec2(-7.0, 0.0))
        # Own odometry, not a sighting: index 0 sees itself moved now.
        assert sim._config_for_observation(0)[0] == Vec2(-7.0, 0.0)
        # Everyone else still sees the old position until release.
        assert sim._config_for_observation(1)[0] == Vec2(0.0, 0.0)


class TestFastPathAndErrors:
    def test_zero_delay_serves_the_live_configuration_object(self):
        # Identity, not a copy: the observation cache (and with it the
        # round-engine byte-identity) hangs off this exact fast path.
        sim = _sim(ZeroDelay())
        assert sim._config_for_observation(0) is sim._positions
        assert sim._track_history is False

    def test_negative_delay_is_rejected_at_look_time(self):
        class Broken(DelayModel):
            def delay_fcn(self, sender, receiver, time):
                return -1.0

        sim = _sim(Broken())
        sim._clock = 1.0
        sim.displace(1, Vec2(105.0, 0.0))
        sim._clock = 2.0
        with pytest.raises(EventError, match="negative delay"):
            sim._config_for_observation(0)


class TestTargetedSpike:
    def test_only_the_victim_sees_a_stale_world(self):
        # width == period: the victim is permanently inside a spike
        # window, so the asymmetry is unconditional in this test.
        delay = TargetedSpikeDelay(victim=0, spike=50.0, period=100.0, width=100.0)
        sim = _sim(delay)
        sim._clock = 10.0
        sim.displace(1, Vec2(105.0, 0.0))
        sim._clock = 20.0
        assert sim._config_for_observation(0)[1] == Vec2(10.0, 0.0)  # victim: stale
        assert sim._config_for_observation(2)[1] == Vec2(105.0, 0.0)  # others: live
        sim._clock = 60.0  # 10 + 50: released even for the victim
        assert sim._config_for_observation(0)[1] == Vec2(105.0, 0.0)
