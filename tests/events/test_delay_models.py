"""Delay models: pure functions, validation, spike-window geometry."""

from __future__ import annotations

import pytest

from repro.errors import EventError
from repro.events.delay import (
    ConstantDelay,
    JitterDelay,
    TargetedSpikeDelay,
    ZeroDelay,
)

pytestmark = pytest.mark.events


class TestZeroAndConstant:
    def test_zero_delay_is_the_fast_path(self):
        model = ZeroDelay()
        assert model.is_zero is True
        assert model.delay_fcn(0, 1, 12.5) == 0.0
        assert model(3, 4, 0.0) == 0.0  # __call__ alias

    def test_constant_delay_flags_is_zero_only_at_zero(self):
        assert ConstantDelay(0.0).is_zero is True
        lagged = ConstantDelay(2.5)
        assert lagged.is_zero is False
        assert lagged.delay_fcn(0, 1, 100.0) == 2.5
        assert lagged.delay_fcn(1, 0, 0.0) == 2.5  # sender/receiver blind

    @pytest.mark.parametrize("bad", [-0.1, float("inf"), float("nan")])
    def test_constant_delay_rejects_bad_values(self, bad):
        with pytest.raises(EventError, match="finite and >= 0"):
            ConstantDelay(bad)


class TestJitter:
    def test_jitter_is_a_pure_function_of_the_arguments(self):
        # Evaluation order must not matter: two fresh instances with
        # the same seed agree call-for-call, in any order.
        a = JitterDelay(base=1.0, jitter=0.5, seed=9)
        b = JitterDelay(base=1.0, jitter=0.5, seed=9)
        calls = [(0, 1, 3.25), (5, 2, 0.0), (1, 0, 3.25), (0, 1, 3.25)]
        forward = [a.delay_fcn(*c) for c in calls]
        backward = [b.delay_fcn(*c) for c in reversed(calls)]
        assert forward == list(reversed(backward))
        assert forward[0] == forward[3]  # same args, same lag

    def test_jitter_stays_within_base_plus_jitter(self):
        model = JitterDelay(base=2.0, jitter=0.5, seed=1)
        for t in range(50):
            lag = model.delay_fcn(t % 7, (t + 1) % 7, float(t) / 3.0)
            assert 2.0 <= lag < 2.5

    def test_different_seeds_give_different_jitter(self):
        calls = [(0, 1, float(t)) for t in range(20)]
        one = [JitterDelay(0.0, 1.0, seed=1).delay_fcn(*c) for c in calls]
        two = [JitterDelay(0.0, 1.0, seed=2).delay_fcn(*c) for c in calls]
        assert one != two

    def test_jitter_rejects_negative_components(self):
        with pytest.raises(EventError, match="base delay"):
            JitterDelay(base=-1.0, jitter=0.5)
        with pytest.raises(EventError, match="jitter"):
            JitterDelay(base=1.0, jitter=-0.5)

    def test_jitter_is_zero_only_when_both_components_are(self):
        assert JitterDelay(0.0, 0.0).is_zero is True
        assert JitterDelay(0.0, 0.1).is_zero is False
        assert JitterDelay(0.1, 0.0).is_zero is False


class TestTargetedSpike:
    def test_non_victims_always_observe_instantly(self):
        model = TargetedSpikeDelay(victim=2, spike=50.0, period=10.0, width=3.0)
        for receiver in (0, 1, 3, 7):
            for t in (0.0, 1.5, 9.99, 100.0):
                assert model.delay_fcn(0, receiver, t) == 0.0

    def test_victim_lags_inside_the_periodic_window(self):
        model = TargetedSpikeDelay(
            victim=1, spike=40.0, period=10.0, width=3.0, base=0.5
        )
        # Inside a window (time mod period < width): base + spike.
        for t in (0.0, 2.9, 10.0, 12.5, 22.0):
            assert model.delay_fcn(0, 1, t) == 40.5
        # Outside: base only.
        for t in (3.0, 9.9, 13.0, 19.5):
            assert model.delay_fcn(0, 1, t) == 0.5

    def test_spike_validation(self):
        with pytest.raises(EventError, match="victim"):
            TargetedSpikeDelay(victim=-1, spike=1.0, period=5.0, width=1.0)
        with pytest.raises(EventError, match="period"):
            TargetedSpikeDelay(victim=0, spike=1.0, period=0.0, width=1.0)
        with pytest.raises(EventError, match="width"):
            TargetedSpikeDelay(victim=0, spike=1.0, period=5.0, width=0.0)
        with pytest.raises(EventError, match="width"):
            TargetedSpikeDelay(victim=0, spike=1.0, period=5.0, width=6.0)
        with pytest.raises(EventError, match="spike"):
            TargetedSpikeDelay(victim=0, spike=-1.0, period=5.0, width=1.0)
        with pytest.raises(EventError, match="base"):
            TargetedSpikeDelay(victim=0, spike=1.0, period=5.0, width=1.0, base=-0.1)
