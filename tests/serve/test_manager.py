"""Manager behaviour: batching, backpressure hysteresis, LRU, stats."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError, SessionRejectedError, UnknownSessionError
from repro.serve.client import ServeClient
from repro.serve.manager import ServeConfig, SessionManager
from repro.serve.pool import make_pool
from repro.serve.store import SessionStore

from tests.serve.test_session import spec_for

pytestmark = pytest.mark.serve


def run(coro):
    return asyncio.run(coro)


def test_config_validation():
    with pytest.raises(ServeError, match="max_live"):
        ServeConfig(max_live=0)
    with pytest.raises(ServeError, match="queue_low"):
        ServeConfig(queue_high=10, queue_low=20)
    with pytest.raises(ServeError, match="batch_max"):
        ServeConfig(batch_max=0)


def test_create_step_close_round_trip():
    async def body():
        async with SessionManager(make_pool(0)) as manager:
            client = ServeClient(manager)
            sid = await client.create("chat", 2, seed=4,
                                      params={"script": [[0, "a"], [1, "b"]]})
            doc = await client.run_to_completion(sid, instants_per_step=32)
            assert doc["status"] == "done"
            summary = await client.close(sid)
            assert summary["delivered"] == summary["expected"]
            assert manager.stats()["open"] == 0
            assert manager.stats()["closed"] == 1

    run(body())


def test_concurrent_steps_coalesce_into_batches():
    async def body():
        async with SessionManager(make_pool(0)) as manager:
            client = ServeClient(manager)
            sids = [
                await client.create("chat", 2, seed=i,
                                    params={"script": [[0, "x"], [1, "y"]]})
                for i in range(20)
            ]
            docs = await asyncio.gather(
                *(client.run_to_completion(s, instants_per_step=16)
                  for s in sids)
            )
            assert all(d["status"] == "done" for d in docs)
            # Coalescing really happened: far fewer instants than a
            # per-request accounting would produce is impossible, but
            # the totals must be exact.
            stats = manager.stats()
            assert stats["instants"] == sum(d["steps_applied"] for d in docs)
            for sid in sids:
                await client.close(sid)

    run(body())


def test_backpressure_rejects_and_recovers():
    async def body():
        from repro.serve.manager import _StepRequest

        config = ServeConfig(queue_high=4, queue_low=2, batch_max=2,
                             default_instants=1)
        async with SessionManager(make_pool(0), config=config) as manager:
            client = ServeClient(manager)
            sid = await client.create("chat", 2, seed=0,
                                      params={"script": [[0, "m"]]})
            # Fill the queue to the high watermark synchronously (no
            # yields, so the ticker cannot drain underneath the test).
            loop = asyncio.get_running_loop()
            futures = []
            for _ in range(config.queue_high):
                future = loop.create_future()
                manager._queue.append(_StepRequest(sid, 1, future))
                manager._sessions[sid].pending += 1
                futures.append(future)
            with pytest.raises(SessionRejectedError, match="retry after"):
                await client.step(sid, 1)
            assert manager.stats()["rejections"] == 1
            assert not manager.stats()["accepting"]
            # Let the ticker drain; below the low watermark admission
            # resumes (hysteresis: one gate, two thresholds).
            manager._wakeup.set()
            docs = await asyncio.gather(*futures)
            assert all(doc["status"] in ("running", "done") for doc in docs)
            doc = await client.step(sid, 1)
            assert doc["status"] in ("running", "done")
            assert manager.stats()["accepting"]
            await client.close(sid)

    run(body())


def test_max_open_ceiling():
    async def body():
        config = ServeConfig(max_open=2)
        async with SessionManager(make_pool(0), config=config) as manager:
            client = ServeClient(manager)
            await client.create("chat", 2, seed=0)
            await client.create("chat", 2, seed=1)
            with pytest.raises(SessionRejectedError, match="ceiling"):
                await client.create("chat", 2, seed=2)

    run(body())


def test_lru_order_drives_eviction(tmp_path):
    async def body():
        config = ServeConfig(max_live=2)
        store = SessionStore(str(tmp_path))
        async with SessionManager(make_pool(0), store=store,
                                  config=config) as manager:
            client = ServeClient(manager)
            a = await client.create("chat", 2, seed=0)
            b = await client.create("chat", 2, seed=1)
            await client.step(a, 4)  # b is now least recently used
            c = await client.create("chat", 2, seed=2)
            stats = manager.stats()
            assert stats["live"] == 2 and stats["evicted"] == 1
            assert (await client.query(b)).get("evicted") is True
            assert "evicted" not in await client.query(a)
            assert store.session_ids() == [b]
            # Touching b parks someone else, not b itself.
            await client.step(b, 4)
            assert "evicted" not in await client.query(b)
            for sid in (a, b, c):
                await client.close(sid)
            assert store.session_ids() == []

    run(body())


def test_step_errors_resolve_their_futures():
    async def body():
        async with SessionManager(make_pool(0)) as manager:
            client = ServeClient(manager)
            with pytest.raises(UnknownSessionError):
                await client.step("s99999999", 1)
            # A failing session rejects its own future with the host
            # error, and stays open (status failed) for post-mortems.
            sid = await client.create("token_ring", 4, seed=1)
            await client.send(sid, 2, 3, b"TOK 99")
            with pytest.raises(ServeError, match="failed at instant"):
                await client.step(sid, 400)
            assert (await client.query(sid))["status"] == "failed"

    run(body())


def test_close_with_pending_steps_refuses():
    async def body():
        async with SessionManager(make_pool(0)) as manager:
            client = ServeClient(manager)
            sid = await client.create("chat", 2, seed=0,
                                      params={"script": [[0, "m"]]})
            future = asyncio.ensure_future(client.step(sid, 1))
            await asyncio.sleep(0)  # enqueued but possibly not ticked
            if manager._sessions[sid].pending:
                with pytest.raises(ServeError, match="steps pending"):
                    await client.close(sid)
            await future
            await client.close(sid)

    run(body())


def test_stop_fails_pending_futures():
    async def body():
        manager = SessionManager(make_pool(0))
        client = ServeClient(manager)
        sid = await client.create("chat", 2, seed=0)
        # Enqueue without starting the ticker, then stop the service.
        manager._admission_gate("step")
        future = asyncio.get_running_loop().create_future()
        from repro.serve.manager import _StepRequest

        manager._queue.append(_StepRequest(sid, 1, future))
        await manager.stop()
        with pytest.raises(ServeError, match="service stopped"):
            await future

    run(body())


def test_query_of_parked_session_does_not_restore(tmp_path):
    async def body():
        config = ServeConfig(max_live=1)
        store = SessionStore(str(tmp_path))
        async with SessionManager(make_pool(0), store=store,
                                  config=config) as manager:
            client = ServeClient(manager)
            a = await client.create("chat", 2, seed=0)
            await client.create("chat", 2, seed=1)
            assert (await client.query(a))["evicted"] is True
            # Monitoring traffic must not thrash the LRU: still parked.
            assert (await client.query(a))["evicted"] is True
            assert manager.stats()["restores"] == 0

    run(body())


def test_metrics_registry_carries_serve_gauges():
    async def body():
        async with SessionManager(make_pool(0)) as manager:
            client = ServeClient(manager)
            sid = await client.create("chat", 2, seed=0,
                                      params={"script": [[0, "m"]]})
            await client.step(sid, 8)
            from repro.obs.history import metrics_from_snapshot

            snapshot = metrics_from_snapshot(manager.registry.collect())
            assert snapshot["serve_open_sessions"] == 1
            assert snapshot["serve_instants_total"] == 8
            assert any(
                name.startswith("serve_step_latency_s") for name in snapshot
            )

    run(body())
