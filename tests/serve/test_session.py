"""Session core: specs, app drivers, cadence invariance, failures."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.session import APPS, Session, SessionSpec

pytestmark = pytest.mark.serve


def drive(session: Session, chunk: int = 32, limit: int = 200) -> Session:
    for _ in range(limit):
        if session.status != "running":
            break
        session.step(chunk)
    return session


def spec_for(app: str, seed: int = 1) -> SessionSpec:
    if app == "chat":
        return SessionSpec(app, 2, seed,
                           params={"script": [[0, "hi"], [1, "yo"]]})
    if app == "gossip":
        return SessionSpec(app, 5, seed, params={"rumor": "r"})
    return SessionSpec(app, 4, seed)


# -- specs -------------------------------------------------------------

def test_spec_rejects_unknown_app():
    with pytest.raises(ServeError, match="unknown app"):
        SessionSpec("pigeon_post", 2, 0)


def test_spec_rejects_bad_sizes():
    with pytest.raises(ServeError, match="two-robot"):
        SessionSpec("chat", 3, 0)
    with pytest.raises(ServeError, match=">= 2 robots"):
        SessionSpec("gossip", 1, 0)


def test_spec_roundtrip_and_hash():
    spec = spec_for("chat")
    assert SessionSpec.from_json(spec.to_json()) == spec
    assert spec.spec_hash() == SessionSpec.from_json(spec.to_json()).spec_hash()
    assert spec.spec_hash() != spec_for("chat", seed=2).spec_hash()


# -- all four apps complete --------------------------------------------

@pytest.mark.parametrize("app", sorted(APPS))
def test_app_completes(app):
    session = drive(Session(spec_for(app)))
    assert session.status == "done"
    summary = session.summary()
    if app == "chat":
        assert summary["delivered"] == summary["expected"]
    elif app == "gossip":
        assert summary["informed"] == 5
    elif app == "leader_election":
        assert summary["leader"] is not None
        assert len(set(summary["decided_by"])) == 1
    else:
        assert summary["hops"] == summary["total_hops"]


def test_token_ring_multiple_laps():
    session = drive(Session(SessionSpec("token_ring", 4, 3, params={"laps": 2})))
    assert session.status == "done"
    assert session.summary()["hops"] == 8


# -- cadence invariance ------------------------------------------------

@pytest.mark.parametrize("app", sorted(APPS))
def test_step_chunking_does_not_change_trajectory(app):
    coarse = drive(Session(spec_for(app)), chunk=64)
    fine = drive(Session(spec_for(app)), chunk=1, limit=coarse.steps_applied + 8)
    assert fine.steps_applied == coarse.steps_applied
    assert fine.trace_crc() == coarse.trace_crc()


# -- external traffic --------------------------------------------------

def test_external_send_reopens_done_chat():
    session = drive(Session(spec_for("chat")))
    assert session.status == "done"
    session.apply_send(0, 1, b"one more thing")
    assert session.status == "running"
    drive(session)
    assert session.status == "done"
    assert len(session.inputs) == 1


def test_send_validates_flow():
    session = Session(spec_for("chat"))
    with pytest.raises(ServeError, match="invalid flow"):
        session.apply_send(0, 0, b"self-talk")
    with pytest.raises(ServeError, match="invalid flow"):
        session.apply_send(0, 7, b"nobody there")


# -- stalls and failures -----------------------------------------------

def test_session_stalls_at_max_steps():
    spec = SessionSpec("chat", 2, 1, params={"script": [], "max_steps": 5})
    session = Session(spec)
    session.apply_send(0, 1, b"m")  # pending delivery: never done in 5
    session.step(50)
    assert session.status == "stalled"
    assert session.steps_applied == 5


def test_failed_session_cannot_step_or_checkpoint():
    # An externally injected fake token hop arrives out of order.
    session = Session(SessionSpec("token_ring", 4, 1))
    session.apply_send(2, 3, b"TOK 99")
    with pytest.raises(ServeError, match="failed at instant"):
        session.step(400)
    assert session.status == "failed"
    with pytest.raises(ServeError, match="cannot step"):
        session.step(1)
    with pytest.raises(ServeError, match="cannot checkpoint"):
        session.checkpoint()


def test_negative_instants_rejected():
    with pytest.raises(ServeError, match=">= 0"):
        Session(spec_for("chat")).step(-1)
