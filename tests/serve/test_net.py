"""The TCP JSONL front end: same verbs, wire-level error envelopes."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.manager import ServeConfig, SessionManager
from repro.serve.net import request, start_server
from repro.serve.pool import make_pool

pytestmark = pytest.mark.serve


async def _with_server(config=None):
    manager = SessionManager(make_pool(0), config=config)
    server = await start_server(manager, port=0)
    port = server.sockets[0].getsockname()[1]
    return manager, server, port


def test_full_session_over_the_wire():
    async def body():
        manager, server, port = await _with_server()
        try:
            reply = await request(
                {"op": "create", "app": "chat", "size": 2, "seed": 7,
                 "params": {"script": [[0, "hi"], [1, "yo"]]}},
                port=port,
            )
            assert reply["ok"]
            sid = reply["sid"]
            sent = await request(
                {"op": "send", "sid": sid, "src": 0, "dst": 1,
                 "data": b"extra".hex()},
                port=port,
            )
            assert sent["ok"] and sent["status"] == "running"
            doc = {"ok": True, "status": "running"}
            while doc["status"] == "running":
                doc = await request(
                    {"op": "step", "sid": sid, "instants": 32}, port=port
                )
                assert doc["ok"]
            assert doc["status"] == "done"
            stats = await request({"op": "stats"}, port=port)
            assert stats["ok"] and stats["open"] == 1
            closed = await request({"op": "close", "sid": sid}, port=port)
            assert closed["ok"] and closed["status"] == "done"
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_wire_error_envelopes():
    async def body():
        manager, server, port = await _with_server()
        try:
            missing = await request(
                {"op": "step", "sid": "s99999999"}, port=port
            )
            assert missing == {
                "ok": False,
                "error": "UnknownSessionError",
                "code": 404,
                "message": missing["message"],
            }
            bad_op = await request({"op": "frobnicate"}, port=port)
            assert (bad_op["error"], bad_op["code"]) == ("ServeError", 400)
            bad_app = await request(
                {"op": "create", "app": "nope", "size": 2}, port=port
            )
            assert bad_app["code"] == 400
            assert "unknown app" in bad_app["message"]
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_wire_backpressure_is_429():
    async def body():
        config = ServeConfig(max_open=0)
        manager, server, port = await _with_server(config)
        try:
            reply = await request(
                {"op": "create", "app": "chat", "size": 2}, port=port
            )
            assert (reply["error"], reply["code"]) == (
                "SessionRejectedError", 429,
            )
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_malformed_json_gets_400_and_the_connection_survives():
    """Protocol garbage earns an envelope, not a dropped connection."""

    async def body():
        manager, server, port = await _with_server()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"{this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert (reply["ok"], reply["code"]) == (False, 400)
                assert reply["error"] == "JSONDecodeError"
                # same connection, next line: back to normal service
                writer.write(b'{"op": "stats"}\n')
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["ok"] and reply["open"] == 0
                # a non-object JSON line is garbage too
                writer.write(b"[1, 2, 3]\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert (reply["error"], reply["code"]) == ("ServeError", 400)
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_missing_fields_get_400_envelopes():
    async def body():
        manager, server, port = await _with_server()
        try:
            reply = await request({"op": "send", "sid": "s1"}, port=port)
            assert (reply["ok"], reply["code"]) == (False, 400)
            assert reply["error"] == "KeyError"
            reply = await request(
                {"op": "create", "app": "chat", "size": "many"}, port=port
            )
            assert (reply["ok"], reply["code"]) == (False, 400)
            assert reply["error"] == "ValueError"
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_oversized_line_gets_400_and_closes_the_connection():
    """Past the stream limit the framing is lost, so the server must
    answer once and hang up rather than parse garbage."""

    async def body():
        manager, server, port = await _with_server()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b'{"op": "stats", "pad": "' + b"x" * 70_000)
                writer.write(b'"}\n')
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert (reply["ok"], reply["code"]) == (False, 400)
                assert "size limit" in reply["message"]
                assert await reader.read() == b""  # server hung up
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            # the service itself is unharmed
            stats = await request({"op": "stats"}, port=port)
            assert stats["ok"]
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_mid_line_disconnect_leaves_the_server_alive():
    async def body():
        manager, server, port = await _with_server()
        try:
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b'{"op": "stats"')  # no newline, then vanish
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            await asyncio.sleep(0.01)  # let the handler notice EOF
            stats = await request({"op": "stats"}, port=port)
            assert stats["ok"] and stats["open"] == 0
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_http_scrape_endpoints():
    """The same port answers GET /metrics and GET /healthz."""
    from repro.obs.live import validate_exposition
    from repro.serve.net import scrape

    async def body():
        manager, server, port = await _with_server()
        try:
            created = await request(
                {"op": "create", "app": "chat", "size": 2, "seed": 1,
                 "params": {"script": [[0, "hi"], [1, "yo"]]}},
                port=port,
            )
            await request(
                {"op": "step", "sid": created["sid"], "instants": 8},
                port=port,
            )
            status, text = await scrape("/metrics", port=port)
            assert status == 200
            assert validate_exposition(text) > 0
            assert "serve_open_sessions 1" in text
            status, text = await scrape("/healthz", port=port)
            assert status == 200
            health = json.loads(text)
            assert health["status"] == "ok" and health["accepting"]
            status, text = await scrape("/nope", port=port)
            assert status == 404
            # degrade the service: the scrape flips to 503
            manager._accepting = False
            status, text = await scrape("/healthz", port=port)
            assert status == 503
            assert json.loads(text)["status"] == "degraded"
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_observability_ops_over_jsonl():
    """healthz / telemetry / metrics are first-class wire verbs too."""
    from repro.obs.live import validate_exposition

    async def body():
        manager, server, port = await _with_server()
        try:
            health = await request({"op": "healthz"}, port=port)
            assert health["ok"] and health["status"] == "ok"
            frame = await request({"op": "telemetry"}, port=port)
            assert frame["ok"] and "stats" in frame and "health" in frame
            metrics = await request({"op": "metrics"}, port=port)
            assert metrics["ok"]
            assert validate_exposition(metrics["exposition"]) > 0
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())
