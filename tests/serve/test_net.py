"""The TCP JSONL front end: same verbs, wire-level error envelopes."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.manager import ServeConfig, SessionManager
from repro.serve.net import request, start_server
from repro.serve.pool import make_pool

pytestmark = pytest.mark.serve


async def _with_server(config=None):
    manager = SessionManager(make_pool(0), config=config)
    server = await start_server(manager, port=0)
    port = server.sockets[0].getsockname()[1]
    return manager, server, port


def test_full_session_over_the_wire():
    async def body():
        manager, server, port = await _with_server()
        try:
            reply = await request(
                {"op": "create", "app": "chat", "size": 2, "seed": 7,
                 "params": {"script": [[0, "hi"], [1, "yo"]]}},
                port=port,
            )
            assert reply["ok"]
            sid = reply["sid"]
            sent = await request(
                {"op": "send", "sid": sid, "src": 0, "dst": 1,
                 "data": b"extra".hex()},
                port=port,
            )
            assert sent["ok"] and sent["status"] == "running"
            doc = {"ok": True, "status": "running"}
            while doc["status"] == "running":
                doc = await request(
                    {"op": "step", "sid": sid, "instants": 32}, port=port
                )
                assert doc["ok"]
            assert doc["status"] == "done"
            stats = await request({"op": "stats"}, port=port)
            assert stats["ok"] and stats["open"] == 1
            closed = await request({"op": "close", "sid": sid}, port=port)
            assert closed["ok"] and closed["status"] == "done"
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_wire_error_envelopes():
    async def body():
        manager, server, port = await _with_server()
        try:
            missing = await request(
                {"op": "step", "sid": "s99999999"}, port=port
            )
            assert missing == {
                "ok": False,
                "error": "UnknownSessionError",
                "code": 404,
                "message": missing["message"],
            }
            bad_op = await request({"op": "frobnicate"}, port=port)
            assert (bad_op["error"], bad_op["code"]) == ("ServeError", 400)
            bad_app = await request(
                {"op": "create", "app": "nope", "size": 2}, port=port
            )
            assert bad_app["code"] == 400
            assert "unknown app" in bad_app["message"]
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_wire_backpressure_is_429():
    async def body():
        config = ServeConfig(max_open=0)
        manager, server, port = await _with_server(config)
        try:
            reply = await request(
                {"op": "create", "app": "chat", "size": 2}, port=port
            )
            assert (reply["error"], reply["code"]) == (
                "SessionRejectedError", 429,
            )
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())
