"""Worker pools: host command surface, affinity, process round-trips."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError, UnknownSessionError
from repro.serve.host import SessionHost
from repro.serve.pool import InlinePool, ProcessPool, make_pool

from tests.serve.test_session import spec_for

pytestmark = pytest.mark.serve


# -- host --------------------------------------------------------------

def test_host_lifecycle_and_step_batch():
    host = SessionHost()
    host.create("a", spec_for("chat").to_json(), None, False)
    host.create("b", spec_for("chat", seed=2).to_json(), None, False)
    docs = host.step_batch([("a", 16), ("b", 16), ("ghost", 4)])
    assert docs[0]["steps_applied"] == 16
    assert docs[1]["steps_applied"] == 16
    # Per-session error envelope: one bad session can't abort the tick.
    assert docs[2]["error"]["type"] == "UnknownSessionError"
    assert host.close("a")["app"] == "chat"
    with pytest.raises(UnknownSessionError):
        host.query("a")
    host.close("b")


def test_host_rejects_private_ops():
    host = SessionHost()
    with pytest.raises(ServeError, match="unknown host command"):
        host.execute(("_sessions",))
    with pytest.raises(ServeError, match="unknown host command"):
        host.execute(("no_such_verb",))


# -- pools -------------------------------------------------------------

def test_make_pool_picks_inline_for_small_sizes():
    for workers in (None, 0, 1):
        pool = make_pool(workers)
        assert isinstance(pool, InlinePool)
        assert pool.size == 1
        pool.close()
    pool = make_pool(3)
    try:
        assert isinstance(pool, ProcessPool)
        assert pool.size == 3
    finally:
        pool.close()


def test_worker_affinity_is_stable_and_in_range():
    pool = InlinePool()
    try:
        sids = [f"s{i:08d}" for i in range(50)]
        assert all(pool.worker_of(s) == 0 for s in sids)
    finally:
        pool.close()
    pool = ProcessPool(4)
    try:
        workers = {s: pool.worker_of(s) for s in sids}
        assert set(workers.values()) <= {0, 1, 2, 3}
        assert workers == {s: pool.worker_of(s) for s in sids}
        assert len(set(workers.values())) > 1  # really spreads out
    finally:
        pool.close()


def test_process_pool_round_trip_and_error_mapping():
    async def run() -> None:
        pool = ProcessPool(2)
        try:
            await pool.call_for("x", ("create", "x", spec_for("chat").to_json(),
                                      None, False))
            doc = await pool.call_for("x", ("step", "x", 16))
            assert doc["steps_applied"] == 16
            # Exceptions cross the pipe as their repro.errors types.
            with pytest.raises(UnknownSessionError):
                await pool.call_for("ghost", ("query", "ghost"))
            summary = await pool.call_for("x", ("close", "x"))
            assert summary["app"] == "chat"
        finally:
            pool.close()

    asyncio.run(run())


def test_inline_pool_runs_without_subprocesses():
    async def run() -> None:
        pool = InlinePool()
        try:
            await pool.call(0, ("create", "s", spec_for("gossip").to_json(),
                                None, False))
            assert pool.host.query("s")["app"] == "gossip"
            await pool.call(0, ("close", "s"))
        finally:
            pool.close()

    asyncio.run(run())
