"""Session persistence: checkpoints as campaign cell records."""

from __future__ import annotations

import pytest

from repro.errors import ServeError, UnknownSessionError
from repro.serve.session import Session
from repro.serve.store import SessionStore

from tests.serve.test_session import spec_for

pytestmark = pytest.mark.serve


def checkpoint_for(app: str = "chat", steps: int = 16):
    session = Session(spec_for(app))
    session.step(steps)
    return session.checkpoint()


def test_save_load_round_trip(tmp_path):
    store = SessionStore(str(tmp_path))
    doc = checkpoint_for()
    store.save("s1", doc)
    assert store.has("s1")
    assert store.load("s1") == doc
    assert Session.restore(store.load("s1")).steps_applied == 16


def test_load_unknown_session_raises(tmp_path):
    store = SessionStore(str(tmp_path))
    with pytest.raises(UnknownSessionError, match="no checkpoint"):
        store.load("ghost")


def test_save_rejects_non_checkpoint_payload(tmp_path):
    store = SessionStore(str(tmp_path))
    with pytest.raises(ServeError, match="not a session checkpoint"):
        store.save("s1", {"schema": "something-else"})


def test_discard_and_index_listing(tmp_path):
    store = SessionStore(str(tmp_path))
    store.save("s2", checkpoint_for("gossip"))
    store.save("s1", checkpoint_for("chat"))
    assert store.session_ids() == ["s1", "s2"]
    assert store.checkpoint_bytes("s1") > 0
    store.discard("s1")
    store.discard("s1")  # idempotent
    assert store.session_ids() == ["s2"]
    assert store.checkpoint_bytes("s1") is None


def test_checkpoints_journal_evictions_and_restores(tmp_path):
    store = SessionStore(str(tmp_path))
    store.save("s1", checkpoint_for())
    store.load("s1")
    kinds = [entry["event"] for entry in store.store.read_journal()]
    assert "session_checkpoint" in kinds
    assert "session_restore" in kinds
