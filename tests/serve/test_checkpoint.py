"""Checkpoint → evict → restore byte-identity, across all four apps.

The serving layer's core promise: parking a session on disk and
replaying it later puts the swarm in *exactly* the state it left —
same trace, same received bits (one CRC covers both) — even with
external traffic interleaved before and after the checkpoint, and the
restored session's future is byte-identical to an uninterrupted twin's.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.serve.manager import ServeConfig, SessionManager
from repro.serve.pool import make_pool
from repro.serve.session import APPS, Session, SessionSpec
from repro.serve.store import SessionStore

from tests.serve.test_session import drive, spec_for

pytestmark = pytest.mark.serve


@pytest.mark.parametrize("app", sorted(APPS))
def test_restore_matches_uninterrupted_control(app):
    """Mid-flight checkpoint + restore == never having checkpointed."""
    control = Session(spec_for(app))
    probed = Session(spec_for(app))
    for session in (control, probed):
        session.step(20)
        session.apply_send(0, 1, b"external poke")
        session.step(7)

    # Park and replay the probed twin; the control keeps its objects.
    checkpoint = probed.checkpoint()
    doc = json.loads(json.dumps(checkpoint))  # full serialization trip
    restored = Session.restore(doc)
    assert restored.trace_crc() == control.trace_crc()
    assert restored.steps_applied == control.steps_applied

    # The futures stay identical too: more traffic, more steps.
    for session in (control, restored):
        session.apply_send(1, 0, b"after restore")
        drive(session)
    assert restored.status == control.status
    assert restored.trace_crc() == control.trace_crc()
    assert restored.summary() == control.summary()


def test_restore_rejects_tampered_checkpoint():
    session = Session(spec_for("chat"))
    session.step(16)
    doc = session.checkpoint()
    doc["trace_crc"] = "deadbeef"
    with pytest.raises(ServeError, match="diverged from checkpoint"):
        Session.restore(doc)


def test_restore_rejects_wrong_schema_and_version():
    doc = Session(spec_for("chat")).checkpoint()
    with pytest.raises(ServeError, match="unsupported checkpoint version"):
        Session.restore({**doc, "version": 99})
    with pytest.raises(ServeError, match="not a session checkpoint"):
        Session.restore({**doc, "schema": "pickle"})


@pytest.mark.parametrize("app", sorted(APPS))
def test_evict_restore_through_service(app, tmp_path):
    """The full service path: LRU eviction to disk, restore on touch."""

    async def run() -> None:
        config = ServeConfig(max_live=1)
        store = SessionStore(str(tmp_path / "store"))
        async with SessionManager(make_pool(0), store=store,
                                  config=config) as manager:
            spec = spec_for(app)
            victim = await manager.create(spec)
            await manager.step(victim, 12)
            # A second session forces the victim out (max_live=1).
            other = await manager.create(spec_for("chat", seed=9))
            assert store.has(victim)
            assert (await manager.query(victim))["evicted"] is True
            assert (await manager.query(victim))["steps_applied"] == 12

            # Touching the victim restores it — Session.restore replays
            # the checkpoint and verifies the trace CRC; a silent
            # determinism break would raise here, not pass.
            doc = await manager.step(victim, 40)
            assert doc["status"] in ("running", "done")
            assert doc["steps_applied"] >= 12
            assert manager.stats()["restores"] == 1
            assert manager.stats()["evictions"] >= 1
            await manager.close(victim)
            await manager.close(other)

    asyncio.run(run())


def test_checkpoint_document_is_small_and_json_safe():
    session = Session(spec_for("leader_election"))
    session.step(64)
    session.apply_send(0, 1, b"\x00\xff binary ok")
    blob = json.dumps(session.checkpoint())
    assert len(blob) < 4_096  # event-sourced: spec + inputs, not state
    assert json.loads(blob)["steps_applied"] == 64
