"""Request-scoped tracing through the serving tier.

The acceptance bar from the observability plane:

* a request through :class:`ServeClient` (and through the TCP front
  end) yields a trace whose spans cover >= 95% of the latency the
  client itself observed;
* the spans telescope (queue-wait + restore + execute + dispatch ==
  the trace's end-to-end seconds);
* a parked session stepped after eviction carries a ``restore`` span;
* errors land in the trace ring and burn the availability budget;
* ``serve_*`` metrics carry ``app`` (and op) labels;
* and with no tracer wired in, the serving path performs **zero**
  tracer dispatches — the obs layer's disabled-path contract extended
  to the serve tier.
"""

from __future__ import annotations

import asyncio
import time

import pytest

import repro.obs.live as live
from repro.obs.live import RequestTracer
from repro.serve.client import ServeClient
from repro.serve.manager import ServeConfig, SessionManager
from repro.serve.net import request, start_server
from repro.serve.pool import make_pool
from repro.serve.store import SessionStore

pytestmark = pytest.mark.serve

_CHAT = {"script": [[0, "ping"], [1, "pong"]]}


def test_spans_cover_client_observed_latency():
    """>= 95% of what the in-process client measures is attributed."""

    async def body():
        tracer = RequestTracer()
        async with SessionManager(make_pool(0), tracer=tracer) as manager:
            client = ServeClient(manager)
            sid = await client.create("chat", 2, seed=3, params=dict(_CHAT))
            observed = attributed = 0.0
            for _ in range(3):
                started = time.perf_counter()
                doc = await client.step(sid, 200)
                observed += time.perf_counter() - started
                trace = tracer.ring.find(doc["trace"])
                assert trace is not None
                attributed += sum(s.seconds for s in trace.spans)
                # the spans telescope to the trace's own end-to-end
                assert trace.coverage() == pytest.approx(1.0, abs=1e-6)
                names = {s.name for s in trace.spans}
                assert "queue-wait" in names and "execute" in names
            await client.close(sid)
        assert attributed / observed >= 0.95, (
            f"spans cover only {attributed / observed:.1%} of "
            f"client-observed latency"
        )

    asyncio.run(body())


def test_tcp_request_yields_covering_trace():
    """Same bar over the wire: trace id propagates, spans cover."""

    async def body():
        tracer = RequestTracer()
        manager = SessionManager(make_pool(0), tracer=tracer)
        server = await start_server(manager, port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            # a long conversation, so the traced execution dwarfs the
            # untraced socket + JSON overhead the server cannot see
            script = [[i % 2, f"msg-{i}"] for i in range(40)]
            created = await request(
                {"op": "create", "app": "chat", "size": 2, "seed": 5,
                 "params": {"script": script}, "trace": "wire-create"},
                port=port,
            )
            assert created["ok"]
            sid = created["sid"]
            started = time.perf_counter()
            doc = await request(
                {"op": "step", "sid": sid, "instants": 1000,
                 "trace": "wire-step"},
                port=port,
            )
            observed = time.perf_counter() - started
            assert doc["ok"] and doc["trace"] == "wire-step"
            trace = tracer.ring.find("wire-step")
            assert trace is not None and trace.sid == sid
            attributed = sum(s.seconds for s in trace.spans)
            assert attributed / observed >= 0.95
            # the create was traced under the caller's id too
            assert tracer.ring.find("wire-create") is not None
        finally:
            server.close()
            await server.wait_closed()
            await manager.stop()

    asyncio.run(body())


def test_restore_span_on_parked_session(tmp_path):
    """Stepping an evicted session attributes its restore replay."""

    async def body():
        tracer = RequestTracer()
        config = ServeConfig(max_live=1)
        async with SessionManager(
            make_pool(0), store=SessionStore(str(tmp_path)), config=config,
            tracer=tracer,
        ) as manager:
            client = ServeClient(manager)
            first = await client.create("chat", 2, seed=1, params=dict(_CHAT))
            await client.step(first, 8)
            second = await client.create("chat", 2, seed=2, params=dict(_CHAT))
            await client.step(second, 8)  # evicts `first`
            assert manager.stats()["evicted"] == 1
            doc = await client.step(first, 8)  # forces the restore
            trace = tracer.ring.find(doc["trace"])
            assert trace is not None
            spans = trace.span_seconds()
            assert "restore" in spans and spans["restore"] > 0.0
            assert trace.coverage() == pytest.approx(1.0, abs=1e-6)

    asyncio.run(body())


def test_errors_burn_the_availability_budget():
    async def body():
        tracer = RequestTracer()
        async with SessionManager(make_pool(0), tracer=tracer) as manager:
            client = ServeClient(manager)
            with pytest.raises(Exception):
                await client.step("s-nope", 1, trace="doomed")
            trace = tracer.ring.find("doomed")
            assert trace is not None
            assert trace.error == "UnknownSessionError"
        assert tracer.slo.attainment("availability") < 1.0
        snapshot = {
            (name, labels): inst.snapshot()
            for name, labels, inst in tracer.registry.series()
        }
        key = ("serve_requests_total",
               (("app", "?"), ("op", "step"), ("outcome", "error")))
        assert snapshot[key]["value"] == 1

    asyncio.run(body())


def test_metrics_carry_op_and_app_labels():
    async def body():
        tracer = RequestTracer()
        async with SessionManager(make_pool(0), tracer=tracer) as manager:
            client = ServeClient(manager)
            chat = await client.create("chat", 2, seed=1, params=dict(_CHAT))
            gossip = await client.create("gossip", 5, seed=1,
                                         params={"rumor": "r"})
            await client.step(chat, 8)
            await client.step(gossip, 8)
            series = {
                (name, labels) for name, labels, _ in manager.registry.series()
            }
            for app in ("chat", "gossip"):
                assert ("serve_step_latency_s", (("app", app),)) in series
                assert ("serve_instants_total", (("app", app),)) in series
                assert ("serve_open_sessions", (("app", app),)) in series
                assert (
                    "serve_requests_total",
                    (("app", app), ("op", "create"), ("outcome", "ok")),
                ) in series
            await client.close(chat)
            # the chat gauge is zeroed, not dropped — no stale series
            chat_open = manager.registry.gauge("serve_open_sessions",
                                               app="chat")
            assert chat_open.value == 0
            gossip_open = manager.registry.gauge("serve_open_sessions",
                                                 app="gossip")
            assert gossip_open.value == 1

    asyncio.run(body())


def test_trace_joins_the_causal_dag_by_session_id(tmp_path):
    """The trace's sid is the recorder's session key — the DAG join."""

    async def body():
        from repro.obs.export import load_run

        tracer = RequestTracer()
        async with SessionManager(make_pool(0), tracer=tracer) as manager:
            client = ServeClient(manager)
            sid = await client.create("chat", 2, seed=7, params=dict(_CHAT),
                                      record=True)
            doc = await client.step(sid, 16)
            path = await client.export_obs(sid, str(tmp_path / "run.jsonl"))
            trace = tracer.ring.find(doc["trace"])
            assert trace is not None and trace.sid == sid
            run = load_run(path)
            assert run.meta["session"] == trace.sid

    asyncio.run(body())


def test_serving_without_tracer_is_zero_dispatch(tmp_path):
    """The disabled path performs no tracer dispatches at all."""

    async def body():
        config = ServeConfig(max_live=1)
        async with SessionManager(
            make_pool(0), store=SessionStore(str(tmp_path)), config=config
        ) as manager:
            assert manager.tracer is None
            client = ServeClient(manager)
            a = await client.create("chat", 2, seed=1, params=dict(_CHAT))
            await client.step(a, 8)
            b = await client.create("chat", 2, seed=2, params=dict(_CHAT))
            await client.step(b, 8)
            doc = await client.step(a, 8)  # eviction + restore exercised
            assert "trace" not in doc  # results carry no decoration
            await client.query(a)
            await client.close(a)
            await client.close(b)

    before = live.dispatch_count()
    asyncio.run(body())
    assert live.dispatch_count() == before

    asyncio.run(_undisturbed_flow_check(before))


async def _undisturbed_flow_check(before: int) -> None:
    """A full clean flow, still zero dispatches, results undecorated."""
    async with SessionManager(make_pool(0)) as manager:
        client = ServeClient(manager)
        sid = await client.create("chat", 2, seed=9, params=dict(_CHAT))
        doc = await client.step(sid, 8)
        assert "trace" not in doc
        health = manager.health()
        assert health["status"] == "ok" and health["slos"] == []
        frame = manager.telemetry()
        assert "requests" not in frame  # no tracer, no windows
        await client.close(sid)
    assert live.dispatch_count() == before


def test_step_reply_echoes_caller_trace_id():
    async def body():
        tracer = RequestTracer()
        async with SessionManager(make_pool(0), tracer=tracer) as manager:
            client = ServeClient(manager)
            sid = await client.create("chat", 2, seed=1, params=dict(_CHAT))
            doc = await client.step(sid, 4, trace="mine-1")
            assert doc["trace"] == "mine-1"
            # service-minted ids for callers who didn't bring one
            doc = await client.step(sid, 4)
            assert doc["trace"].startswith("r")

    asyncio.run(body())


def test_health_reports_backpressure_and_slo_violations():
    """``/healthz`` names its reasons: admission state and SLO burn."""

    async def body():
        tracer = RequestTracer()
        async with SessionManager(make_pool(0), tracer=tracer) as manager:
            assert manager.health()["status"] == "ok"
            manager._accepting = False  # what the admission gate flips
            health = manager.health()
            assert health["status"] == "degraded"
            assert any("backpressure" in r for r in health["reasons"])
            manager._accepting = True
            for _ in range(8):  # burn the availability budget
                tracer.slo.observe("step", 0.01, error=True)
            health = manager.health()
            assert health["status"] == "degraded"
            assert any(r.startswith("slo violated") for r in health["reasons"])

    asyncio.run(body())


def test_checkpoint_documents_stay_undecorated(tmp_path):
    """Tracing must not perturb the byte-identity checkpoint artifact."""

    async def body():
        tracer = RequestTracer()
        async with SessionManager(
            make_pool(0), store=SessionStore(str(tmp_path)), tracer=tracer
        ) as traced:
            client = ServeClient(traced)
            sid = await client.create("chat", 2, seed=11, params=dict(_CHAT))
            await client.step(sid, 8)
            ckpt_traced = await client.checkpoint(sid)
        async with SessionManager(
            make_pool(0), store=SessionStore(str(tmp_path / "b"))
        ) as plain:
            client = ServeClient(plain)
            sid = await client.create("chat", 2, seed=11, params=dict(_CHAT))
            await client.step(sid, 8)
            ckpt_plain = await client.checkpoint(sid)
        assert "trace" not in ckpt_traced
        assert ckpt_traced == ckpt_plain

    asyncio.run(body())
