"""The load generator and the serve CLI entry points."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.bench import churn_phase, main as bench_main, throughput_phase

pytestmark = pytest.mark.serve


def test_throughput_phase_shape():
    row = asyncio.run(throughput_phase(sessions=25, seed=3))
    assert row["completed"] == 25
    assert row["peak_concurrent"] == 25  # the cohort stays open
    assert row["sessions_per_sec"] > 0
    assert row["steps_per_sec"] > 0
    assert 0.0 < row["step_p50_ms"] <= row["step_p99_ms"]
    assert row["rejections"] == 0


def test_throughput_is_seeded():
    a = asyncio.run(throughput_phase(sessions=10, seed=5))
    b = asyncio.run(throughput_phase(sessions=10, seed=5))
    # Wall-clock numbers differ run to run; the workload must not.
    assert a["instants_total"] == b["instants_total"]


def test_churn_phase_forces_evictions(tmp_path):
    row = asyncio.run(
        churn_phase(sessions=10, max_live=3, seed=1,
                    store_root=str(tmp_path))
    )
    assert row["evictions"] > 0
    assert row["restores"] > 0
    assert row["crc_verified_restores"] == row["restores"]
    assert row["checkpoint_bytes"] > 0


def test_bench_main_writes_history(tmp_path, capsys):
    history = tmp_path / "BENCH_history.jsonl"
    assert bench_main(["--sessions", "12", "--seed", "2",
                       "--history", str(history)]) == 0
    out = capsys.readouterr().out
    assert "serve throughput: 12 sessions" in out
    assert "CRC-verified restores" in out
    entries = [json.loads(line) for line in history.read_text().splitlines()]
    assert len(entries) == 1
    metrics = entries[0]["metrics"]
    for name in (
        "sessions_per_sec{probe=serve}",
        "steps_per_sec{probe=serve}",
        "step_p99_ms{probe=serve}",
        "peak_concurrent{probe=serve}",
        "crc_verified_restores{probe=serve}",
    ):
        assert name in metrics, sorted(metrics)[:20]


def test_serve_cli_smoke(tmp_path, capsys):
    from repro.serve.__main__ import main as serve_main

    obs_path = tmp_path / "trace.jsonl"
    code = serve_main([
        "smoke", "--sessions", "8", "--max-live", "2",
        "--store", str(tmp_path / "store"), "--obs", str(obs_path),
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "8 sessions done" in out and "OK" in out
    assert obs_path.exists() and obs_path.stat().st_size > 0


def test_serve_cli_bench_quick_flagging(capsys):
    from repro.serve.__main__ import main as serve_main

    code = serve_main(["bench", "--sessions", "10", "--seed", "4"])
    assert code == 0
    assert "serve churn" in capsys.readouterr().out
