"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

import pytest

from repro.apps.harness import SwarmHarness, ring_positions
from repro.geometry.vec import Vec2
from repro.model.protocol import Protocol
from repro.model.scheduler import Scheduler


def random_positions(
    count: int,
    seed: int = 0,
    spread: float = 20.0,
    min_separation: float = 1.0,
) -> List[Vec2]:
    """Well-separated random positions (rejection sampling)."""
    rng = random.Random(seed)
    points: List[Vec2] = []
    attempts = 0
    while len(points) < count:
        attempts += 1
        if attempts > 100_000:
            raise RuntimeError("could not place points; lower min_separation")
        candidate = Vec2(rng.uniform(-spread, spread), rng.uniform(-spread, spread))
        if all(candidate.distance_to(p) >= min_separation for p in points):
            points.append(candidate)
    return points


def make_harness(
    count: int,
    factory: Callable[[], Protocol],
    scheduler: Optional[Scheduler] = None,
    identified: bool = True,
    frame_regime: str = "sense_of_direction",
    sigma: float = 5.0,
    radius: float = 10.0,
    frame_seed: int = 0,
) -> SwarmHarness:
    """A ring-layout harness with roomy sigma (test default)."""
    return SwarmHarness(
        ring_positions(count, radius=radius, jitter=0.07),
        protocol_factory=factory,
        scheduler=scheduler,
        identified=identified,
        frame_regime=frame_regime,  # type: ignore[arg-type]
        sigma=sigma,
        frame_seed=frame_seed,
    )


def angles_approximately(a: float, b: float, tol: float = 1e-9) -> bool:
    """Angle equality modulo 2*pi."""
    diff = (a - b) % (2.0 * math.pi)
    return diff <= tol or (2.0 * math.pi - diff) <= tol


@pytest.fixture
def twelve_ring() -> List[Vec2]:
    """The Figure 2 style layout: 12 robots on a slightly irregular ring."""
    return ring_positions(12, radius=10.0, jitter=0.06)


def deliver_all(
    harness: SwarmHarness,
    expectations: Sequence[tuple],
    max_steps: int = 60_000,
) -> bool:
    """Pump until every (receiver, count) expectation is met."""

    def done(h: SwarmHarness) -> bool:
        return all(len(h.channel(r).inbox) >= c for r, c in expectations)

    return harness.pump(done, max_steps=max_steps)
