"""Tests for the smallest enclosing circle (the Section 3.4 backbone)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
points = st.builds(Vec2, coords, coords)
point_sets = st.lists(points, min_size=1, max_size=40)


class TestBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            smallest_enclosing_circle([])

    def test_single_point(self):
        c = smallest_enclosing_circle([Vec2(3, 4)])
        assert c.center == Vec2(3, 4)
        assert c.radius == 0.0

    def test_two_points_diameter(self):
        c = smallest_enclosing_circle([Vec2(0, 0), Vec2(4, 0)])
        assert c.center == Vec2(2, 0)
        assert c.radius == pytest.approx(2.0)

    def test_duplicates_collapse(self):
        c = smallest_enclosing_circle([Vec2(1, 1)] * 5 + [Vec2(3, 1)] * 5)
        assert c.radius == pytest.approx(1.0)

    def test_equilateral_triangle(self):
        pts = [Vec2.from_polar(1.0, 2.0 * math.pi * k / 3.0) for k in range(3)]
        c = smallest_enclosing_circle(pts)
        assert c.radius == pytest.approx(1.0)
        assert c.center.norm() == pytest.approx(0.0, abs=1e-9)

    def test_obtuse_triangle_uses_two_points(self):
        # For an obtuse triangle the SEC is the longest side's circle.
        pts = [Vec2(0, 0), Vec2(10, 0), Vec2(5, 0.1)]
        c = smallest_enclosing_circle(pts)
        assert c.radius == pytest.approx(5.0, rel=1e-3)

    def test_interior_points_are_free(self):
        square = [Vec2(0, 0), Vec2(2, 0), Vec2(2, 2), Vec2(0, 2)]
        with_interior = square + [Vec2(1, 1), Vec2(0.5, 1.5)]
        a = smallest_enclosing_circle(square)
        b = smallest_enclosing_circle(with_interior)
        assert a.radius == pytest.approx(b.radius)
        assert a.center.distance_to(b.center) == pytest.approx(0.0, abs=1e-9)


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(point_sets)
    def test_encloses_all(self, pts):
        c = smallest_enclosing_circle(pts)
        for p in pts:
            assert c.contains(p, eps=1e-6 * max(1.0, c.radius))

    @settings(max_examples=100, deadline=None)
    @given(point_sets)
    def test_minimality_vs_brute_force_pairs_and_triples(self, pts):
        """The SEC radius is at most any 2/3-point candidate enclosing all."""
        from itertools import combinations

        from repro.geometry.circle import circle_from_three, circle_from_two

        c = smallest_enclosing_circle(pts)
        unique = list(dict.fromkeys(pts))
        eps = 1e-6 * max(1.0, c.radius)
        candidates = []
        for a, b in combinations(unique, 2):
            candidates.append(circle_from_two(a, b))
        for a, b, c3 in combinations(unique, 3):
            circ = circle_from_three(a, b, c3)
            if circ is not None:
                candidates.append(circ)
        enclosing = [
            cand
            for cand in candidates
            if all(cand.contains(p, eps=1e-6 * max(1.0, cand.radius)) for p in unique)
        ]
        if enclosing:
            best = min(cand.radius for cand in enclosing)
            assert c.radius <= best + eps

    @settings(max_examples=100, deadline=None)
    @given(point_sets, st.integers(min_value=0, max_value=2**16))
    def test_seed_independence(self, pts, seed):
        """The SEC radius is unique: any processing order agrees on it.

        The *center* is ill-conditioned for near-degenerate inputs —
        two support sets can tie within eps yet put the center
        O(sqrt(eps)) apart — so seeds must agree on the radius and on
        enclosing every point, not on the exact center coordinates.
        """
        a = smallest_enclosing_circle(pts, seed=0)
        b = smallest_enclosing_circle(pts, seed=seed)
        scale = max(1.0, a.radius)
        assert a.radius == pytest.approx(b.radius, abs=1e-6 * scale)
        for p in pts:
            assert a.contains(p, eps=1e-6 * scale)
            assert b.contains(p, eps=1e-6 * scale)

    @settings(max_examples=100, deadline=None)
    @given(point_sets)
    def test_determined_by_boundary_points(self, pts):
        """At least 2 points lie on the SEC boundary (unless trivial)."""
        unique = list(dict.fromkeys(pts))
        if len(unique) < 2:
            return
        c = smallest_enclosing_circle(pts)
        eps = 1e-5 * max(1.0, c.radius)
        on_boundary = sum(1 for p in unique if c.on_boundary(p, eps=eps))
        assert on_boundary >= 2
