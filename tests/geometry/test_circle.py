"""Tests for circles and circumcircles."""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry.circle import Circle, circle_from_three, circle_from_two
from repro.geometry.vec import Vec2

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
points = st.builds(Vec2, coords, coords)


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(Vec2.zero(), -1.0)

    def test_containment(self):
        c = Circle(Vec2(0, 0), 2.0)
        assert c.contains(Vec2(1, 1))
        assert c.contains(Vec2(2, 0))  # boundary
        assert not c.contains(Vec2(2.1, 0))

    def test_strict_and_boundary(self):
        c = Circle(Vec2(0, 0), 2.0)
        assert c.strictly_contains(Vec2(0.5, 0))
        assert not c.strictly_contains(Vec2(2, 0))
        assert c.on_boundary(Vec2(0, 2))
        assert not c.on_boundary(Vec2(0, 1))

    def test_scaled(self):
        c = Circle(Vec2(1, 1), 2.0).scaled(0.5)
        assert c.radius == 1.0
        assert c.center == Vec2(1, 1)


class TestCircleFromTwo:
    @given(points, points)
    def test_both_points_on_boundary(self, a, b):
        assume(a.distance_to(b) > 1e-6)
        c = circle_from_two(a, b)
        assert c.on_boundary(a, eps=1e-6)
        assert c.on_boundary(b, eps=1e-6)
        assert c.radius == pytest.approx(a.distance_to(b) / 2.0, rel=1e-9)


class TestCircleFromThree:
    def test_right_triangle(self):
        c = circle_from_three(Vec2(0, 0), Vec2(2, 0), Vec2(0, 2))
        assert c is not None
        assert c.center == Vec2(1, 1)

    def test_collinear_returns_none(self):
        assert circle_from_three(Vec2(0, 0), Vec2(1, 0), Vec2(2, 0)) is None

    @given(points, points, points)
    def test_all_on_boundary(self, a, b, c):
        # Require a non-degenerate triangle with decent area.
        area2 = abs((b - a).cross(c - a))
        assume(area2 > 1.0)
        circ = circle_from_three(a, b, c)
        assert circ is not None
        for p in (a, b, c):
            assert circ.on_boundary(p, eps=1e-5 * max(1.0, circ.radius))
