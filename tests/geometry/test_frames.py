"""Tests for local coordinate frames."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.frames import Frame, make_frames
from repro.geometry.vec import Vec2

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
points = st.builds(Vec2, coords, coords)
frames = st.builds(
    Frame,
    rotation=st.floats(min_value=-10.0, max_value=10.0),
    scale=st.floats(min_value=0.01, max_value=100.0),
    handedness=st.sampled_from([1, -1]),
)


class TestValidation:
    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            Frame(scale=0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            Frame(scale=-1.0)

    def test_bad_handedness_rejected(self):
        with pytest.raises(ValueError):
            Frame(handedness=0)


class TestTransforms:
    def test_identity_frame_is_identity(self):
        f = Frame()
        p = Vec2(3.0, -2.0)
        origin = Vec2(1.0, 1.0)
        assert f.to_local(p, origin) == p - origin
        assert f.to_world(p, origin) == p + origin

    @given(frames, points, points)
    def test_roundtrip(self, frame, point, origin):
        local = frame.to_local(point, origin)
        back = frame.to_world(local, origin)
        assert back.x == pytest.approx(point.x, rel=1e-6, abs=1e-6)
        assert back.y == pytest.approx(point.y, rel=1e-6, abs=1e-6)

    @given(frames, points, points, points)
    def test_distances_scale_uniformly(self, frame, a, b, origin):
        la = frame.to_local(a, origin)
        lb = frame.to_local(b, origin)
        assert la.distance_to(lb) * frame.scale == pytest.approx(
            a.distance_to(b), rel=1e-6, abs=1e-6
        )

    def test_rotation_quarter_turn(self):
        f = Frame(rotation=math.pi / 2.0)
        # World +y is the local +x axis.
        local = f.to_local(Vec2(0.0, 1.0), Vec2.zero())
        assert local.x == pytest.approx(1.0)
        assert local.y == pytest.approx(0.0, abs=1e-12)

    def test_left_handed_flips_y(self):
        f = Frame(handedness=-1)
        local = f.to_local(Vec2(0.0, 1.0), Vec2.zero())
        assert local.y == pytest.approx(-1.0)

    @given(frames, points)
    def test_direction_roundtrip(self, frame, v):
        there = frame.direction_to_local(v)
        back = frame.direction_to_world(there)
        assert back.x == pytest.approx(v.x, rel=1e-6, abs=1e-6)
        assert back.y == pytest.approx(v.y, rel=1e-6, abs=1e-6)

    @given(frames, points)
    def test_direction_preserves_length(self, v_frame, v):
        assert v_frame.direction_to_local(v).norm() == pytest.approx(
            v.norm(), rel=1e-9, abs=1e-9
        )


class TestChirality:
    @given(frames, points, points)
    def test_cross_sign_flips_with_handedness(self, frame, u, v):
        """Same-handedness frames preserve orientation; opposite flip it."""
        cross_world = u.cross(v)
        lu = frame.direction_to_local(u)
        lv = frame.direction_to_local(v)
        cross_local = lu.cross(lv)
        if abs(cross_world) > 1e-6:
            assert math.copysign(1.0, cross_local) == frame.handedness * math.copysign(
                1.0, cross_world
            )


class TestMakeFrames:
    def test_identical_regime(self):
        fs = make_frames(5, "identical")
        assert all(f == Frame() for f in fs)

    def test_sense_of_direction_shares_axes(self):
        fs = make_frames(8, "sense_of_direction", seed=3)
        assert all(f.rotation == 0.0 and f.handedness == 1 for f in fs)
        scales = {f.scale for f in fs}
        assert len(scales) > 1  # private unit measures

    def test_chirality_shares_handedness_only(self):
        fs = make_frames(8, "chirality", seed=3)
        assert all(f.handedness == 1 for f in fs)
        assert len({round(f.rotation, 6) for f in fs}) > 1

    def test_adversarial_mixes_handedness(self):
        fs = make_frames(32, "adversarial", seed=3)
        assert {f.handedness for f in fs} == {1, -1}

    def test_determinism(self):
        assert make_frames(6, "chirality", seed=9) == make_frames(6, "chirality", seed=9)

    def test_capability_queries(self):
        a, b = make_frames(2, "sense_of_direction", seed=1)
        assert a.shares_handedness_with(b)
        assert a.shares_y_direction_with(b)
        c = Frame(rotation=1.0)
        assert not c.shares_y_direction_with(a)

    def test_bad_regime_count(self):
        with pytest.raises(ValueError):
            make_frames(-1, "identical")

    def test_bad_scale_range(self):
        with pytest.raises(ValueError):
            make_frames(2, "identical", scale_range=(0.0, 1.0))
