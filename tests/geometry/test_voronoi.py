"""Tests for Voronoi cells, cross-checked against scipy and Definition 3.1."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.vec import Vec2
from repro.geometry.voronoi import (
    nearest_neighbor_distance,
    voronoi_cell,
    voronoi_diagram,
)


def grid_sites() -> list:
    return [Vec2(float(x), float(y)) for x in range(3) for y in range(3)]


def random_sites(count: int, seed: int, spread: float = 10.0) -> list:
    rng = random.Random(seed)
    sites = []
    while len(sites) < count:
        p = Vec2(rng.uniform(-spread, spread), rng.uniform(-spread, spread))
        if all(p.distance_to(q) > 0.5 for q in sites):
            sites.append(p)
    return sites


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            voronoi_diagram([])

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ValueError):
            voronoi_diagram([Vec2(0, 0), Vec2(0, 0)])

    def test_site_must_belong(self):
        with pytest.raises(ValueError):
            voronoi_cell(Vec2(9, 9), [Vec2(0, 0), Vec2(1, 1)])

    def test_near_duplicate_rejected(self):
        with pytest.raises(ValueError):
            voronoi_cell(Vec2(0, 0), [Vec2(0, 0), Vec2(1e-12, 0)])

    def test_nearest_neighbor_needs_others(self):
        with pytest.raises(ValueError):
            nearest_neighbor_distance(Vec2(0, 0), [])


class TestDefinition:
    """Definition 3.1: q is in the cell of p_i iff closer to p_i."""

    def test_two_sites_split_plane(self):
        sites = [Vec2(0, 0), Vec2(10, 0)]
        cell = voronoi_cell(sites[0], sites)
        assert cell.contains(Vec2(4.9, 3.0))
        assert not cell.contains(Vec2(5.1, 3.0))

    def test_definition_on_random_probes(self):
        sites = random_sites(8, seed=42)
        diagram = voronoi_diagram(sites)
        rng = random.Random(7)
        for _ in range(300):
            q = Vec2(rng.uniform(-9, 9), rng.uniform(-9, 9))
            distances = [(q.distance_to(s), i) for i, s in enumerate(sites)]
            distances.sort()
            best_d, best_i = distances[0]
            second_d = distances[1][0]
            if second_d - best_d < 1e-6:
                continue  # near a boundary: ownership undefined
            for i, site in enumerate(sites):
                inside = diagram[site].contains(q)
                assert inside == (i == best_i), (
                    f"probe {q} should belong to site {best_i} only"
                )

    def test_site_inside_own_cell(self):
        sites = random_sites(10, seed=3)
        diagram = voronoi_diagram(sites)
        for site, cell in diagram.items():
            assert cell.contains(site)

    def test_grid_center_cell_is_unit_square(self):
        diagram = voronoi_diagram(grid_sites())
        center_cell = diagram[Vec2(1.0, 1.0)]
        assert center_cell.polygon.area() == pytest.approx(1.0)

    def test_inradius_is_half_nearest_neighbor(self):
        sites = random_sites(9, seed=11)
        diagram = voronoi_diagram(sites)
        for site, cell in diagram.items():
            others = [s for s in sites if s != site]
            expected = nearest_neighbor_distance(site, others) / 2.0
            assert cell.inradius == pytest.approx(expected)
            # The clipped polygon respects the inradius too.
            assert cell.polygon.distance_to_boundary(site) >= expected - 1e-9

    def test_single_site_cell_is_bounding_box(self):
        cell = voronoi_cell(Vec2(0, 0), [Vec2(0, 0)])
        assert cell.contains(Vec2(0.5, 0.5))
        assert cell.inradius > 0.0


class TestScipyCrossCheck:
    def test_cell_areas_match_scipy(self):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        import numpy as np

        sites = random_sites(12, seed=5)
        diagram = voronoi_diagram(sites)

        # Bound the scipy diagram with a far box of mirror sites so all
        # inner cells are finite, then compare areas.
        pts = np.array([(s.x, s.y) for s in sites])
        mirror = []
        for far in ((400, 0), (-400, 0), (0, 400), (0, -400)):
            mirror.append(far)
        all_pts = np.vstack([pts, np.array(mirror, dtype=float)])
        vor = scipy_spatial.Voronoi(all_pts)

        # Only interior cells are comparable: boundary cells are
        # truncated differently (our bounding box vs the mirror sites).
        hull_limit = 25.0
        for i, site in enumerate(sites):
            region_index = vor.point_region[i]
            region = vor.regions[region_index]
            if -1 in region or not region:
                continue
            if any(abs(vor.vertices[v][0]) > hull_limit or abs(vor.vertices[v][1]) > hull_limit for v in region):
                continue
            polygon = [Vec2(*vor.vertices[v]) for v in region]
            # Shoelace (scipy region order may be CW or CCW).
            area = 0.0
            for a, b in zip(polygon, polygon[1:] + polygon[:1]):
                area += a.cross(b)
            scipy_area = abs(area) / 2.0
            ours = diagram[site].polygon.area()
            assert ours == pytest.approx(scipy_area, rel=1e-6), f"site {i}"


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=1000))
def test_cells_tile_the_bounding_box(count, seed):
    """The cells partition the clipping box: their areas sum to it."""
    sites = random_sites(count, seed=seed)
    diagram = voronoi_diagram(sites)
    total = sum(cell.polygon.area() for cell in diagram.values())
    # Reconstruct the box the implementation used.
    from repro.geometry.voronoi import _bounding_box

    box_area = _bounding_box(sites).area()
    assert total == pytest.approx(box_area, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=1000))
def test_cells_are_disjoint_property(count, seed):
    """Interior probes never belong to two cells."""
    sites = random_sites(count, seed=seed)
    diagram = voronoi_diagram(sites)
    rng = random.Random(seed + 1)
    for _ in range(30):
        q = Vec2(rng.uniform(-9, 9), rng.uniform(-9, 9))
        owners = [s for s, cell in diagram.items() if cell.polygon.contains(q, eps=-1e-9)]
        assert len(owners) <= 1
