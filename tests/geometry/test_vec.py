"""Unit and property tests for Vec2."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.vec import Vec2

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
vectors = st.builds(Vec2, finite, finite)


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a = Vec2(1.0, 2.0)
        b = Vec2(-3.0, 0.5)
        assert (a + b) - b == a

    def test_scalar_multiplication_commutes(self):
        v = Vec2(2.0, -4.0)
        assert 3.0 * v == v * 3.0 == Vec2(6.0, -12.0)

    def test_division(self):
        assert Vec2(2.0, 4.0) / 2.0 == Vec2(1.0, 2.0)

    def test_negation(self):
        assert -Vec2(1.0, -2.0) == Vec2(-1.0, 2.0)

    def test_iteration_unpacks(self):
        x, y = Vec2(3.0, 7.0)
        assert (x, y) == (3.0, 7.0)

    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors)
    def test_zero_is_identity(self, v):
        assert v + Vec2.zero() == v


class TestProducts:
    def test_dot_orthogonal(self):
        assert Vec2(1.0, 0.0).dot(Vec2(0.0, 5.0)) == 0.0

    def test_cross_sign_convention(self):
        # +x cross +y is positive: CCW orientation.
        assert Vec2(1.0, 0.0).cross(Vec2(0.0, 1.0)) == 1.0
        assert Vec2(0.0, 1.0).cross(Vec2(1.0, 0.0)) == -1.0

    @given(vectors, vectors)
    def test_cross_antisymmetry(self, a, b):
        assert a.cross(b) == pytest.approx(-b.cross(a), abs=1e-3)

    @given(vectors)
    def test_norm_sq_matches_norm(self, v):
        assert v.norm_sq() == pytest.approx(v.norm() ** 2, rel=1e-9, abs=1e-12)

    def test_distance_symmetric(self):
        a = Vec2(0.0, 0.0)
        b = Vec2(3.0, 4.0)
        assert a.distance_to(b) == b.distance_to(a) == 5.0

    def test_distance_sq(self):
        assert Vec2(0.0, 0.0).distance_sq_to(Vec2(3.0, 4.0)) == 25.0


class TestDirections:
    def test_normalized_unit_length(self):
        v = Vec2(3.0, 4.0).normalized()
        assert v.norm() == pytest.approx(1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2.zero().normalized()

    def test_perp_ccw_rotates_plus_90(self):
        assert Vec2(1.0, 0.0).perp_ccw() == Vec2(0.0, 1.0)

    def test_perp_cw_rotates_minus_90(self):
        assert Vec2(1.0, 0.0).perp_cw() == Vec2(0.0, -1.0)

    @given(vectors)
    def test_perps_are_orthogonal(self, v):
        assert v.dot(v.perp_ccw()) == pytest.approx(0.0, abs=1e-3)
        assert v.dot(v.perp_cw()) == pytest.approx(0.0, abs=1e-3)

    def test_rotated_quarter_turn(self):
        r = Vec2(1.0, 0.0).rotated(math.pi / 2.0)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)

    @given(vectors, st.floats(min_value=-10, max_value=10))
    def test_rotation_preserves_norm(self, v, angle):
        assert v.rotated(angle).norm() == pytest.approx(v.norm(), rel=1e-9, abs=1e-9)

    def test_angle_of_axes(self):
        assert Vec2(1.0, 0.0).angle() == 0.0
        assert Vec2(0.0, 1.0).angle() == pytest.approx(math.pi / 2.0)

    def test_angle_to_signed(self):
        assert Vec2(1.0, 0.0).angle_to(Vec2(0.0, 1.0)) == pytest.approx(math.pi / 2.0)
        assert Vec2(1.0, 0.0).angle_to(Vec2(0.0, -1.0)) == pytest.approx(-math.pi / 2.0)

    def test_unit_and_from_polar(self):
        u = Vec2.unit(math.pi / 4.0)
        assert u.norm() == pytest.approx(1.0)
        p = Vec2.from_polar(2.0, math.pi / 2.0)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(2.0)


class TestClampedToward:
    def test_reaches_close_target(self):
        start = Vec2(0.0, 0.0)
        assert start.clamped_toward(Vec2(1.0, 0.0), 2.0) == Vec2(1.0, 0.0)

    def test_clamps_far_target(self):
        start = Vec2(0.0, 0.0)
        result = start.clamped_toward(Vec2(10.0, 0.0), 2.0)
        assert result == Vec2(2.0, 0.0)

    def test_zero_budget_stays(self):
        start = Vec2(1.0, 1.0)
        assert start.clamped_toward(Vec2(5.0, 5.0), 0.0) == start

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Vec2.zero().clamped_toward(Vec2(1.0, 0.0), -1.0)

    @given(vectors, vectors, st.floats(min_value=0.0, max_value=1e6))
    def test_never_exceeds_budget(self, start, target, budget):
        moved = start.clamped_toward(target, budget)
        travelled = start.distance_to(moved)
        assert travelled <= budget + 1e-6 * max(1.0, budget)

    @given(vectors, vectors)
    def test_lands_on_segment(self, start, target):
        moved = start.clamped_toward(target, 1.0)
        # The landing point is on the segment start..target.
        seg_len = start.distance_to(target)
        assert start.distance_to(moved) + moved.distance_to(target) == pytest.approx(
            seg_len, rel=1e-6, abs=1e-6
        )


class TestMisc:
    def test_lerp_endpoints(self):
        a = Vec2(0.0, 0.0)
        b = Vec2(2.0, 4.0)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(1.0, 2.0)

    def test_hashable(self):
        assert len({Vec2(1.0, 2.0), Vec2(1.0, 2.0), Vec2(2.0, 1.0)}) == 2

    def test_immutability(self):
        v = Vec2(1.0, 2.0)
        with pytest.raises(AttributeError):
            v.x = 3.0  # type: ignore[misc]
