"""Tests for convex polygons and half-plane clipping."""

from __future__ import annotations

import pytest

from repro.geometry.convex import ConvexPolygon
from repro.geometry.lines import HalfPlane, Line
from repro.geometry.vec import Vec2


def unit_square() -> ConvexPolygon:
    return ConvexPolygon.axis_aligned_box(Vec2(0, 0), Vec2(1, 1))


class TestConstruction:
    def test_box_vertices_ccw(self):
        box = unit_square()
        assert box.area() == pytest.approx(1.0)

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            ConvexPolygon.axis_aligned_box(Vec2(0, 0), Vec2(0, 1))


class TestQueries:
    def test_contains_interior_boundary_exterior(self):
        box = unit_square()
        assert box.contains(Vec2(0.5, 0.5))
        assert box.contains(Vec2(0.0, 0.5))
        assert not box.contains(Vec2(1.5, 0.5))

    def test_empty_polygon(self):
        empty = ConvexPolygon(())
        assert empty.is_empty()
        assert empty.area() == 0.0
        assert not empty.contains(Vec2(0, 0))
        assert empty.edges() == []

    def test_distance_to_boundary_center(self):
        box = unit_square()
        assert box.distance_to_boundary(Vec2(0.5, 0.5)) == pytest.approx(0.5)

    def test_distance_to_boundary_off_center(self):
        box = unit_square()
        assert box.distance_to_boundary(Vec2(0.25, 0.5)) == pytest.approx(0.25)

    def test_centroid_square(self):
        assert unit_square().centroid() == Vec2(0.5, 0.5)

    def test_edges_count(self):
        assert len(unit_square().edges()) == 4


class TestClipping:
    def test_clip_in_half(self):
        box = unit_square()
        # Keep x <= 0.5: boundary through (0.5, 0) pointing +y keeps left.
        hp = HalfPlane(Line(Vec2(0.5, 0.0), Vec2(0.0, 1.0)))
        clipped = box.clipped(hp)
        assert clipped.area() == pytest.approx(0.5)
        assert clipped.contains(Vec2(0.25, 0.5))
        assert not clipped.contains(Vec2(0.75, 0.5))

    def test_clip_away_everything(self):
        box = unit_square()
        hp = HalfPlane(Line(Vec2(-1.0, 0.0), Vec2(0.0, 1.0)))  # keeps x <= -1
        clipped = box.clipped(hp)
        assert clipped.is_empty() or clipped.area() == pytest.approx(0.0, abs=1e-9)

    def test_clip_no_effect(self):
        box = unit_square()
        hp = HalfPlane(Line(Vec2(10.0, 0.0), Vec2(0.0, 1.0)))  # keeps x <= 10
        clipped = box.clipped(hp)
        assert clipped.area() == pytest.approx(1.0)

    def test_repeated_clips_produce_triangle(self):
        box = unit_square()
        # Keep below the diagonal: x + y <= 1 is the left of the
        # direction from (1,0) to (0,1).
        diag = HalfPlane(Line(Vec2(0.0, 1.0), Vec2(-1.0, 1.0)))
        clipped = box.clipped(diag)
        assert clipped.area() == pytest.approx(0.5)
        assert clipped.contains(Vec2(0.25, 0.25))
        assert not clipped.contains(Vec2(0.75, 0.75))

    def test_clip_chain_stays_convex_and_shrinks(self):
        poly = ConvexPolygon.axis_aligned_box(Vec2(-5, -5), Vec2(5, 5))
        areas = [poly.area()]
        import math

        for k in range(8):
            angle = 2.0 * math.pi * k / 8.0
            # Keep the side containing the origin.
            origin = Vec2.from_polar(3.0, angle)
            direction = Vec2.unit(angle + math.pi / 2.0)
            poly = poly.clipped(HalfPlane(Line(origin, direction)))
            areas.append(poly.area())
        assert all(a >= b - 1e-9 for a, b in zip(areas, areas[1:]))
        assert poly.contains(Vec2(0, 0))
