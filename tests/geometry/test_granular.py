"""Tests for sliced granular discs."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AmbiguousDirectionError
from repro.geometry.granular import Granular, granular_radius
from repro.geometry.vec import Vec2


def make(num_diameters: int = 4, sweep: int = -1, zero=Vec2(0.0, 1.0)) -> Granular:
    return Granular(
        center=Vec2(0.0, 0.0),
        radius=2.0,
        num_diameters=num_diameters,
        zero_direction=zero,
        sweep=sweep,
    )


class TestValidation:
    def test_radius_positive(self):
        with pytest.raises(ValueError):
            Granular(Vec2.zero(), 0.0, 4, Vec2(0, 1))

    def test_diameters_positive(self):
        with pytest.raises(ValueError):
            Granular(Vec2.zero(), 1.0, 0, Vec2(0, 1))

    def test_zero_direction_nonzero(self):
        with pytest.raises(ValueError):
            Granular(Vec2.zero(), 1.0, 4, Vec2(0, 0))

    def test_sweep_validated(self):
        with pytest.raises(ValueError):
            Granular(Vec2.zero(), 1.0, 4, Vec2(0, 1), sweep=2)

    def test_direction_normalised(self):
        g = Granular(Vec2.zero(), 1.0, 4, Vec2(0, 5))
        assert g.zero_direction.norm() == pytest.approx(1.0)

    def test_label_range_checked(self):
        g = make(4)
        with pytest.raises(ValueError):
            g.diameter_direction(4)
        with pytest.raises(ValueError):
            g.diameter_direction(-1)


class TestGranularRadius:
    def test_half_nearest_neighbor(self):
        site = Vec2(0, 0)
        others = [Vec2(4, 0), Vec2(0, 6), Vec2(-10, 0)]
        assert granular_radius(site, others) == 2.0


class TestGeometry:
    def test_slice_angle(self):
        assert make(4).slice_angle == pytest.approx(math.pi / 4.0)

    def test_diameter_zero_is_zero_direction(self):
        g = make(4)
        assert g.diameter_direction(0) == Vec2(0.0, 1.0)
        assert g.diameter_direction(0, positive=False) == Vec2(0.0, -1.0)

    def test_clockwise_labelling(self):
        """With sweep=-1, diameter 1 of a 4-diameter disc points NE-ish
        (rotated clockwise from North)."""
        g = make(4)
        d1 = g.diameter_direction(1)
        assert d1.x > 0 and d1.y > 0  # between North and East

    def test_counterclockwise_sweep(self):
        g = make(4, sweep=1)
        d1 = g.diameter_direction(1)
        assert d1.x < 0 and d1.y > 0  # between North and West

    def test_quarter_diameter_points_east(self):
        g = make(4)
        d2 = g.diameter_direction(2)
        # Two slices of pi/4 clockwise from North = East.
        assert d2.x == pytest.approx(1.0)
        assert d2.y == pytest.approx(0.0, abs=1e-12)

    def test_target_point_inside_disc(self):
        g = make(4)
        p = g.target_point(1, True, 1.0)
        assert g.contains(p)
        assert p.distance_to(g.center) == pytest.approx(1.0)

    def test_target_point_distance_validated(self):
        g = make(4)
        with pytest.raises(ValueError):
            g.target_point(0, True, 2.0)  # on the border
        with pytest.raises(ValueError):
            g.target_point(0, True, 0.0)


class TestClassify:
    def test_roundtrip_all_labels_and_sides(self):
        g = make(6)
        for label in range(6):
            for positive in (True, False):
                p = g.target_point(label, positive, 1.3)
                assert g.classify(p) == (label, positive)

    def test_center_is_ambiguous(self):
        g = make(4)
        with pytest.raises(AmbiguousDirectionError):
            g.classify(g.center)

    def test_between_diameters_is_ambiguous(self):
        g = make(4)
        # Halfway between diameter 0 and diameter 1 (pi/8 off).
        direction = Vec2(0.0, 1.0).rotated(-math.pi / 8.0)
        with pytest.raises(AmbiguousDirectionError):
            g.classify(g.center + direction * 1.0)

    def test_small_deviation_tolerated(self):
        g = make(6)
        direction = g.diameter_direction(2).rotated(g.slice_angle / 10.0)
        label, positive = g.classify(g.center + direction * 1.0)
        assert (label, positive) == (2, True)

    @settings(deadline=None)
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=15),
        st.booleans(),
        st.floats(min_value=0.05, max_value=1.9),
        st.floats(min_value=0.0, max_value=2 * math.pi),
    )
    def test_roundtrip_property(self, m, label, positive, dist, zero_angle):
        label = label % m
        g = Granular(
            center=Vec2(3.0, -4.0),
            radius=2.0,
            num_diameters=m,
            zero_direction=Vec2.unit(zero_angle),
        )
        p = g.target_point(label, positive, dist)
        assert g.classify(p) == (label, positive)

    def test_classification_independent_of_observer_rotation(self):
        """Rotating the whole scene (granular + point) preserves labels:
        the chirality-sharing argument for observer-side decoding."""
        g = make(8)
        p = g.target_point(3, False, 1.0)
        for angle in (0.3, 1.2, 2.9):
            g_rot = Granular(
                center=g.center.rotated(angle),
                radius=g.radius,
                num_diameters=8,
                zero_direction=g.zero_direction.rotated(angle),
            )
            assert g_rot.classify(p.rotated(angle)) == (3, False)
