"""Tests for orientation predicates and angle utilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.predicates import (
    Orientation,
    almost_equal,
    almost_zero,
    angle_between,
    angle_ccw,
    angle_cw,
    normalize_angle,
    normalize_angle_positive,
    orientation,
    side_of_line,
)
from repro.geometry.vec import Vec2

angles = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestAlmost:
    def test_almost_zero(self):
        assert almost_zero(0.0)
        assert almost_zero(1e-12)
        assert not almost_zero(1e-6)

    def test_almost_equal(self):
        assert almost_equal(1.0, 1.0 + 1e-12)
        assert not almost_equal(1.0, 1.001)


class TestOrientation:
    def test_counterclockwise(self):
        assert (
            orientation(Vec2(0, 0), Vec2(1, 0), Vec2(1, 1))
            == Orientation.COUNTERCLOCKWISE
        )

    def test_clockwise(self):
        assert orientation(Vec2(0, 0), Vec2(1, 0), Vec2(1, -1)) == Orientation.CLOCKWISE

    def test_collinear(self):
        assert orientation(Vec2(0, 0), Vec2(1, 0), Vec2(2, 0)) == Orientation.COLLINEAR

    @given(
        st.builds(Vec2, angles, angles),
        st.builds(Vec2, angles, angles),
        st.builds(Vec2, angles, angles),
    )
    def test_swap_flips_orientation(self, a, b, c):
        first = orientation(a, b, c)
        swapped = orientation(a, c, b)
        if first != Orientation.COLLINEAR and swapped != Orientation.COLLINEAR:
            assert first == -swapped


class TestSideOfLine:
    def test_left_is_positive(self):
        # Line pointing +x; point above (left of direction).
        assert side_of_line(Vec2(0, 1), Vec2(0, 0), Vec2(1, 0)) == 1

    def test_right_is_negative(self):
        assert side_of_line(Vec2(0, -1), Vec2(0, 0), Vec2(1, 0)) == -1

    def test_on_line_is_zero(self):
        assert side_of_line(Vec2(5, 0), Vec2(0, 0), Vec2(1, 0)) == 0


class TestNormalization:
    @given(angles)
    def test_normalize_range(self, a):
        n = normalize_angle(a)
        assert -math.pi < n <= math.pi

    @given(angles)
    def test_normalize_positive_range(self, a):
        n = normalize_angle_positive(a)
        assert 0.0 <= n < 2.0 * math.pi

    @given(angles)
    def test_normalizations_agree_mod_two_pi(self, a):
        diff = normalize_angle(a) - normalize_angle_positive(a)
        assert math.isclose(diff % (2.0 * math.pi), 0.0, abs_tol=1e-9) or math.isclose(
            diff % (2.0 * math.pi), 2.0 * math.pi, abs_tol=1e-9
        )

    def test_pi_maps_to_pi(self):
        assert normalize_angle(math.pi) == pytest.approx(math.pi)
        assert normalize_angle(-math.pi) == pytest.approx(math.pi)


class TestSweeps:
    def test_ccw_quarter(self):
        assert angle_ccw(Vec2(1, 0), Vec2(0, 1)) == pytest.approx(math.pi / 2)

    def test_cw_quarter(self):
        assert angle_cw(Vec2(1, 0), Vec2(0, -1)) == pytest.approx(math.pi / 2)

    def test_cw_plus_ccw_is_full_turn(self):
        u = Vec2(1, 0)
        v = Vec2(1, 2).normalized()
        total = angle_cw(u, v) + angle_ccw(u, v)
        assert total == pytest.approx(2.0 * math.pi)

    @given(angles, angles)
    def test_sweeps_nonnegative(self, a, b):
        u = Vec2.unit(a)
        v = Vec2.unit(b)
        assert 0.0 <= angle_cw(u, v) < 2.0 * math.pi
        assert 0.0 <= angle_ccw(u, v) < 2.0 * math.pi

    def test_angle_between_unsigned(self):
        assert angle_between(Vec2(1, 0), Vec2(0, 1)) == pytest.approx(math.pi / 2)
        assert angle_between(Vec2(1, 0), Vec2(0, -1)) == pytest.approx(math.pi / 2)
        assert angle_between(Vec2(1, 0), Vec2(-1, 0)) == pytest.approx(math.pi)
