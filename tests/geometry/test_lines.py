"""Tests for lines, segments and half-planes."""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry.lines import HalfPlane, Line, Segment
from repro.geometry.vec import Vec2

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
points = st.builds(Vec2, coords, coords)


class TestLine:
    def test_direction_normalised(self):
        line = Line(Vec2(0, 0), Vec2(3, 4))
        assert line.direction.norm() == pytest.approx(1.0)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            Line(Vec2(0, 0), Vec2(0, 0))

    def test_through(self):
        line = Line.through(Vec2(1, 1), Vec2(4, 5))
        assert line.contains(Vec2(1, 1))
        assert line.contains(Vec2(4, 5))
        assert line.contains(Vec2(2.5, 3.0))

    def test_projection(self):
        line = Line(Vec2(0, 0), Vec2(1, 0))
        assert line.project(Vec2(3, 7)) == Vec2(3, 0)
        assert line.project_parameter(Vec2(3, 7)) == 3.0

    def test_signed_offset_sides(self):
        line = Line(Vec2(0, 0), Vec2(1, 0))
        assert line.signed_offset(Vec2(0, 2)) > 0  # left
        assert line.signed_offset(Vec2(0, -2)) < 0  # right

    def test_intersection(self):
        a = Line(Vec2(0, 0), Vec2(1, 0))
        b = Line(Vec2(2, -1), Vec2(0, 1))
        assert a.intersect(b) == Vec2(2, 0)

    def test_parallel_no_intersection(self):
        a = Line(Vec2(0, 0), Vec2(1, 0))
        b = Line(Vec2(0, 1), Vec2(1, 0))
        assert a.intersect(b) is None

    @given(points, points)
    def test_perpendicular_bisector_equidistant(self, a, b):
        assume(a.distance_to(b) > 1e-6)
        bis = Line.perpendicular_bisector(a, b)
        for t in (-5.0, 0.0, 3.0):
            p = bis.point_at(t)
            assert p.distance_to(a) == pytest.approx(p.distance_to(b), rel=1e-6, abs=1e-6)

    @given(points, points)
    def test_bisector_leaves_a_on_left(self, a, b):
        assume(a.distance_to(b) > 1e-6)
        bis = Line.perpendicular_bisector(a, b)
        assert bis.signed_offset(a) > 0
        assert bis.signed_offset(b) < 0


class TestSegment:
    def test_length_midpoint(self):
        seg = Segment(Vec2(0, 0), Vec2(6, 8))
        assert seg.length() == 10.0
        assert seg.midpoint() == Vec2(3, 4)

    def test_closest_point_interior(self):
        seg = Segment(Vec2(0, 0), Vec2(10, 0))
        assert seg.closest_point_to(Vec2(4, 3)) == Vec2(4, 0)

    def test_closest_point_clamps_to_ends(self):
        seg = Segment(Vec2(0, 0), Vec2(10, 0))
        assert seg.closest_point_to(Vec2(-5, 1)) == Vec2(0, 0)
        assert seg.closest_point_to(Vec2(15, 1)) == Vec2(10, 0)

    def test_degenerate_segment(self):
        seg = Segment(Vec2(1, 1), Vec2(1, 1))
        assert seg.closest_point_to(Vec2(5, 5)) == Vec2(1, 1)
        assert seg.length() == 0.0

    def test_distance_and_contains(self):
        seg = Segment(Vec2(0, 0), Vec2(10, 0))
        assert seg.distance_to(Vec2(5, 2)) == 2.0
        assert seg.contains(Vec2(5, 0))
        assert not seg.contains(Vec2(5, 0.1))

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_interior_points_contained(self, a, b, t):
        seg = Segment(a, b)
        assert seg.contains(seg.point_at(t), eps=1e-6 * max(1.0, seg.length()))


class TestHalfPlane:
    def test_closer_to(self):
        hp = HalfPlane.closer_to(Vec2(0, 0), Vec2(10, 0))
        assert hp.contains(Vec2(0, 0))
        assert hp.contains(Vec2(5, 0))  # boundary (closed)
        assert not hp.contains(Vec2(6, 0))

    def test_strict_containment(self):
        hp = HalfPlane.closer_to(Vec2(0, 0), Vec2(10, 0))
        assert hp.strictly_contains(Vec2(1, 0))
        assert not hp.strictly_contains(Vec2(5, 0))

    @given(points, points, points)
    def test_closer_to_matches_distances(self, site, other, q):
        assume(site.distance_to(other) > 1e-6)
        hp = HalfPlane.closer_to(site, other)
        d_site = q.distance_to(site)
        d_other = q.distance_to(other)
        if d_site + 1e-6 < d_other:
            assert hp.contains(q)
        elif d_other + 1e-6 < d_site:
            assert not hp.contains(q, eps=1e-9)
