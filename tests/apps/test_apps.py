"""Tests for the demonstration applications."""

from __future__ import annotations

import pytest

from repro.apps.chat import run_chat
from repro.apps.echo import ping
from repro.apps.harness import ring_positions
from repro.apps.leader_election import elect_leader
from repro.apps.token_ring import run_token_ring
from repro.errors import ProtocolError
from repro.model.scheduler import RoundRobinScheduler


class TestLeaderElection:
    def test_default_election(self):
        result = elect_leader()
        assert result.leader == 5  # max value = max index by default
        assert set(result.decided_by.values()) == {5}
        assert result.messages == 6 * 5

    def test_custom_values(self):
        result = elect_leader(values=[3, 99, 7, 1, 2, 4])
        assert result.leader == 1

    def test_value_count_checked(self):
        with pytest.raises(ProtocolError):
            elect_leader(values=[1, 2])

    def test_anonymous_sec_election(self):
        """Election still works for anonymous robots: values are data,
        addressing is the SEC relative naming."""
        result = elect_leader(
            positions=ring_positions(5, radius=10.0, jitter=0.08),
            values=[10, 40, 30, 20, 5],
            naming="sec",
        )
        assert result.leader == 1

    def test_timeout_raises(self):
        with pytest.raises(ProtocolError):
            elect_leader(max_steps=3)


class TestTokenRing:
    def test_two_laps(self):
        result = run_token_ring(laps=2)
        n = 5
        assert result.laps == 2
        assert len(result.hops) == 2 * n
        assert result.hops == [i % n for i in range(2 * n)]

    def test_single_lap_small_ring(self):
        result = run_token_ring(positions=ring_positions(3, jitter=0.05), laps=1)
        assert result.hops == [0, 1, 2]

    def test_laps_validated(self):
        with pytest.raises(ProtocolError):
            run_token_ring(laps=0)


class TestEcho:
    def test_roundtrip(self):
        result = ping(payload=b"marco")
        assert result.reply == b"marco"
        assert result.round_trip_steps > result.request_delivered_at

    def test_endpoint_validation(self):
        with pytest.raises(ProtocolError):
            ping(requester=1, responder=1)

    def test_rtt_scales_with_payload(self):
        short = ping(payload=b"x")
        long = ping(payload=b"x" * 20)
        assert long.round_trip_steps > short.round_trip_steps


class TestChat:
    def test_sync_conversation(self):
        script = [(0, "hello"), (1, "hi there"), (0, "bye")]
        result = run_chat(script)
        texts = [(speaker, text) for speaker, text, _ in result.transcript]
        assert sorted(texts) == sorted(script)

    def test_async_conversation(self):
        result = run_chat([(0, "ok"), (1, "ko")], asynchronous=True, seed=2)
        texts = {(speaker, text) for speaker, text, _ in result.transcript}
        assert texts == {(0, "ok"), (1, "ko")}
        assert result.distance_travelled > 0.0

    def test_speaker_validated(self):
        with pytest.raises(ProtocolError):
            run_chat([(2, "nope")])

    def test_unicode_lines(self):
        result = run_chat([(0, "héllo 🤖")])
        assert result.transcript[0][1] == "héllo 🤖"
