"""Unit tests for the SwarmHarness convenience layer."""

from __future__ import annotations

import pytest

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ModelError
from repro.protocols.sync_granular import SyncGranularProtocol


class TestRingPositions:
    def test_count_and_radius(self):
        pts = ring_positions(7, radius=5.0)
        assert len(pts) == 7
        for p in pts:
            assert p.norm() == pytest.approx(5.0)

    def test_jitter_breaks_symmetry(self):
        from repro.naming.symmetry import rotational_symmetry_order

        symmetric = ring_positions(6, jitter=0.0)
        jittered = ring_positions(6, jitter=0.07)
        assert rotational_symmetry_order(symmetric) == 6
        assert rotational_symmetry_order(jittered) == 1

    def test_count_validated(self):
        with pytest.raises(ModelError):
            ring_positions(0)


class TestHarness:
    def test_wiring(self):
        h = SwarmHarness(
            ring_positions(4, jitter=0.05),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        assert h.count == 4
        assert len(h.channels) == 4
        assert len(h.monitors) == 4
        assert h.channel(2) is h.channels[2]
        # Each robot got its own protocol instance.
        assert len({id(r.protocol) for r in h.robots}) == 4

    def test_identified_flag(self):
        anonymous = SwarmHarness(
            ring_positions(3, jitter=0.05),
            protocol_factory=lambda: SyncGranularProtocol(naming="sod"),
            identified=False,
        )
        assert all(r.observable_id is None for r in anonymous.robots)

    def test_pump_checks_before_stepping(self):
        h = SwarmHarness(
            ring_positions(3, jitter=0.05),
            protocol_factory=lambda: SyncGranularProtocol(),
        )
        assert h.pump(lambda _: True, max_steps=100)
        assert h.simulator.time == 0

    def test_pump_returns_false_on_budget_exhaustion(self):
        h = SwarmHarness(
            ring_positions(3, jitter=0.05),
            protocol_factory=lambda: SyncGranularProtocol(),
        )
        assert not h.pump(lambda _: False, max_steps=5)
        assert h.simulator.time == 5

    def test_run_polls_channels(self):
        h = SwarmHarness(
            ring_positions(3, jitter=0.05),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        h.channel(0).send(1, b"x")
        h.run(60)
        # Inbox populated without any explicit poll by the caller.
        assert len(h.channels[1]._inbox) == 1  # noqa: SLF001 - asserting the poll
