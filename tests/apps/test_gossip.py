"""Tests for rumor spreading."""

from __future__ import annotations

import pytest

from repro.apps.gossip import spread_rumor
from repro.errors import ProtocolError


class TestModes:
    def test_overheard_single_transmission(self):
        result = spread_rumor("the nest has moved", count=6, mode="overheard")
        assert result.informed == 6
        assert result.transmissions == 1

    def test_addressed_fanout(self):
        result = spread_rumor("the nest has moved", count=6, mode="addressed")
        assert result.informed == 6
        assert result.transmissions == 5

    def test_overhearing_is_n_minus_one_times_cheaper(self):
        """The paper's efficient one-to-all, quantified in movements."""
        count = 6
        overheard = spread_rumor("gossip!", count=count, mode="overheard")
        addressed = spread_rumor("gossip!", count=count, mode="addressed")
        assert addressed.source_moves == pytest.approx(
            (count - 1) * overheard.source_moves, abs=2
        )
        assert addressed.steps >= overheard.steps

    def test_nonzero_source(self):
        result = spread_rumor("hi", count=4, source=2, mode="overheard")
        assert result.informed == 4


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ProtocolError):
            spread_rumor("x", mode="broadcast-storm")

    def test_source_range(self):
        with pytest.raises(ProtocolError):
            spread_rumor("x", count=3, source=7)

    def test_timeout(self):
        with pytest.raises(ProtocolError):
            spread_rumor("a long rumor that cannot fit", count=4, max_steps=3)
