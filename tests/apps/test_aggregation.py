"""Tests for the convergecast application."""

from __future__ import annotations

import pytest

from repro.apps.aggregation import converge_cast, converge_cast_limited_visibility
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2


class TestFullVisibility:
    def test_sum(self):
        result = converge_cast([10, 20, 30, 40], sink=0, operation="sum")
        assert result.aggregate == 100
        assert result.readings == {0: 10, 1: 20, 2: 30, 3: 40}
        assert result.messages == 3

    def test_max_and_min(self):
        assert converge_cast([5, -3, 9], operation="max").aggregate == 9
        assert converge_cast([5, -3, 9], operation="min").aggregate == -3

    def test_negative_values_roundtrip(self):
        result = converge_cast([-1000, 2000, -3000], operation="sum")
        assert result.aggregate == -2000

    def test_nonzero_sink(self):
        result = converge_cast([1, 2, 3, 4], sink=2, operation="sum")
        assert result.aggregate == 10

    def test_validation(self):
        with pytest.raises(ProtocolError):
            converge_cast([1, 2], operation="median")
        with pytest.raises(ProtocolError):
            converge_cast([1, 2], sink=5)
        with pytest.raises(ProtocolError):
            converge_cast([1, 2, 3], max_steps=2)


class TestLimitedVisibility:
    def test_relay_convergecast_line(self):
        """Reports hop to the sink across a line where nobody sees it
        directly except its neighbour."""
        readings = [7, 11, 13, 17, 19]
        result = converge_cast_limited_visibility(
            readings, visibility_radius=12.0, sink=0, operation="sum"
        )
        assert result.aggregate == sum(readings)
        assert result.readings == dict(enumerate(readings))

    def test_sink_in_the_middle(self):
        readings = [1, 2, 3, 4, 5]
        result = converge_cast_limited_visibility(
            readings, visibility_radius=12.0, sink=2, operation="max"
        )
        assert result.aggregate == 5

    def test_disconnected_graph_times_out(self):
        positions = [Vec2(0, 0), Vec2(10, 0), Vec2(500, 0)]
        with pytest.raises(ProtocolError):
            converge_cast_limited_visibility(
                [1, 2, 3],
                visibility_radius=12.0,
                positions=positions,
                max_steps=2000,
            )
