"""Tests for symmetry detection — the Figure 3 obstruction."""

from __future__ import annotations

import math

import pytest

from repro.geometry.vec import Vec2
from repro.naming.sec_naming import relative_labels
from repro.naming.symmetry import (
    common_naming_is_impossible,
    figure3_configuration,
    local_view,
    rotational_symmetry_order,
    symmetric_view_pairs,
    symmetry_orbits,
)


def regular_polygon(count: int, radius: float = 5.0) -> list:
    return [Vec2.from_polar(radius, 2.0 * math.pi * k / count) for k in range(count)]


class TestSymmetryOrder:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rotational_symmetry_order([])

    def test_single_point(self):
        assert rotational_symmetry_order([Vec2(1, 1)]) == 1

    def test_regular_polygon(self):
        for n in (3, 4, 6):
            assert rotational_symmetry_order(regular_polygon(n)) == n

    def test_asymmetric(self):
        pts = [Vec2(0, 0), Vec2(1, 0), Vec2(3, 1), Vec2(-2, 4)]
        assert rotational_symmetry_order(pts) == 1

    def test_antipodal_pairs_are_2fold(self):
        pts = figure3_configuration()
        assert rotational_symmetry_order(pts) == 2

    def test_center_robot_does_not_break_symmetry(self):
        pts = regular_polygon(4) + [Vec2(0, 0)]
        assert rotational_symmetry_order(pts) == 4


class TestOrbits:
    def test_square_is_one_orbit(self):
        orbits = symmetry_orbits(regular_polygon(4))
        assert len(orbits) == 1
        assert sorted(orbits[0]) == [0, 1, 2, 3]

    def test_figure3_is_three_orbits_of_two(self):
        orbits = symmetry_orbits(figure3_configuration())
        assert len(orbits) == 3
        assert all(len(o) == 2 for o in orbits)

    def test_asymmetric_gives_singletons(self):
        pts = [Vec2(0, 0), Vec2(1, 0), Vec2(3, 1)]
        orbits = symmetry_orbits(pts)
        assert orbits == [[0], [1], [2]]


class TestFigure3:
    """The paper's Figure 3 claim, made executable."""

    def test_configuration_shape(self):
        pts = figure3_configuration()
        assert len(pts) == 6
        assert common_naming_is_impossible(pts)

    def test_orbit_mates_have_identical_views(self):
        """For each symmetric pair there exist frames (same handedness!)
        under which the two robots' entire world views coincide — so no
        deterministic rule can name them apart."""
        pts = figure3_configuration()
        pairs = symmetric_view_pairs(pts)
        assert pairs, "figure 3 configuration must be symmetric"
        for i, j, frame_i, frame_j in pairs:
            view_i = local_view(pts, i, frame_i)
            view_j = local_view(pts, j, frame_j)
            assert len(view_i) == len(view_j)
            for a, b in zip(view_i, view_j):
                assert a.distance_to(b) < 1e-9

    def test_relative_naming_still_works(self):
        """Section 3.4's point: the *relative* naming sidesteps the
        obstruction — it never needed to be common."""
        pts = figure3_configuration()
        for subject in range(6):
            labels = relative_labels(pts, subject)
            assert sorted(labels.values()) == list(range(6))

    def test_symmetric_view_pairs_empty_for_asymmetric(self):
        pts = [Vec2(0, 0), Vec2(1, 0), Vec2(3, 1)]
        assert symmetric_view_pairs(pts) == []
