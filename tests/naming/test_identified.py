"""Tests for identified naming."""

from __future__ import annotations

import pytest

from repro.errors import NamingError
from repro.naming.identified import identified_labels


class TestIdentifiedLabels:
    def test_dense_ids_label_themselves(self):
        assert identified_labels([0, 1, 2]) == {0: 0, 1: 1, 2: 2}

    def test_arbitrary_ids_ranked(self):
        # indices 0,1,2 have ids 42, 7, 100 -> ranks 1, 0, 2.
        assert identified_labels([42, 7, 100]) == {0: 1, 1: 0, 2: 2}

    def test_negative_ids_allowed(self):
        assert identified_labels([-5, 3]) == {0: 0, 1: 1}

    def test_empty_rejected(self):
        with pytest.raises(NamingError):
            identified_labels([])

    def test_duplicates_rejected(self):
        with pytest.raises(NamingError):
            identified_labels([1, 1])

    def test_labels_are_dense_permutation(self):
        labels = identified_labels([9, 3, 17, 11, 2])
        assert sorted(labels.values()) == list(range(5))
