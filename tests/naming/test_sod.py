"""Tests for sense-of-direction naming and its observer invariance."""

from __future__ import annotations

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import NamingError
from repro.geometry.frames import Frame
from repro.geometry.vec import Vec2
from repro.naming.sod import sod_labels

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


def distinct_points(seed: int, count: int):
    rng = random.Random(seed)
    pts = []
    while len(pts) < count:
        p = Vec2(rng.uniform(-50, 50), rng.uniform(-50, 50))
        if all(abs(p.x - q.x) > 1e-3 or abs(p.y - q.y) > 1e-3 for q in pts):
            pts.append(p)
    return pts


class TestBasics:
    def test_orders_by_x_then_y(self):
        pts = [Vec2(2, 0), Vec2(0, 5), Vec2(0, 1)]
        labels = sod_labels(pts)
        # (0,1) < (0,5) < (2,0)
        assert labels == {2: 0, 1: 1, 0: 2}

    def test_empty_rejected(self):
        with pytest.raises(NamingError):
            sod_labels([])

    def test_near_tie_rejected(self):
        pts = [Vec2(0.0, 0.0), Vec2(1e-12, 5.0)]
        with pytest.raises(NamingError):
            sod_labels(pts)

    def test_exact_x_tie_falls_to_y(self):
        pts = [Vec2(1.0, 5.0), Vec2(1.0, 2.0)]
        assert sod_labels(pts) == {1: 0, 0: 1}

    def test_labels_are_dense(self):
        pts = distinct_points(1, 7)
        labels = sod_labels(pts)
        assert sorted(labels.values()) == list(range(7))


class TestObserverInvariance:
    """The Section 3.3 claim: sharing axes (not origins or unit
    measures) suffices for a common order."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.05, max_value=20.0),
        st.builds(Vec2, coords, coords),
    )
    def test_invariant_under_scale_and_translation(self, seed, scale, origin):
        pts = distinct_points(seed, 6)
        frame = Frame(rotation=0.0, scale=scale, handedness=1)
        local = [frame.to_local(p, origin) for p in pts]
        assert sod_labels(pts) == sod_labels(local)

    def test_not_invariant_under_rotation(self):
        """Without shared axes the order genuinely differs — the reason
        Section 3.4 needs a different mechanism."""
        pts = [Vec2(0.0, 0.0), Vec2(1.0, 2.0), Vec2(2.0, -1.0)]
        frame = Frame(rotation=2.0, scale=1.0, handedness=1)
        local = [frame.to_local(p, Vec2.zero()) for p in pts]
        assert sod_labels(pts) != sod_labels(local)
