"""Tests for the SEC relative naming of Section 3.4 / Figure 4."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NamingError
from repro.geometry.frames import Frame
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2
from repro.naming.sec_naming import horizon_direction, relative_labels


def ring(count: int, seed: int = 0) -> list:
    rng = random.Random(seed)
    pts = []
    for i in range(count):
        angle = 2.0 * math.pi * i / count + rng.uniform(0.0, 0.3)
        radius = rng.uniform(4.0, 10.0)
        pts.append(Vec2.from_polar(radius, angle))
    return pts


class TestHorizon:
    def test_outward_direction(self):
        pts = [Vec2(-5, 0), Vec2(5, 0), Vec2(0, 3)]
        center = smallest_enclosing_circle(pts).center
        d = horizon_direction(pts, 1)
        expected = (pts[1] - center).normalized()
        assert d.x == pytest.approx(expected.x)
        assert d.y == pytest.approx(expected.y)

    def test_subject_at_center_rejected(self):
        pts = [Vec2(-5, 0), Vec2(5, 0), Vec2(0, 0)]
        with pytest.raises(NamingError):
            horizon_direction(pts, 2)


class TestRelativeLabels:
    def test_validation(self):
        with pytest.raises(NamingError):
            relative_labels([], 0)
        with pytest.raises(NamingError):
            relative_labels([Vec2(0, 0)], 5)
        with pytest.raises(NamingError):
            relative_labels([Vec2(1, 0), Vec2(-1, 0)], 0, sweep=0)

    def test_subject_first_on_own_radius(self):
        """The subject's radius sweeps angle 0, so its labels come first."""
        pts = ring(8, seed=2)
        labels = relative_labels(pts, 3)
        assert labels[3] == 0  # alone on its radius

    def test_labels_dense(self):
        pts = ring(9, seed=4)
        for subject in range(9):
            labels = relative_labels(pts, subject)
            assert sorted(labels.values()) == list(range(9))

    def test_clockwise_ordering(self):
        """Three robots at known angles around an explicit SEC."""
        # SEC fixed by two antipodal points on a circle of radius 10.
        pts = [
            Vec2(10, 0),  # subject, angle 0
            Vec2(-10, 0),  # angle pi
            Vec2.from_polar(10.0, -math.pi / 2.0),  # angle -pi/2 = clockwise 90 deg
            Vec2.from_polar(6.0, math.pi / 2.0),  # CCW 90 deg = clockwise 270 deg
        ]
        labels = relative_labels(pts, 0, sweep=-1)
        # Clockwise from subject's radius: subject (0), then the robot
        # at -90 (cw 90), then the one at 180 (cw 180), then +90 (cw 270).
        assert labels == {0: 0, 2: 1, 1: 2, 3: 3}

    def test_same_radius_ordered_from_center(self):
        """Figure 4: robots on one radius are numbered from O outward."""
        pts = [
            Vec2(10, 0),
            Vec2(-10, 0),
            Vec2(4, 0),  # same radius as subject, nearer O
            Vec2(7, 0),  # same radius, middle
        ]
        labels = relative_labels(pts, 0)
        # Subject's radius first, ordered by distance from O:
        # (4,0) -> 0, (7,0) -> 1, subject (10,0) -> 2, then (-10,0) -> 3.
        assert labels == {2: 0, 3: 1, 0: 2, 1: 3}

    def test_robot_at_center_convention(self):
        pts = [Vec2(10, 0), Vec2(-10, 0), Vec2(0, 0), Vec2(0, -10)]
        labels = relative_labels(pts, 0)
        # The robot at O is first on the subject's radius.
        assert labels[2] == 0
        assert labels[0] == 1

    def test_every_observer_computes_identical_labelling(self):
        """The decoding property: labels relative to a sender are a
        pure function of the configuration, and rotating/scaling an
        observer's view (same handedness) leaves them unchanged."""
        pts = ring(10, seed=6)
        for sender in (0, 4, 7):
            reference = relative_labels(pts, sender)
            for rotation, scale in ((0.7, 2.0), (3.0, 0.3), (5.5, 1.0)):
                frame = Frame(rotation=rotation, scale=scale, handedness=1)
                view = [frame.to_local(p, Vec2(3.0, -2.0)) for p in pts]
                assert relative_labels(view, sender) == reference

    def test_handedness_flip_changes_labelling(self):
        """Without chirality the sweep direction flips — the naming
        genuinely needs the shared handedness."""
        pts = ring(7, seed=8)
        reference = relative_labels(pts, 2)
        mirrored = [Vec2(p.x, -p.y) for p in pts]
        flipped = relative_labels(mirrored, 2)
        assert flipped != reference

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=5000))
    def test_observer_invariance_property(self, count, seed):
        pts = ring(count, seed=seed)
        sender = seed % count
        reference = relative_labels(pts, sender)
        rng = random.Random(seed + 1)
        frame = Frame(
            rotation=rng.uniform(0, 2 * math.pi), scale=rng.uniform(0.1, 5.0), handedness=1
        )
        origin = Vec2(rng.uniform(-5, 5), rng.uniform(-5, 5))
        view = [frame.to_local(p, origin) for p in pts]
        assert relative_labels(view, sender) == reference
