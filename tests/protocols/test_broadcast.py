"""Tests for one-to-many / one-to-all communication."""

from __future__ import annotations

import pytest

from repro.channels.mailbox import OverhearingMonitor
from repro.coding.bitstream import encode_message
from repro.errors import ProtocolError
from repro.protocols.broadcast import send_to_all, send_to_many
from repro.protocols.sync_granular import SyncGranularProtocol

from tests.conftest import make_harness


class TestSendToMany:
    def test_each_recipient_receives(self):
        h = make_harness(5, lambda: SyncGranularProtocol())
        queued = send_to_many(h.simulator.protocol_of(0), [1, 3], [1, 0])
        assert queued == 2
        h.run(2 * 4 + 2)
        for dst in (1, 3):
            assert [e.bit for e in h.simulator.protocol_of(dst).received] == [1, 0]
        assert h.simulator.protocol_of(2).received == ()

    def test_duplicates_rejected(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        with pytest.raises(ProtocolError):
            send_to_many(h.simulator.protocol_of(0), [1, 1], [0])


class TestSendToAll:
    def test_covers_everyone_but_sender(self):
        h = make_harness(5, lambda: SyncGranularProtocol())
        queued = send_to_all(h.simulator.protocol_of(2), [1])
        assert queued == 4
        h.run(2 * 4 + 2)
        for dst in (0, 1, 3, 4):
            assert [e.bit for e in h.simulator.protocol_of(dst).received] == [1]


class TestOverhearingBroadcast:
    def test_one_transmission_reaches_all_observers(self):
        """The efficient one-to-all: a single addressed message is
        reconstructed by every robot from its overheard log."""
        h = make_harness(6, lambda: SyncGranularProtocol())
        monitors = [OverhearingMonitor(h.simulator.protocol_of(i)) for i in range(6)]
        payload = b"broadcast by eavesdropping"
        bits = encode_message(payload)
        h.channel(0).send(1, payload)
        h.run(2 * len(bits) + 2)
        for observer in range(1, 6):
            log = monitors[observer].log
            assert len(log) == 1
            assert log[0].payload == payload
            assert (log[0].src, log[0].dst) == (0, 1)
        # One transmission: robot 0 moved 2 * bits times, nobody else.
        assert len(h.simulator.trace.movements_of(0)) == 2 * len(bits)
        for other in range(1, 6):
            assert h.simulator.trace.movements_of(other) == []
