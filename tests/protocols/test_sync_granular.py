"""Tests for the n-robot synchronous granular protocol (Sections 3.2-3.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import collision_audit, silence_audit
from repro.apps.harness import SwarmHarness, ring_positions
from repro.coding.bitstream import encode_message
from repro.errors import ProtocolError
from repro.geometry.granular import granular_radius
from repro.geometry.vec import Vec2
from repro.protocols.sync_granular import SyncGranularProtocol

from tests.conftest import make_harness, random_positions


class TestValidation:
    def test_naming_mode_checked(self):
        with pytest.raises(ProtocolError):
            SyncGranularProtocol(naming="bogus")  # type: ignore[arg-type]

    def test_excursion_fraction_checked(self):
        with pytest.raises(ProtocolError):
            SyncGranularProtocol(excursion_fraction=1.5)

    def test_identified_mode_needs_ids(self):
        with pytest.raises(ProtocolError):
            make_harness(4, lambda: SyncGranularProtocol(naming="identified"), identified=False)

    def test_needs_two_robots(self):
        from repro.model.robot import Robot
        from repro.model.simulator import Simulator

        with pytest.raises(ProtocolError):
            Simulator(
                [Robot(position=Vec2(0, 0), protocol=SyncGranularProtocol(), observable_id=0)]
            )


class TestPreprocessing:
    def test_granular_radius_is_half_nearest_neighbor(self):
        h = make_harness(6, lambda: SyncGranularProtocol(), frame_regime="identical")
        protocol = h.simulator.protocol_of(0)
        positions = [r.position for r in h.robots]
        expected = granular_radius(positions[0], positions[1:])
        assert protocol.granular_of(0).radius == pytest.approx(expected)

    def test_labels_cover_all_robots(self):
        h = make_harness(5, lambda: SyncGranularProtocol())
        protocol = h.simulator.protocol_of(2)
        for sender in range(5):
            labels = protocol.labels_used_by(sender)
            assert sorted(labels.values()) == list(range(5))

    def test_identified_labels_common_to_all_senders(self):
        h = make_harness(5, lambda: SyncGranularProtocol())
        protocol = h.simulator.protocol_of(0)
        reference = protocol.labels_used_by(0)
        for sender in range(1, 5):
            assert protocol.labels_used_by(sender) == reference

    def test_sec_labels_differ_per_sender(self):
        h = make_harness(
            6,
            lambda: SyncGranularProtocol(naming="sec"),
            identified=False,
            frame_regime="chirality",
        )
        protocol = h.simulator.protocol_of(0)
        labellings = {tuple(sorted(protocol.labels_used_by(s).items())) for s in range(6)}
        assert len(labellings) > 1


def exchange(h: SwarmHarness, src: int, dst: int, payload: bytes, max_steps: int = 4000):
    h.channel(src).send(dst, payload)
    ok = h.pump(lambda hh: len(hh.channel(dst).inbox) >= 1, max_steps=max_steps)
    assert ok, "message did not arrive"
    return h.channel(dst).inbox[0]


class TestDeliveryAcrossNamingModes:
    def test_identified(self):
        h = make_harness(6, lambda: SyncGranularProtocol(naming="identified"))
        msg = exchange(h, 0, 4, b"to four")
        assert msg.payload == b"to four"
        assert msg.src == 0

    def test_sod_anonymous(self):
        h = make_harness(
            6,
            lambda: SyncGranularProtocol(naming="sod"),
            identified=False,
            frame_regime="sense_of_direction",
        )
        assert exchange(h, 2, 5, b"sod").payload == b"sod"

    def test_sec_anonymous_chirality_only(self):
        h = make_harness(
            6,
            lambda: SyncGranularProtocol(naming="sec"),
            identified=False,
            frame_regime="chirality",
            frame_seed=5,
        )
        assert exchange(h, 1, 3, b"sec").payload == b"sec"

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=100),
    )
    def test_random_swarms_deliver(self, count, seed):
        src = seed % count
        dst = (seed + 1) % count
        if src == dst:
            return
        h = SwarmHarness(
            random_positions(count, seed=seed, min_separation=2.0),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=5.0,
        )
        h.simulator.protocol_of(src).send_bits(dst, [1, 0, 1])
        h.run(8)
        assert [e.bit for e in h.simulator.protocol_of(dst).received] == [1, 0, 1]


class TestConcurrentTraffic:
    def test_all_pairs_chatter(self):
        """Every robot simultaneously sends to every other robot."""
        n = 5
        h = make_harness(n, lambda: SyncGranularProtocol())
        for i in range(n):
            for j in range(n):
                if i != j:
                    h.simulator.protocol_of(i).send_bits(j, [i % 2, 1])
        h.run(2 * 2 * (n - 1) + 2)
        for j in range(n):
            received = h.simulator.protocol_of(j).received
            assert len(received) == 2 * (n - 1)
            by_src = {}
            for e in received:
                by_src.setdefault(e.src, []).append(e.bit)
            assert set(by_src) == set(range(n)) - {j}
            for src, bits in by_src.items():
                assert bits == [src % 2, 1]

    def test_fifo_per_stream(self):
        h = make_harness(4, lambda: SyncGranularProtocol())
        bits = [1, 1, 0, 1, 0, 0, 1, 0]
        h.simulator.protocol_of(0).send_bits(2, bits)
        h.run(2 * len(bits))
        assert [e.bit for e in h.simulator.protocol_of(2).received] == bits


class TestPaperProperties:
    def test_silent(self):
        """C3: idle robots never move."""
        h = make_harness(8, lambda: SyncGranularProtocol())
        h.simulator.protocol_of(0).send_bits(3, [1, 0])
        h.run(40)
        idle = [i for i in range(8) if i != 0]
        assert silence_audit(h.simulator.trace, idle) == []

    def test_collision_freedom(self):
        """C4: granular confinement keeps robots apart."""
        n = 6
        h = make_harness(n, lambda: SyncGranularProtocol())
        positions = [r.position for r in h.robots]
        initial_min = min(
            positions[i].distance_to(positions[j])
            for i in range(n)
            for j in range(i + 1, n)
        )
        for i in range(n):
            for j in range(n):
                if i != j:
                    h.simulator.protocol_of(i).send_bits(j, [1, 0, 1, 0])
        h.run(80)
        # Each robot stays inside its granular (radius = half its own
        # nearest-neighbour gap), so pairs can never touch; the minimum
        # distance cannot drop below a tenth of the initial one here.
        assert collision_audit(h.simulator.trace) > initial_min * 0.1
        assert collision_audit(h.simulator.trace) > 0.0

    def test_everyone_overhears_everything(self):
        """The redundancy remark: all robots decode all traffic."""
        h = make_harness(5, lambda: SyncGranularProtocol())
        h.simulator.protocol_of(0).send_bits(1, [1, 0])
        h.simulator.protocol_of(3).send_bits(2, [0, 1])
        h.run(10)
        for observer in range(5):
            overheard = h.simulator.protocol_of(observer).overheard
            streams = {(e.src, e.dst) for e in overheard}
            expected = set()
            if observer != 0:
                expected.add((0, 1))
            if observer != 3:
                expected.add((3, 2))
            assert streams == expected

    def test_framed_message_end_to_end(self):
        h = make_harness(12, lambda: SyncGranularProtocol())
        payload = "déaf & dumb robots…"
        bits = encode_message(payload)
        h.channel(9).send(3, payload)
        assert h.pump(lambda hh: len(hh.channel(3).inbox) >= 1, max_steps=2 * len(bits) + 10)
        assert h.channel(3).inbox[0].text() == payload
