"""Direct Monte-Carlo verification of Lemma 4.1.

    **Lemma 4.1.**  Let r and r' be two robots.  Assume that r always
    moves in the same direction each time it becomes active.  If r
    observes that the position of r' has changed twice, then r' must
    have observed that the position of r has changed at least once.

Rather than trusting the protocols built on it, this test checks the
statement itself: two instrumented robots move in fixed directions
whenever activated; both record, at each of their activations, whether
the peer's position differed from their previous sighting.  For every
window opened at an activation of ``r``, the first moment ``r`` has
counted two changes of ``r'`` must be preceded (within the window) by
an activation of ``r'`` that saw ``r`` changed.

Thousands of windows across random fair schedules — and the adversarial
round-robin — are checked.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BitEvent, Protocol
from repro.model.robot import Robot
from repro.model.scheduler import FairAsynchronousScheduler, RoundRobinScheduler
from repro.model.simulator import Simulator


class FixedDirectionWalker(Protocol):
    """Always moves one step in a fixed direction; logs sightings."""

    def __init__(self, direction: Vec2, step: float = 0.5) -> None:
        super().__init__()
        self._direction = direction.normalized()
        self._step = step
        # time -> (peer position seen, peer changed since my last look)
        self.sightings: Dict[int, Tuple[Vec2, bool]] = {}
        self._last_peer: Vec2 | None = None

    def _decode(self, observation: Observation) -> List[BitEvent]:
        peer = 1 - self.info.index
        position = observation.position_of(peer)
        changed = self._last_peer is not None and position != self._last_peer
        self.sightings[observation.time] = (position, changed)
        self._last_peer = position
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position + self._direction * self._step


def run_and_check(scheduler, steps: int) -> int:
    """Run a schedule; verify the lemma over all windows; return count."""
    a = FixedDirectionWalker(Vec2(1.0, 0.0))
    b = FixedDirectionWalker(Vec2(0.0, 1.0))
    robots = [
        Robot(position=Vec2(0.0, 0.0), protocol=a, sigma=1.0),
        Robot(position=Vec2(10.0, 0.0), protocol=b, sigma=1.0),
    ]
    sim = Simulator(robots, scheduler)
    sim.run(steps)

    a_times = sorted(a.sightings)
    b_times = sorted(b.sightings)
    windows_checked = 0

    # Every activation of `a` opens a window; find the first moment
    # `a` has seen `b` change twice and check `b` saw `a` change at
    # least once strictly inside the window.
    for start_idx, start in enumerate(a_times):
        changes = 0
        end = None
        for t in a_times[start_idx + 1 :]:
            if a.sightings[t][1]:
                changes += 1
                if changes == 2:
                    end = t
                    break
        if end is None:
            continue
        windows_checked += 1
        b_saw_change = any(
            b.sightings[v][1] for v in b_times if start < v <= end
        )
        assert b_saw_change, (
            f"Lemma 4.1 violated in window ({start}, {end}] under "
            f"{type(scheduler).__name__}"
        )
    return windows_checked


class TestLemma41:
    def test_round_robin(self):
        assert run_and_check(RoundRobinScheduler(), steps=200) > 50

    def test_fair_random_schedules(self):
        total = 0
        for seed in range(30):
            scheduler = FairAsynchronousScheduler(
                fairness_bound=7, activation_probability=0.3, seed=seed
            )
            total += run_and_check(scheduler, steps=150)
        assert total > 1000  # plenty of windows actually exercised

    def test_extreme_asymmetry(self):
        """One robot hyperactive, the other nearly starved."""
        for seed in range(10):
            scheduler = FairAsynchronousScheduler(
                fairness_bound=10, activation_probability=0.9, seed=seed
            )
            run_and_check(scheduler, steps=150)

    def test_one_change_is_not_enough(self):
        """The converse ablation at the lemma level: find a window
        where r saw r' change ONCE while r' never saw r move — the
        situation that sinks ack_threshold=1."""
        violations = 0
        for seed in range(40):
            a = FixedDirectionWalker(Vec2(1.0, 0.0))
            b = FixedDirectionWalker(Vec2(0.0, 1.0))
            robots = [
                Robot(position=Vec2(0.0, 0.0), protocol=a, sigma=1.0),
                Robot(position=Vec2(10.0, 0.0), protocol=b, sigma=1.0),
            ]
            sim = Simulator(
                robots,
                FairAsynchronousScheduler(
                    fairness_bound=7, activation_probability=0.3, seed=seed
                ),
            )
            sim.run(120)
            a_times = sorted(a.sightings)
            b_times = sorted(b.sightings)
            for start_idx, start in enumerate(a_times):
                end = next(
                    (t for t in a_times[start_idx + 1 :] if a.sightings[t][1]),
                    None,
                )
                if end is None:
                    continue
                if not any(b.sightings[v][1] for v in b_times if start < v <= end):
                    violations += 1
        assert violations > 0, "a single observed change should not imply receipt"
