"""Tests for the change watcher (Lemma 4.1 machinery)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation, ObservedRobot
from repro.protocols.acks import ChangeWatcher


def obs(self_index: int, *positions: Vec2, time: int = 0) -> Observation:
    robots = tuple(
        ObservedRobot(index=i, position=p) for i, p in enumerate(positions)
    )
    return Observation(time=time, self_index=self_index, robots=robots)


class TestValidation:
    def test_bad_count(self):
        with pytest.raises(ProtocolError):
            ChangeWatcher(0, 0)

    def test_bad_self(self):
        with pytest.raises(ProtocolError):
            ChangeWatcher(3, 3)

    def test_unknown_peer_queries(self):
        w = ChangeWatcher(3, 0)
        with pytest.raises(ProtocolError):
            w.changes_of(0)  # self is not a peer
        with pytest.raises(ProtocolError):
            w.last_seen(5)
        with pytest.raises(ProtocolError):
            w.reset([0])

    def test_wrong_observation(self):
        w = ChangeWatcher(2, 0)
        with pytest.raises(ProtocolError):
            w.observe(obs(1, Vec2(0, 0), Vec2(1, 0)))


class TestCounting:
    def test_first_observation_counts_nothing(self):
        w = ChangeWatcher(2, 0)
        changed = w.observe(obs(0, Vec2(0, 0), Vec2(5, 0)))
        assert changed == []
        assert w.changes_of(1) == 0

    def test_changes_accumulate(self):
        w = ChangeWatcher(2, 0)
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 0)))
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 1)))
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 1)))  # no change
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 2)))
        assert w.changes_of(1) == 2
        assert w.changed_at_least(1, 2)
        assert not w.changed_at_least(1, 3)

    def test_exact_comparison(self):
        """Any bit-level position difference counts (infinite precision)."""
        w = ChangeWatcher(2, 0)
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 0)))
        w.observe(obs(0, Vec2(0, 0), Vec2(5 + 1e-15, 0)))
        assert w.changes_of(1) == 1

    def test_self_not_watched(self):
        w = ChangeWatcher(3, 1)
        assert w.peers == [0, 2]

    def test_reset_keeps_last_seen(self):
        """The paper counts changes between consecutive sightings; a
        reset must not erase the baseline."""
        w = ChangeWatcher(2, 0)
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 0)))
        w.reset()
        # The peer moved while our counter was being reset.
        w.observe(obs(0, Vec2(0, 0), Vec2(6, 0)))
        assert w.changes_of(1) == 1
        assert w.last_seen(1) == Vec2(6, 0)

    def test_partial_reset(self):
        w = ChangeWatcher(3, 0)
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 0), Vec2(9, 0)))
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 1), Vec2(9, 1)))
        w.reset([1])
        assert w.changes_of(1) == 0
        assert w.changes_of(2) == 1

    def test_all_changed_at_least(self):
        w = ChangeWatcher(3, 0)
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 0), Vec2(9, 0)))
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 1), Vec2(9, 0)))
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 2), Vec2(9, 1)))
        assert not w.all_changed_at_least(2)
        w.observe(obs(0, Vec2(0, 0), Vec2(5, 2), Vec2(9, 2)))
        assert w.all_changed_at_least(2)
