"""Tests for the few-slice protocol (Section 5 extension)."""

from __future__ import annotations

import pytest

from repro.coding.logk_addressing import steps_per_message_logk
from repro.errors import ProtocolError
from repro.protocols.sync_logk import SyncLogKProtocol

from tests.conftest import make_harness


class TestValidation:
    def test_k_checked(self):
        with pytest.raises(ProtocolError):
            SyncLogKProtocol(k=1)

    def test_excursion_fraction_checked(self):
        with pytest.raises(ProtocolError):
            SyncLogKProtocol(k=2, excursion_fraction=0.0)


class TestDelivery:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_single_destination(self, k):
        h = make_harness(8, lambda: SyncLogKProtocol(k=k))
        h.simulator.protocol_of(0).send_bits(5, [1, 0, 1])
        h.run(60)
        assert [e.bit for e in h.simulator.protocol_of(5).received] == [1, 0, 1]

    def test_slice_count_independent_of_n(self):
        """The whole point: k+1 diameters regardless of swarm size."""
        h = make_harness(10, lambda: SyncLogKProtocol(k=2))
        protocol = h.simulator.protocol_of(0)
        assert protocol.k == 2
        assert protocol.digits_per_address == 4  # ceil(log2 10)

    def test_multiple_destinations_sequential(self):
        """Changing destination forces an address block between runs."""
        h = make_harness(6, lambda: SyncLogKProtocol(k=2))
        p = h.simulator.protocol_of(0)
        p.send_bits(2, [1, 1])
        p.send_bits(4, [0, 0])
        h.run(80)
        assert [e.bit for e in h.simulator.protocol_of(2).received] == [1, 1]
        assert [e.bit for e in h.simulator.protocol_of(4).received] == [0, 0]

    def test_empty_queue_flushes_pending_address(self):
        """Bits already sent must be attributed even when no further
        traffic follows (address-after-payload)."""
        h = make_harness(5, lambda: SyncLogKProtocol(k=2))
        h.simulator.protocol_of(1).send_bit(3, 1)
        h.run(40)
        received = h.simulator.protocol_of(3).received
        assert [e.bit for e in received] == [1]

    def test_step_cost_matches_model(self):
        """Measured instants track the closed-form step model."""
        n, k, payload = 8, 2, 5
        h = make_harness(n, lambda: SyncLogKProtocol(k=k))
        p = h.simulator.protocol_of(0)
        p.send_bits(6, [1] * payload)

        def delivered(hh):
            return len(hh.simulator.protocol_of(6).received) >= payload

        assert h.pump(delivered, max_steps=200)
        model = steps_per_message_logk(payload, n, k)
        # Delivery completes when the address block lands; the run may
        # be one step past the model because pumping checks after steps.
        assert h.simulator.time <= model + 2

    def test_overhearing_works(self):
        h = make_harness(6, lambda: SyncLogKProtocol(k=3))
        h.simulator.protocol_of(0).send_bits(2, [1, 0])
        h.run(60)
        for observer in range(1, 6):
            overheard = h.simulator.protocol_of(observer).overheard
            assert [(e.src, e.dst, e.bit) for e in overheard] == [
                (0, 2, 1),
                (0, 2, 0),
            ]

    def test_anonymous_sec_naming(self):
        h = make_harness(
            6,
            lambda: SyncLogKProtocol(k=2, naming="sec"),
            identified=False,
            frame_regime="chirality",
        )
        h.simulator.protocol_of(0).send_bits(4, [1, 1, 0])
        h.run(80)
        assert [e.bit for e in h.simulator.protocol_of(4).received] == [1, 1, 0]
