"""Tests for the n-robot asynchronous protocol (Section 4.2, Figure 6)."""

from __future__ import annotations

import pytest

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ProtocolError
from repro.model.scheduler import (
    FairAsynchronousScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)
from repro.protocols.async_n import AsyncNProtocol

from tests.conftest import make_harness


def swarm(
    count: int = 4,
    naming: str = "sec",
    seed: int = 0,
    scheduler=None,
    frame_regime: str = "chirality",
    identified: bool = False,
) -> SwarmHarness:
    if scheduler is None:
        scheduler = FairAsynchronousScheduler(fairness_bound=3, seed=seed)
    return make_harness(
        count,
        lambda: AsyncNProtocol(naming=naming),  # type: ignore[arg-type]
        scheduler=scheduler,
        identified=identified,
        frame_regime=frame_regime,
        sigma=4.0,
    )


def deliver(h: SwarmHarness, src: int, dst: int, bits, max_steps: int = 120_000):
    h.simulator.protocol_of(src).send_bits(dst, bits)

    def done(hh):
        return len(hh.simulator.protocol_of(dst).received) >= len(bits)

    assert h.pump(done, max_steps=max_steps), (
        f"only {len(h.simulator.protocol_of(dst).received)}/{len(bits)} bits arrived"
    )
    got = [e.bit for e in h.simulator.protocol_of(dst).received]
    assert got == list(bits)


class TestValidation:
    def test_ack_threshold(self):
        with pytest.raises(ProtocolError):
            AsyncNProtocol(ack_threshold=0)

    def test_robust_knobs_validated(self):
        with pytest.raises(ProtocolError):
            AsyncNProtocol(off_center_fraction=0.0)
        with pytest.raises(ProtocolError):
            AsyncNProtocol(off_center_fraction=0.5)  # >= kappa band
        with pytest.raises(ProtocolError):
            AsyncNProtocol(change_fraction=0.4)


class TestNoiseRobustMode:
    def test_delivery_under_sensing_noise(self):
        from repro.model.robot import Robot
        from repro.noise.simulator import NoisyObservationSimulator

        positions = ring_positions(4, radius=10.0, jitter=0.07)
        robots = [
            Robot(
                position=p,
                protocol=AsyncNProtocol(
                    naming="identified",
                    off_center_fraction=0.1,
                    change_fraction=0.02,
                    tolerate_ambiguity=True,
                ),
                sigma=4.0,
                observable_id=i,
            )
            for i, p in enumerate(positions)
        ]
        sim = NoisyObservationSimulator(
            robots,
            noise_std=0.05,
            seed=2,
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=2),
        )
        robots[0].protocol.send_bits(2, [1, 0])
        for _ in range(50_000):
            sim.step()
            if len(robots[2].protocol.received) >= 2:
                break
        assert [e.bit for e in robots[2].protocol.received] == [1, 0]

    def test_robust_mode_exact_sensing_still_works(self):
        h = swarm(count=4, seed=4)
        h2 = make_harness(
            4,
            lambda: AsyncNProtocol(
                naming="sec",
                off_center_fraction=0.1,
                change_fraction=0.02,
                tolerate_ambiguity=True,
            ),
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=4),
            identified=False,
            frame_regime="chirality",
            sigma=4.0,
        )
        deliver(h2, 0, 2, [0, 1, 1])


class TestRemark43:
    def test_active_robots_always_move(self):
        h = swarm(count=3, seed=9)
        h.run(300)
        trace = h.simulator.trace
        for step in trace.steps:
            before = trace.positions_at(step.time)
            for i in step.active:
                assert step.positions[i] != before[i]


class TestDelivery:
    @pytest.mark.parametrize("seed", range(4))
    def test_single_message(self, seed):
        h = swarm(count=4, seed=seed)
        deliver(h, 0, 2, [1, 0, 1])

    def test_three_robots(self):
        h = swarm(count=3, seed=1)
        deliver(h, 2, 0, [0, 1])

    def test_identified_naming(self):
        h = swarm(count=4, naming="identified", identified=True,
                  frame_regime="sense_of_direction", seed=2)
        deliver(h, 1, 3, [1, 1, 0])

    def test_sod_naming(self):
        h = swarm(count=4, naming="sod", frame_regime="sense_of_direction", seed=3)
        deliver(h, 0, 3, [0, 0, 1])

    def test_round_robin(self):
        h = swarm(count=3, scheduler=RoundRobinScheduler(activate_all_first=True))
        deliver(h, 0, 1, [1, 0])

    def test_synchronous_scheduler(self):
        h = swarm(count=4, scheduler=SynchronousScheduler())
        deliver(h, 0, 3, [1, 0, 1])

    def test_concurrent_senders(self):
        h = swarm(count=4, seed=7)
        h.simulator.protocol_of(0).send_bits(2, [1, 0])
        h.simulator.protocol_of(1).send_bits(3, [0, 1])

        def done(hh):
            return (
                len(hh.simulator.protocol_of(2).received) >= 2
                and len(hh.simulator.protocol_of(3).received) >= 2
            )

        assert h.pump(done, max_steps=200_000)
        assert [e.bit for e in h.simulator.protocol_of(2).received] == [1, 0]
        assert [e.bit for e in h.simulator.protocol_of(3).received] == [0, 1]

    def test_everyone_overhears(self):
        """The sender holds its excursion until *everyone* has seen it
        (changed-twice acknowledgements from all peers), so eventually
        every observer decodes the bit — not just the addressee."""
        h = swarm(count=4, seed=5)
        h.simulator.protocol_of(0).send_bits(2, [1])

        def done(hh):
            return all(
                len(hh.simulator.protocol_of(observer).overheard) >= 1
                for observer in range(1, 4)
            )

        assert h.pump(done, max_steps=120_000)
        for observer in range(1, 4):
            overheard = h.simulator.protocol_of(observer).overheard
            assert [(e.src, e.dst, e.bit) for e in overheard] == [(0, 2, 1)]


class TestConfinement:
    def test_robots_stay_inside_granulars(self):
        """Movements never leave the granular — collision freedom."""
        h = swarm(count=4, seed=3)
        protocol = h.simulator.protocol_of(0)
        radii = {
            j: protocol._granulars[j].radius for j in range(4)
        }
        h.simulator.protocol_of(0).send_bits(2, [1, 0, 1])
        h.run(3000)
        trace = h.simulator.trace
        homes = trace.initial_positions
        # Radii were computed in robot 0's local units; translate to
        # world by reusing world positions (frame scale is private, so
        # recompute from world geometry instead).
        from repro.geometry.granular import granular_radius

        world_radii = {
            j: granular_radius(homes[j], [p for i, p in enumerate(homes) if i != j])
            for j in range(4)
        }
        for time in range(len(trace) + 1):
            for j, pos in enumerate(trace.positions_at(time)):
                assert pos.distance_to(homes[j]) <= world_radii[j] + 1e-9

    def test_no_collisions_under_load(self):
        h = swarm(count=5, seed=6)
        for i in range(5):
            h.simulator.protocol_of(i).send_bits((i + 1) % 5, [1, 0])
        h.run(5000)
        assert h.simulator.trace.min_pairwise_distance() > 0.5
