"""Negative tests: each protocol genuinely needs its stated capabilities.

The paper's whole research program is mapping capabilities (IDs, sense
of direction, chirality) to solvable tasks.  These tests check the
map's *lower* edges: run each protocol in a regime weaker than it
assumes and watch communication break.  Breakage may surface as wrong
bits, decoding errors, or delivery timeouts — any of those falsifies
correct explicit communication.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.geometry.frames import Frame
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.simulator import Simulator
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol


def run_and_collect(robots, bits, src, dst, steps):
    sim = Simulator(robots)
    robots[src].protocol.send_bits(dst, bits)
    try:
        sim.run(steps)
    except ReproError:
        return None  # decoding broke down: capability violation surfaced
    return [e.bit for e in robots[dst].protocol.received]


class TestSyncTwoNeedsChirality:
    def test_opposite_handedness_flips_bits(self):
        """Without shared chirality, 'right' and 'left' disagree: every
        bit arrives inverted."""
        robots = [
            Robot(position=Vec2(0, 0), protocol=SyncTwoProtocol(), frame=Frame(), sigma=10.0),
            Robot(
                position=Vec2(10, 0),
                protocol=SyncTwoProtocol(),
                frame=Frame(handedness=-1),
                sigma=10.0,
            ),
        ]
        bits = [1, 0, 0, 1]
        got = run_and_collect(robots, bits, src=0, dst=1, steps=10)
        assert got == [1 - b for b in bits]

    def test_shared_left_handedness_is_fine(self):
        """Chirality is *shared* handedness, not right-handedness."""
        robots = [
            Robot(
                position=Vec2(0, 0),
                protocol=SyncTwoProtocol(),
                frame=Frame(handedness=-1),
                sigma=10.0,
            ),
            Robot(
                position=Vec2(10, 0),
                protocol=SyncTwoProtocol(),
                frame=Frame(handedness=-1, rotation=2.0, scale=3.0),
                sigma=10.0,
            ),
        ]
        bits = [1, 0, 0, 1]
        assert run_and_collect(robots, bits, src=0, dst=1, steps=10) == bits


def granular_swarm(frames, naming, ids=True):
    positions = [Vec2(0, 0), Vec2(10, 0), Vec2(4, 9), Vec2(-5, 7)]
    return [
        Robot(
            position=p,
            protocol=SyncGranularProtocol(naming=naming),
            frame=f,
            sigma=5.0,
            observable_id=i if ids else None,
        )
        for i, (p, f) in enumerate(zip(positions, frames))
    ]


class TestGranularNeedsSenseOfDirection:
    def test_rotated_frames_break_identified_routing(self):
        """The §3.2 scheme aligns diameter 0 on a common North; rotated
        frames mis-route or garble."""
        frames = [Frame(), Frame(rotation=1.4), Frame(rotation=3.0), Frame(rotation=5.1)]
        robots = granular_swarm(frames, naming="identified")
        bits = [1, 0, 1]
        got = run_and_collect(robots, bits, src=0, dst=2, steps=10)
        # Correct delivery would be `bits`; anything else (wrong bits,
        # missing bits, or a decoding error -> None) shows the break.
        assert got != bits

    def test_shared_rotation_nonzero_also_breaks(self):
        """Even a *common* rotation breaks §3.2 if it is not the North
        the observers assume... unless it is shared exactly, in which
        case it IS a sense of direction.  Sanity check: shared rotated
        frames still work (North is whatever the shared +y is)."""
        frames = [Frame(rotation=1.0)] * 4
        robots = granular_swarm(frames, naming="identified")
        bits = [1, 0, 1]
        assert run_and_collect(robots, bits, src=0, dst=2, steps=10) == bits


class TestNamingModesMustMatch:
    def test_mixed_naming_modes_garble(self):
        """A swarm must agree on the naming convention: a sender using
        sense-of-direction labels is mis-decoded by a receiver that
        reconstructs SEC relative labels."""
        positions = [Vec2(0, 0), Vec2(10, 0), Vec2(4, 9), Vec2(-5, 7)]
        protocols = [
            SyncGranularProtocol(naming="sod"),
            SyncGranularProtocol(naming="sec"),
            SyncGranularProtocol(naming="sod"),
            SyncGranularProtocol(naming="sod"),
        ]
        robots = [
            Robot(position=p, protocol=protocols[i], frame=Frame(), sigma=5.0)
            for i, p in enumerate(positions)
        ]
        bits = [1, 0, 1]
        # Robot 1 decodes robot 0's sod-labelled excursions with its
        # sec labelling: the bits mis-route or the decode errors out.
        got = run_and_collect(robots, bits, src=0, dst=1, steps=10)
        assert got != bits


class TestSecNamingNeedsChirality:
    def test_mixed_handedness_breaks_sec_routing(self):
        frames = [Frame(), Frame(rotation=1.4), Frame(rotation=3.0, handedness=-1), Frame(rotation=5.1)]
        robots = granular_swarm(frames, naming="sec", ids=False)
        bits = [1, 0, 1]
        got = run_and_collect(robots, bits, src=0, dst=2, steps=10)
        # Robot 2 is left-handed: it reconstructs the sender's naming
        # with the wrong sweep, so it decodes wrongly (or not at all).
        assert got != bits

    def test_chirality_only_is_enough(self):
        frames = [
            Frame(rotation=0.3, scale=2.0),
            Frame(rotation=1.4, scale=0.5),
            Frame(rotation=3.0, scale=1.1),
            Frame(rotation=5.1, scale=4.0),
        ]
        robots = granular_swarm(frames, naming="sec", ids=False)
        bits = [1, 0, 1]
        assert run_and_collect(robots, bits, src=0, dst=2, steps=10) == bits
