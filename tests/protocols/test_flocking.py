"""Tests for the flocking overlay (Section 5 remark)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.protocols.flocking import FlockingProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol

from tests.conftest import make_harness


def flock_harness(count: int = 5, speed: float = 0.02, direction=Vec2(0.0, 1.0)):
    return make_harness(
        count,
        lambda: FlockingProtocol(
            SyncGranularProtocol(), direction=direction, speed_fraction=speed
        ),
        sigma=6.0,
    )


class TestValidation:
    def test_zero_direction_rejected(self):
        with pytest.raises(ProtocolError):
            FlockingProtocol(SyncGranularProtocol(), direction=Vec2(0, 0))

    def test_speed_positive(self):
        with pytest.raises(ProtocolError):
            FlockingProtocol(SyncGranularProtocol(), speed_fraction=0.0)

    def test_drift_must_fit_in_sigma(self):
        with pytest.raises(ProtocolError):
            make_harness(
                4,
                lambda: FlockingProtocol(SyncGranularProtocol(), speed_fraction=5.0),
                sigma=1.0,
            )


class TestFlockingCommunication:
    def test_messages_survive_the_drift(self):
        h = flock_harness()
        h.channel(0).send(3, "while flying")
        assert h.pump(lambda hh: len(hh.channel(3).inbox) >= 1, max_steps=1000)
        assert h.channel(3).inbox[0].text() == "while flying"

    def test_swarm_actually_travels(self):
        h = flock_harness(speed=0.05)
        h.run(100)
        trace = h.simulator.trace
        for i in range(h.count):
            moved = trace.initial_positions[i].distance_to(h.simulator.positions[i])
            assert moved > 10.0, f"robot {i} did not flock"

    def test_formation_preserved(self):
        """The drift is common: relative geometry is unchanged whenever
        no one is mid-excursion (idle steps)."""
        h = flock_harness()
        h.run(50)  # all idle: pure flocking
        initial = h.simulator.trace.initial_positions
        final = h.simulator.positions
        for i in range(h.count):
            for j in range(i + 1, h.count):
                assert initial[i].distance_to(initial[j]) == pytest.approx(
                    final[i].distance_to(final[j]), rel=1e-9
                )

    def test_direction_of_travel(self):
        h = flock_harness(direction=Vec2(1.0, 0.0), speed=0.03)
        h.run(60)
        delta = h.simulator.positions[0] - h.simulator.trace.initial_positions[0]
        assert delta.x > 0.0
        assert abs(delta.y) < 1e-6 * abs(delta.x)

    def test_bits_identical_to_static_run(self):
        """De-drifted decoding is bit-for-bit what the static swarm
        produces."""
        bits = [1, 0, 1, 1, 0, 0, 1]
        static = make_harness(5, lambda: SyncGranularProtocol(), sigma=6.0)
        static.simulator.protocol_of(0).send_bits(2, bits)
        static.run(2 * len(bits) + 2)
        static_events = [
            (e.src, e.dst, e.bit) for e in static.simulator.protocol_of(2).received
        ]

        flying = flock_harness()
        flying.simulator.protocol_of(0).send_bits(2, bits)
        flying.run(2 * len(bits) + 2)
        flying_events = [
            (e.src, e.dst, e.bit) for e in flying.simulator.protocol_of(2).received
        ]
        assert flying_events == static_events == [(0, 2, b) for b in bits]

    def test_wraps_pair_protocol_too(self):
        from repro.apps.harness import SwarmHarness

        h = SwarmHarness(
            [Vec2(0, 0), Vec2(10, 0)],
            protocol_factory=lambda: FlockingProtocol(
                SyncTwoProtocol(), speed_fraction=0.01
            ),
            identified=False,
            sigma=12.0,
        )
        h.channel(0).send(1, "airborne")
        assert h.pump(lambda hh: len(hh.channel(1).inbox) >= 1, max_steps=500)
        assert h.channel(1).inbox[0].text() == "airborne"

    def test_transparent_delegation(self):
        h = flock_harness()
        wrapper = h.simulator.protocol_of(0)
        assert isinstance(wrapper, FlockingProtocol)
        wrapper.send_bit(1, 1)
        assert wrapper.pending_bits == 1
        assert wrapper.inner.pending_bits == 1
