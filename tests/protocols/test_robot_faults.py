"""Robot-level faults: what a crashed (motionless) robot does to each
protocol family.

The paper treats communication-device faults (the wireless backup
story) but not robot crash faults.  These tests document the induced
behaviour of the reproduction:

* synchronous protocols don't wait for anyone — traffic between live
  robots is unaffected by a crashed bystander;
* the asynchronous n-robot protocol waits for *every* robot's implicit
  acknowledgement, so a single crashed robot deadlocks all senders — a
  real limitation inherited from the paper's design (Lemma 4.1 needs
  the peer to keep moving).
"""

from __future__ import annotations

from typing import List

from repro.apps.harness import ring_positions
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BitEvent, Protocol
from repro.model.robot import Robot
from repro.model.scheduler import FairAsynchronousScheduler
from repro.model.simulator import Simulator
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.sync_granular import SyncGranularProtocol


class CrashedRobot(Protocol):
    """A robot that observes nothing and never moves."""

    def _decode(self, observation: Observation) -> List[BitEvent]:
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position


class TestSynchronousTolerance:
    def test_live_traffic_unaffected_by_crashed_bystander(self):
        positions = ring_positions(5, radius=10.0, jitter=0.06)
        protocols: List[Protocol] = [
            SyncGranularProtocol() if i != 4 else CrashedRobot() for i in range(5)
        ]
        robots = [
            Robot(position=p, protocol=protocols[i], sigma=4.0, observable_id=i)
            for i, p in enumerate(positions)
        ]
        sim = Simulator(robots)
        protocols[0].send_bits(2, [1, 0, 1])
        sim.run(8)
        assert [e.bit for e in protocols[2].received] == [1, 0, 1]

    def test_messages_to_crashed_robot_are_simply_unheard(self):
        positions = ring_positions(4, radius=10.0, jitter=0.06)
        protocols: List[Protocol] = [
            SyncGranularProtocol() if i != 3 else CrashedRobot() for i in range(4)
        ]
        robots = [
            Robot(position=p, protocol=protocols[i], sigma=4.0, observable_id=i)
            for i, p in enumerate(positions)
        ]
        sim = Simulator(robots)
        protocols[0].send_bits(3, [1])
        sim.run(6)
        assert protocols[3].received == ()
        # Every live robot still overheard it (redundancy would let a
        # recovered robot be caught up by a relay).
        for i in (1, 2):
            assert [(e.src, e.dst, e.bit) for e in protocols[i].overheard] == [(0, 3, 1)]


class TestAsynchronousDeadlock:
    def test_one_crashed_robot_stalls_all_senders(self):
        """The all-peers acknowledgement rule is crash-intolerant: the
        sender keeps waiting for the dead robot to change twice."""
        positions = ring_positions(4, radius=10.0, jitter=0.07)
        protocols: List[Protocol] = [
            AsyncNProtocol(naming="identified") if i != 3 else CrashedRobot()
            for i in range(4)
        ]
        robots = [
            Robot(position=p, protocol=protocols[i], sigma=4.0, observable_id=i)
            for i, p in enumerate(positions)
        ]
        sim = Simulator(
            robots, FairAsynchronousScheduler(fairness_bound=3, seed=2)
        )
        protocols[0].send_bits(1, [1])
        sim.run(3000)
        # The excursion is held forever; the bit is seen once (an
        # excursion IS visible) but the sender can never finish its
        # return+separator cycle for a *second* bit.
        protocols[0].send_bits(1, [0])
        sim.run(3000)
        received = [e.bit for e in protocols[1].received]
        assert received in ([1], [])  # the follow-up bit never lands
        assert received != [1, 0]
