"""Tests for the asynchronous two-robot protocol (Section 4.1, Figure 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.harness import SwarmHarness
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.scheduler import (
    FairAsynchronousScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)
from repro.protocols.async_two import AsyncTwoProtocol


def pair(
    scheduler=None,
    bounded: bool = False,
    distance: float = 10.0,
    seed: int = 0,
) -> SwarmHarness:
    if scheduler is None:
        scheduler = FairAsynchronousScheduler(fairness_bound=4, seed=seed)
    return SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(distance, 0.0)],
        protocol_factory=lambda: AsyncTwoProtocol(bounded=bounded),
        scheduler=scheduler,
        identified=False,
        sigma=distance,
    )


def deliver(h: SwarmHarness, src: int, bits, max_steps: int = 30_000):
    h.simulator.protocol_of(src).send_bits(1 - src, bits)

    def done(hh):
        return len(hh.simulator.protocol_of(1 - src).received) >= len(bits)

    assert h.pump(done, max_steps=max_steps), "bits lost"
    got = [e.bit for e in h.simulator.protocol_of(1 - src).received]
    assert got[: len(bits)] == list(bits)
    assert got[len(bits):] == []  # no duplicated bits either


class TestValidation:
    def test_needs_two(self):
        with pytest.raises(ProtocolError):
            SwarmHarness(
                [Vec2(0, 0), Vec2(5, 0), Vec2(0, 5)],
                protocol_factory=lambda: AsyncTwoProtocol(),
                identified=False,
            )

    def test_params_checked(self):
        with pytest.raises(ProtocolError):
            AsyncTwoProtocol(ack_threshold=0)
        with pytest.raises(ProtocolError):
            AsyncTwoProtocol(step_fraction=0.5)


class TestRemark43:
    def test_active_robots_always_move(self):
        """Remark 4.3 — the liveness the acknowledgements feed on."""
        h = pair(seed=5)
        h.run(200)
        trace = h.simulator.trace
        for step in trace.steps:
            before = trace.positions_at(step.time)
            for i in step.active:
                assert step.positions[i] != before[i], (
                    f"active robot {i} did not move at t={step.time}"
                )


class TestDelivery:
    def test_figure5_exchange(self):
        """Figure 5: r sends '001...', r' sends '0...'."""
        h = pair(seed=11)
        h.simulator.protocol_of(0).send_bits(1, [0, 0, 1])
        h.simulator.protocol_of(1).send_bits(0, [0])

        def done(hh):
            return (
                len(hh.simulator.protocol_of(1).received) >= 3
                and len(hh.simulator.protocol_of(0).received) >= 1
            )

        assert h.pump(done, max_steps=30_000)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == [0, 0, 1]
        assert [e.bit for e in h.simulator.protocol_of(0).received] == [0]

    @pytest.mark.parametrize("seed", range(6))
    def test_random_fair_schedules(self, seed):
        h = pair(seed=seed)
        deliver(h, 0, [1, 0, 1, 1, 0])

    @pytest.mark.parametrize("bound", [1, 2, 5, 9])
    def test_fairness_bounds(self, bound):
        h = pair(scheduler=FairAsynchronousScheduler(fairness_bound=bound, seed=3))
        deliver(h, 0, [1, 0, 0, 1])

    def test_round_robin_worst_case(self):
        h = pair(scheduler=RoundRobinScheduler())
        deliver(h, 0, [1, 1, 0])

    def test_synchronous_scheduler_also_works(self):
        """Async protocols must tolerate the strongest scheduler too."""
        h = pair(scheduler=SynchronousScheduler())
        deliver(h, 0, [0, 1, 0])

    def test_duplex(self):
        h = pair(seed=17)
        h.simulator.protocol_of(0).send_bits(1, [1, 0, 1])
        h.simulator.protocol_of(1).send_bits(0, [0, 1])

        def done(hh):
            return (
                len(hh.simulator.protocol_of(1).received) >= 3
                and len(hh.simulator.protocol_of(0).received) >= 2
            )

        assert h.pump(done, max_steps=40_000)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == [1, 0, 1]
        assert [e.bit for e in h.simulator.protocol_of(0).received] == [0, 1]

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_arbitrary_bits_arbitrary_schedules(self, bits, seed):
        h = pair(seed=seed)
        deliver(h, 0, bits)


class TestBoundedVariant:
    def test_unbounded_drifts_apart(self):
        """The paper's noted drawback of the base protocol."""
        h = pair(seed=2)
        h.run(400)
        assert h.simulator.positions[0].distance_to(h.simulator.positions[1]) > 20.0

    def test_bounded_stays_in_bands(self):
        h = pair(bounded=True, seed=2)
        h.simulator.protocol_of(0).send_bits(1, [1, 0, 1, 0, 1])
        h.run(2000)
        trace = h.simulator.trace
        for time in range(len(trace) + 1):
            a, b = trace.positions_at(time)
            assert a.distance_to(Vec2(0, 0)) < 5.0
            assert b.distance_to(Vec2(10, 0)) < 5.0

    def test_bounded_never_collides(self):
        h = pair(bounded=True, seed=4)
        h.simulator.protocol_of(0).send_bits(1, [1] * 4)
        h.simulator.protocol_of(1).send_bits(0, [0] * 4)
        h.run(3000)
        assert h.simulator.trace.min_pairwise_distance() > 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_bounded_delivers(self, seed):
        h = pair(bounded=True, seed=seed)
        deliver(h, 0, [0, 1, 1, 0])


class TestAckThreshold:
    def test_paper_threshold_is_two(self):
        assert AsyncTwoProtocol().__dict__["_ack"] == 2


class TestNoiseRobustKnobs:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            AsyncTwoProtocol(on_line_fraction=0.0)
        with pytest.raises(ProtocolError):
            AsyncTwoProtocol(on_line_fraction=0.2)  # >= step_fraction
        with pytest.raises(ProtocolError):
            AsyncTwoProtocol(change_fraction=-0.1)
        with pytest.raises(ProtocolError):
            AsyncTwoProtocol(change_fraction=0.125)  # >= step_fraction

    def test_robust_delivery_under_noise(self):
        from repro.model.robot import Robot
        from repro.noise.simulator import NoisyObservationSimulator

        robots = [
            Robot(
                position=p,
                protocol=AsyncTwoProtocol(
                    on_line_fraction=0.05, change_fraction=0.02
                ),
                sigma=10.0,
            )
            for p in (Vec2(0.0, 0.0), Vec2(10.0, 0.0))
        ]
        sim = NoisyObservationSimulator(
            robots,
            noise_std=0.03,
            seed=5,
            scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=5),
        )
        robots[0].protocol.send_bits(1, [1, 0, 1])
        for _ in range(20_000):
            sim.step()
            if len(robots[1].protocol.received) >= 3:
                break
        assert [e.bit for e in robots[1].protocol.received] == [1, 0, 1]

    def test_robust_mode_exact_sensing_still_works(self):
        h = pair(seed=3)
        h2 = SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
            protocol_factory=lambda: AsyncTwoProtocol(
                on_line_fraction=0.05, change_fraction=0.02
            ),
            scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=3),
            identified=False,
            sigma=10.0,
        )
        h2.simulator.protocol_of(0).send_bits(1, [0, 1, 1])
        assert h2.pump(
            lambda hh: len(hh.simulator.protocol_of(1).received) >= 3,
            max_steps=30_000,
        )
        assert [e.bit for e in h2.simulator.protocol_of(1).received] == [0, 1, 1]
