"""Property-based tests on protocol-level invariants.

Hypothesis drives random configurations, payloads and fair schedules
through the protocols and checks the paper's guarantees wholesale:
Emission + Receipt (everything queued is delivered, exactly once, in
order), silence, granular confinement, and observer consensus.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.harness import SwarmHarness
from repro.geometry.granular import granular_radius
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.sync_granular import SyncGranularProtocol

bits_strategy = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12)


def scattered(count: int, seed: int):
    rng = random.Random(seed)
    points = []
    while len(points) < count:
        p = Vec2(rng.uniform(-25, 25), rng.uniform(-25, 25))
        if all(p.distance_to(q) > 3.0 for q in points):
            points.append(p)
    return points


class TestSyncGranularProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10_000),
        bits_strategy,
    )
    def test_emission_and_receipt_exactly_once_in_order(self, count, seed, bits):
        src = seed % count
        dst = (seed + 1) % count
        if src == dst:
            dst = (dst + 1) % count
        h = SwarmHarness(
            scattered(count, seed),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=5.0,
        )
        h.simulator.protocol_of(src).send_bits(dst, bits)
        h.run(2 * len(bits) + 2)
        received = h.simulator.protocol_of(dst).received
        assert [e.bit for e in received] == bits  # exactly once, in order
        assert all(e.src == src for e in received)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_granular_confinement(self, count, seed):
        """No robot ever leaves the disc of radius half-NN-distance
        around its home — the collision-avoidance invariant."""
        positions = scattered(count, seed)
        h = SwarmHarness(
            positions, protocol_factory=lambda: SyncGranularProtocol(), sigma=5.0
        )
        rng = random.Random(seed)
        for _ in range(count):
            i = rng.randrange(count)
            j = rng.randrange(count)
            if i != j:
                h.simulator.protocol_of(i).send_bits(j, [rng.randint(0, 1)] * 3)
        h.run(30)
        radii = [
            granular_radius(positions[i], [p for k, p in enumerate(positions) if k != i])
            for i in range(count)
        ]
        trace = h.simulator.trace
        for t in range(len(trace) + 1):
            for i, p in enumerate(trace.positions_at(t)):
                assert p.distance_to(positions[i]) <= radii[i] + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_observer_consensus(self, count, seed):
        """All observers decode the identical event stream (src, dst,
        bit, time) — the redundancy property as a consensus check."""
        h = SwarmHarness(
            scattered(count, seed),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=5.0,
        )
        src = seed % count
        dst = (src + 1) % count
        h.simulator.protocol_of(src).send_bits(dst, [1, 0, 1])
        h.run(10)
        streams = set()
        for observer in range(count):
            if observer == src:
                continue
            events = tuple(
                (e.src, e.dst, e.bit) for e in h.simulator.protocol_of(observer).overheard
            )
            streams.add(events)
        assert len(streams) == 1
        assert streams.pop() == ((src, dst, 1), (src, dst, 0), (src, dst, 1))


class TestAsyncNProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=3, max_value=5),
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_receipt_exactly_once(self, count, bits, seed):
        from repro.apps.harness import ring_positions
        from repro.protocols.async_n import AsyncNProtocol

        h = SwarmHarness(
            ring_positions(count, radius=10.0, jitter=0.07),
            protocol_factory=lambda: AsyncNProtocol(naming="sec"),
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=seed),
            identified=False,
            frame_regime="chirality",
            sigma=4.0,
        )
        dst = (seed % (count - 1)) + 1
        h.simulator.protocol_of(0).send_bits(dst, bits)
        delivered = h.pump(
            lambda hh: len(hh.simulator.protocol_of(dst).received) >= len(bits),
            max_steps=200_000,
        )
        assert delivered, "Receipt violated"
        got = [e.bit for e in h.simulator.protocol_of(dst).received]
        assert got == bits


class TestAsyncTwoProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        bits_strategy,
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=6),
        st.booleans(),
    )
    def test_receipt_exactly_once_under_fair_schedules(self, bits, seed, bound, bounded):
        h = SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
            protocol_factory=lambda: AsyncTwoProtocol(bounded=bounded),
            scheduler=FairAsynchronousScheduler(fairness_bound=bound, seed=seed),
            identified=False,
            sigma=10.0,
        )
        h.simulator.protocol_of(0).send_bits(1, bits)
        delivered = h.pump(
            lambda hh: len(hh.simulator.protocol_of(1).received) >= len(bits),
            max_steps=40_000,
        )
        assert delivered, "Receipt violated: bits never arrived"
        got = [e.bit for e in h.simulator.protocol_of(1).received]
        assert got == bits  # no loss, no duplication, no reordering

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_horizon_line_invariant(self, seed):
        """Both robots stay on H except during perpendicular
        excursions, and every movement is axis-aligned w.r.t. H."""
        h = SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
            protocol_factory=lambda: AsyncTwoProtocol(),
            scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=seed),
            identified=False,
            sigma=10.0,
        )
        h.simulator.protocol_of(0).send_bits(1, [1, 0])
        h.run(400)
        for index in (0, 1):
            for t, before, after in h.simulator.trace.movements_of(index):
                dx = abs(after.x - before.x)
                dy = abs(after.y - before.y)
                assert dx < 1e-9 or dy < 1e-9
