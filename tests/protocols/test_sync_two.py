"""Tests for the two-robot synchronous protocol (Section 3.1, Figure 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import silence_audit
from repro.coding.bitstream import encode_message
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.simulator import Simulator
from repro.protocols.sync_two import SyncTwoProtocol

from tests.conftest import make_harness
from repro.apps.harness import SwarmHarness


def pair_harness(alphabet_size: int = 2, distance: float = 10.0, **kwargs) -> SwarmHarness:
    return SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(distance, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(alphabet_size=alphabet_size),
        identified=False,
        sigma=kwargs.pop("sigma", distance),
        **kwargs,
    )


class TestValidation:
    def test_needs_exactly_two(self):
        with pytest.raises(ProtocolError):
            SwarmHarness(
                [Vec2(0, 0), Vec2(5, 0), Vec2(0, 5)],
                protocol_factory=lambda: SyncTwoProtocol(),
                identified=False,
            )

    def test_span_fraction_range(self):
        with pytest.raises(ProtocolError):
            SyncTwoProtocol(span_fraction=0.0)
        with pytest.raises(ProtocolError):
            SyncTwoProtocol(span_fraction=0.6)

    def test_sigma_must_cover_span(self):
        with pytest.raises(ProtocolError):
            SwarmHarness(
                [Vec2(0, 0), Vec2(100, 0)],
                protocol_factory=lambda: SyncTwoProtocol(),
                identified=False,
                sigma=0.1,
            )


class TestBitExchange:
    def test_single_bits(self):
        h = pair_harness()
        h.simulator.protocol_of(0).send_bit(1, 0)
        h.simulator.protocol_of(0).send_bit(1, 1)
        h.run(6)
        received = h.simulator.protocol_of(1).received
        assert [e.bit for e in received] == [0, 1]
        assert [e.src for e in received] == [0, 0]

    def test_simultaneous_duplex(self):
        """Both robots send at the same time (Figure 1 shows both
        moving): each decodes the other."""
        h = pair_harness()
        h.simulator.protocol_of(0).send_bits(1, [1, 0, 1, 1])
        h.simulator.protocol_of(1).send_bits(0, [0, 0, 1, 0])
        h.run(10)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == [1, 0, 1, 1]
        assert [e.bit for e in h.simulator.protocol_of(0).received] == [0, 0, 1, 0]

    def test_bit_zero_steps_right(self):
        """Figure 1's coding: '0' is a step on the sender's right
        w.r.t. the direction of the peer."""
        h = pair_harness()
        h.simulator.protocol_of(0).send_bit(1, 0)
        h.simulator.step()
        pos = h.simulator.positions[0]
        # Robot 0 faces +x (toward the peer); its right is -y.
        assert pos.y < 0.0
        assert pos.x == pytest.approx(0.0, abs=1e-9)

    def test_bit_one_steps_left(self):
        h = pair_harness()
        h.simulator.protocol_of(0).send_bit(1, 1)
        h.simulator.step()
        assert h.simulator.positions[0].y > 0.0

    def test_returns_home_after_each_bit(self):
        h = pair_harness()
        h.simulator.protocol_of(0).send_bit(1, 1)
        h.simulator.step()
        h.simulator.step()
        assert h.simulator.positions[0] == Vec2(0.0, 0.0)

    def test_two_steps_per_bit(self):
        h = pair_harness()
        bits = encode_message(b"ab")
        h.simulator.protocol_of(0).send_bits(1, bits)
        needed = 2 * len(bits)
        h.run(needed)
        assert len(h.simulator.protocol_of(1).received) == len(bits)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=24))
    def test_arbitrary_bitstring_roundtrip(self, bits):
        h = pair_harness()
        h.simulator.protocol_of(0).send_bits(1, bits)
        h.run(2 * len(bits) + 2)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == bits


class TestSilence:
    def test_idle_robots_never_move(self):
        h = pair_harness()
        h.run(20)
        assert silence_audit(h.simulator.trace, [0, 1]) == []

    def test_silent_after_transmission(self):
        h = pair_harness()
        h.simulator.protocol_of(0).send_bit(1, 0)
        h.run(30)
        moves = h.simulator.trace.movements_of(0)
        # Exactly two movements: out and back.
        assert len(moves) == 2


class TestSymbolCoding:
    """The Section 3.1 'send bytes' remark."""

    @pytest.mark.parametrize("alphabet", [4, 16, 256])
    def test_roundtrip(self, alphabet):
        h = pair_harness(alphabet_size=alphabet)
        bits = encode_message(b"symbols!")
        h.simulator.protocol_of(0).send_bits(1, bits)
        h.run(2 * len(bits))  # far more than needed
        received = [e.bit for e in h.simulator.protocol_of(1).received]
        assert received[: len(bits)] == bits

    def test_move_count_shrinks_by_log_b(self):
        """One excursion carries log2(B) bits."""
        bits = encode_message(b"0123456789abcdef")  # 144 bits
        moves = {}
        for alphabet in (2, 16, 256):
            h = pair_harness(alphabet_size=alphabet)
            h.simulator.protocol_of(0).send_bits(1, bits)
            h.run(2 * len(bits) + 4)
            moves[alphabet] = len(h.simulator.trace.movements_of(0))
        assert moves[2] == pytest.approx(2 * len(bits), abs=2)
        assert moves[16] == pytest.approx(moves[2] / 4, abs=2)
        assert moves[256] == pytest.approx(moves[2] / 8, abs=2)


class TestScaleInvariance:
    def test_private_unit_measures_do_not_matter(self):
        """Decoding is sign/ratio based, so wildly different frame
        scales are fine (deaf robots have no common metre)."""
        from repro.geometry.frames import Frame

        robots = [
            Robot(
                position=Vec2(0, 0),
                protocol=SyncTwoProtocol(),
                frame=Frame(scale=0.05),
                sigma=10.0,
            ),
            Robot(
                position=Vec2(10, 0),
                protocol=SyncTwoProtocol(),
                frame=Frame(scale=13.0),
                sigma=10.0,
            ),
        ]
        sim = Simulator(robots)
        robots[0].protocol.send_bits(1, [1, 0, 0, 1])
        sim.run(10)
        assert [e.bit for e in robots[1].protocol.received] == [1, 0, 0, 1]
