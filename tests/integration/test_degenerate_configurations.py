"""Robustness on degenerate configurations.

The paper's figures use comfortable general-position layouts; real
deployments will not.  These tests drive the full stack through the
nasty special cases: collinear swarms, robots on shared SEC radii,
two-robot "swarms" in the n-robot protocols, extreme aspect ratios,
and tiny/huge coordinate scales.
"""

from __future__ import annotations

import pytest

from repro.apps.harness import SwarmHarness
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2
from repro.geometry.voronoi import voronoi_diagram
from repro.naming.sec_naming import relative_labels
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol


def collinear(count: int, spacing: float = 10.0):
    return [Vec2(spacing * i, 0.0) for i in range(count)]


class TestCollinearSwarms:
    def test_voronoi_on_a_line(self):
        diagram = voronoi_diagram(collinear(5))
        for site, cell in diagram.items():
            assert cell.contains(site)
            assert cell.inradius == pytest.approx(5.0)

    def test_sec_of_a_line_is_the_diameter_circle(self):
        pts = collinear(5)
        sec = smallest_enclosing_circle(pts)
        assert sec.radius == pytest.approx(20.0)
        assert sec.center.distance_to(Vec2(20.0, 0.0)) < 1e-9

    def test_identified_routing_on_a_line(self):
        h = SwarmHarness(
            collinear(5),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        h.simulator.protocol_of(0).send_bits(4, [1, 0, 1])
        h.run(8)
        assert [e.bit for e in h.simulator.protocol_of(4).received] == [1, 0, 1]

    def test_sec_naming_on_a_line(self):
        """Several robots share the two SEC radii; ordering falls back
        to distance-from-centre (Figure 4's tie rule) everywhere."""
        pts = collinear(5)
        for subject in (0, 1, 3, 4):  # robot 2 is the SEC centre
            labels = relative_labels(pts, subject)
            assert sorted(labels.values()) == list(range(5))

    def test_sec_routing_on_a_line(self):
        """End-to-end chirality-only routing on a collinear swarm,
        avoiding the exact-centre robot as a participant count issue
        by using an even count."""
        pts = collinear(4)
        h = SwarmHarness(
            pts,
            protocol_factory=lambda: SyncGranularProtocol(naming="sec"),
            identified=False,
            frame_regime="chirality",
            sigma=4.0,
        )
        h.simulator.protocol_of(0).send_bits(3, [0, 1])
        h.run(6)
        assert [e.bit for e in h.simulator.protocol_of(3).received] == [0, 1]


class TestScales:
    @pytest.mark.parametrize("scale", [1e-3, 1.0, 1e4])
    def test_pair_protocol_across_coordinate_scales(self, scale):
        h = SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(10.0 * scale, 0.0)],
            protocol_factory=lambda: SyncTwoProtocol(),
            identified=False,
            sigma=10.0 * scale,
        )
        h.simulator.protocol_of(0).send_bits(1, [1, 0, 1])
        h.run(8)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == [1, 0, 1]

    @pytest.mark.parametrize("scale", [1e-3, 1e4])
    def test_granular_protocol_across_coordinate_scales(self, scale):
        pts = [p * scale for p in collinear(4)]
        h = SwarmHarness(
            pts,
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0 * scale,
        )
        h.simulator.protocol_of(1).send_bits(3, [1, 1, 0])
        h.run(8)
        assert [e.bit for e in h.simulator.protocol_of(3).received] == [1, 1, 0]


class TestExtremeAspect:
    def test_tight_pair_far_spectator(self):
        """Two close robots next to a distant one: granulars differ by
        orders of magnitude, decoding still resolves."""
        pts = [Vec2(0.0, 0.0), Vec2(2.0, 0.0), Vec2(300.0, 5.0)]
        h = SwarmHarness(
            pts, protocol_factory=lambda: SyncGranularProtocol(), sigma=4.0
        )
        h.simulator.protocol_of(0).send_bits(1, [1])
        h.simulator.protocol_of(2).send_bits(0, [0])
        h.run(6)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == [1]
        assert [e.bit for e in h.simulator.protocol_of(0).received if e.src == 2] == [0]

    def test_two_robot_swarm_in_n_robot_protocol(self):
        h = SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        h.simulator.protocol_of(0).send_bits(1, [1, 0])
        h.simulator.protocol_of(1).send_bits(0, [0, 1])
        h.run(6)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == [1, 0]
        assert [e.bit for e in h.simulator.protocol_of(0).received] == [0, 1]
