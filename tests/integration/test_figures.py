"""Integration tests: the six paper figures as executable scenarios.

Each test reproduces the situation one of the paper's figures depicts
and asserts the behaviour the figure illustrates.  The benchmark suite
re-runs the same scenarios with printed output (see benchmarks/).
"""

from __future__ import annotations

import math

import pytest

from repro.apps.harness import SwarmHarness, ring_positions
from repro.coding.bitstream import encode_message
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.naming.sec_naming import relative_labels
from repro.naming.symmetry import (
    common_naming_is_impossible,
    figure3_configuration,
    local_view,
    symmetric_view_pairs,
)
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol


class TestFigure1:
    """Two synchronous robots coding bits by side-steps."""

    def test_figure1_scenario(self):
        h = SwarmHarness(
            [Vec2(0, 0), Vec2(8, 0)],
            protocol_factory=lambda: SyncTwoProtocol(),
            identified=False,
            sigma=8.0,
        )
        # Both chat simultaneously, as in the figure.
        h.channel(0).send(1, "hello")
        h.channel(1).send(0, "world")
        assert h.pump(
            lambda hh: len(hh.channel(0).inbox) >= 1 and len(hh.channel(1).inbox) >= 1,
            max_steps=2000,
        )
        assert h.channel(1).inbox[0].text() == "hello"
        assert h.channel(0).inbox[0].text() == "world"
        # The figure's geometry: all excursions perpendicular to the
        # robot-robot axis, returns in between.
        for t, before, after in h.simulator.trace.movements_of(0):
            assert abs(before.x - after.x) < 1e-9


class TestFigure2:
    """12 identified robots; robot 9 sends '0' and '1' to robot 3."""

    def test_figure2_scenario(self):
        h = SwarmHarness(
            ring_positions(12, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(naming="identified"),
            sigma=4.0,
        )
        h.simulator.protocol_of(9).send_bits(3, [0, 1])
        h.run(6)
        received = h.simulator.protocol_of(3).received
        assert [(e.src, e.bit) for e in received] == [(9, 0), (9, 1)]
        # Everyone else decoded the traffic but received nothing.
        for other in range(12):
            if other in (3, 9):
                continue
            assert h.simulator.protocol_of(other).received == ()
            assert len(h.simulator.protocol_of(other).overheard) == 2
        # Collision avoidance (the Voronoi preprocessing's purpose).
        assert h.simulator.trace.min_pairwise_distance() > 0.0


class TestFigure3:
    """The symmetric configuration that defeats common naming."""

    def test_figure3_scenario(self):
        pts = figure3_configuration()
        assert common_naming_is_impossible(pts)
        pairs = symmetric_view_pairs(pts)
        assert len(pairs) == 3  # three indistinguishable pairs
        for i, j, frame_i, frame_j in pairs:
            view_i = local_view(pts, i, frame_i)
            view_j = local_view(pts, j, frame_j)
            assert all(a.distance_to(b) < 1e-9 for a, b in zip(view_i, view_j))
        # Relative naming still yields a working protocol on the same
        # configuration (scaled up to give granulars room).
        scaled = [p * 10.0 for p in pts]
        h = SwarmHarness(
            scaled,
            protocol_factory=lambda: SyncGranularProtocol(naming="sec"),
            identified=False,
            frame_regime="chirality",
            sigma=3.0,
        )
        h.simulator.protocol_of(0).send_bits(3, [1, 0])
        h.run(6)
        assert [e.bit for e in h.simulator.protocol_of(3).received] == [1, 0]


class TestFigure4:
    """Relative naming from SEC + horizon line, with radius ties."""

    def test_figure4_scenario(self):
        # A 12-robot configuration including two robots on the same
        # radius (like the figure's label-0/1 pair).
        pts = ring_positions(10, radius=10.0, jitter=0.06)
        direction = pts[0].normalized()
        pts = pts + [direction * 4.0, direction * 7.0]
        labels = relative_labels(pts, 0)
        assert sorted(labels.values()) == list(range(12))
        # Radius-mates ordered from the centre outward.
        assert labels[10] < labels[11] < labels[0]
        # Every robot reconstructs robot 0's labelling identically
        # from its own (rotated/scaled) view.
        from repro.geometry.frames import make_frames

        for frame in make_frames(5, "chirality", seed=3):
            view = [frame.to_local(p, Vec2(1.0, -2.0)) for p in pts]
            assert relative_labels(view, 0) == labels


class TestFigure5:
    """Async pair: r sends '001...', r' sends '0...'."""

    def test_figure5_scenario(self):
        h = SwarmHarness(
            [Vec2(0, 0), Vec2(10, 0)],
            protocol_factory=lambda: AsyncTwoProtocol(),
            scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=23),
            identified=False,
            sigma=10.0,
        )
        h.simulator.protocol_of(0).send_bits(1, [0, 0, 1])
        h.simulator.protocol_of(1).send_bits(0, [0])

        def done(hh):
            return (
                len(hh.simulator.protocol_of(1).received) >= 3
                and len(hh.simulator.protocol_of(0).received) >= 1
            )

        assert h.pump(done, max_steps=30_000)
        assert [e.bit for e in h.simulator.protocol_of(1).received] == [0, 0, 1]
        assert [e.bit for e in h.simulator.protocol_of(0).received] == [0]
        # The figure's geometry: all positions of both robots stay on
        # H (the x-axis) or on perpendicular excursions from it; the
        # along-H drift is away from the peer.
        for i, sign in ((0, -1.0), (1, 1.0)):
            for t, before, after in h.simulator.trace.movements_of(i):
                dx = after.x - before.x
                dy = after.y - before.y
                assert abs(dx) < 1e-9 or abs(dy) < 1e-9  # axis-aligned legs
        assert h.simulator.positions[0].x < 0.0  # drifted West (away)
        assert h.simulator.positions[1].x > 10.0  # drifted East (away)


class TestFigure6:
    """Async n robots with the n+1-sliced granular and kappa."""

    @pytest.mark.parametrize("count", [3, 6])
    def test_figure6_scenario(self, count):
        h = SwarmHarness(
            ring_positions(count, radius=10.0, jitter=0.07),
            protocol_factory=lambda: AsyncNProtocol(naming="sec"),
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=count),
            identified=False,
            frame_regime="chirality",
            sigma=4.0,
        )
        h.simulator.protocol_of(0).send_bits(count - 1, [1, 0])

        def done(hh):
            return len(hh.simulator.protocol_of(count - 1).received) >= 2

        assert h.pump(done, max_steps=150_000)
        assert [e.bit for e in h.simulator.protocol_of(count - 1).received] == [1, 0]
        # kappa oscillation means idle robots DO move (the protocol is
        # not silent — the Section 5 open problem).
        assert len(h.simulator.trace.movements_of(1)) > 0


class TestEndToEndMessageMatrix:
    """A broader soak: framed messages across protocols and schedulers."""

    def test_sync_matrix(self):
        h = SwarmHarness(
            ring_positions(6, radius=10.0, jitter=0.07),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        expected = {}
        for src in range(6):
            dst = (src + 2) % 6
            text = f"from {src} to {dst}"
            h.channel(src).send(dst, text)
            expected[dst] = text

        def done(hh):
            return all(len(hh.channel(d).inbox) >= 1 for d in expected)

        assert h.pump(done, max_steps=5000)
        for dst, text in expected.items():
            assert h.channel(dst).inbox[0].text() == text

    def test_async_two_long_message(self):
        h = SwarmHarness(
            [Vec2(0, 0), Vec2(10, 0)],
            protocol_factory=lambda: AsyncTwoProtocol(bounded=True),
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=1),
            identified=False,
            sigma=10.0,
        )
        payload = "stigmergy!"
        h.channel(0).send(1, payload)
        bits = len(encode_message(payload))
        assert h.pump(
            lambda hh: len(hh.channel(1).inbox) >= 1, max_steps=400 * bits
        )
        assert h.channel(1).inbox[0].text() == payload
