"""Tests for CRC-8 frame integrity."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.bitstream import encode_message
from repro.coding.checksum import CheckedFrameDecoder, crc8, encode_checked


class TestCrc8:
    def test_known_vector(self):
        # CRC-8/ATM of "123456789" is 0xF4.
        assert crc8(b"123456789") == 0xF4

    def test_empty(self):
        assert crc8(b"") == 0

    @given(st.binary(max_size=100), st.integers(min_value=0, max_value=799))
    def test_detects_single_bit_flips(self, data, flip):
        if not data:
            return
        flip %= len(data) * 8
        corrupted = bytearray(data)
        corrupted[flip // 8] ^= 1 << (flip % 8)
        assert crc8(bytes(corrupted)) != crc8(data) or bytes(corrupted) == data


class TestCheckedFrames:
    def test_roundtrip(self):
        decoder = CheckedFrameDecoder()
        frames = decoder.push_all(encode_checked("intact"))
        assert frames == [b"intact"]
        assert decoder.corrupt_frames == 0
        assert decoder.is_idle

    def test_corrupt_frame_dropped(self):
        bits = encode_checked(b"payload")
        bits[20] ^= 1  # flip one payload bit
        decoder = CheckedFrameDecoder()
        assert decoder.push_all(bits) == []
        assert decoder.corrupt_frames == 1

    def test_corrupt_then_intact(self):
        """A dropped frame does not desynchronise the stream."""
        good = encode_checked(b"ok")
        bad = encode_checked(b"ko")
        bad[18] ^= 1
        decoder = CheckedFrameDecoder()
        frames = decoder.push_all(bad + good)
        assert frames == [b"ok"]
        assert decoder.corrupt_frames == 1

    def test_unchecked_frame_rejected(self):
        """A frame without room for a CRC byte counts as corrupt."""
        decoder = CheckedFrameDecoder()
        assert decoder.push_all(encode_message(b"")) == []
        assert decoder.corrupt_frames == 1

    @given(st.lists(st.binary(max_size=30), min_size=1, max_size=8))
    def test_stream_roundtrip(self, payloads):
        stream = []
        for p in payloads:
            stream.extend(encode_checked(p))
        decoder = CheckedFrameDecoder()
        assert decoder.push_all(stream) == payloads
        assert decoder.corrupt_frames == 0

    @given(st.binary(min_size=1, max_size=30), st.integers(min_value=0, max_value=10_000))
    def test_payload_bit_flip_always_dropped(self, payload, position):
        """CRC-8 detects every single-bit error, so a flip anywhere in
        the payload or CRC region must drop the frame.  (Flips in the
        length prefix move the frame boundary instead — there detection
        is only 255/256, which is why the prefix is kept tiny.)"""
        bits = encode_checked(payload)
        body = len(bits) - 16
        position = 16 + position % body
        bits[position] ^= 1
        decoder = CheckedFrameDecoder()
        assert decoder.push_all(bits) == []
        assert decoder.corrupt_frames == 1
