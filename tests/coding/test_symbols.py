"""Tests for multi-symbol displacement coding (Section 3.1 remark)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.symbols import SymbolCoder
from repro.errors import CodingError

alphabets = st.sampled_from([2, 4, 8, 16, 64, 256])


class TestValidation:
    def test_alphabet_must_be_power_of_two(self):
        for bad in (0, 1, 3, 6, 100):
            with pytest.raises(CodingError):
                SymbolCoder(bad, span=1.0)

    def test_span_positive(self):
        with pytest.raises(CodingError):
            SymbolCoder(2, span=0.0)

    def test_guard_range(self):
        with pytest.raises(CodingError):
            SymbolCoder(2, span=1.0, guard_fraction=0.5)


class TestBitsPerSymbol:
    def test_values(self):
        assert SymbolCoder(2, 1.0).bits_per_symbol == 1
        assert SymbolCoder(16, 1.0).bits_per_symbol == 4
        assert SymbolCoder(256, 1.0).bits_per_symbol == 8


class TestPacking:
    def test_pack_unpack(self):
        coder = SymbolCoder(4, 1.0)
        assert coder.bits_to_symbols([1, 0, 0, 1]) == [0b10, 0b01]
        assert coder.symbols_to_bits([0b10, 0b01]) == [1, 0, 0, 1]

    def test_padding(self):
        coder = SymbolCoder(4, 1.0)
        # Odd bit count pads with zeros.
        assert coder.bits_to_symbols([1]) == [0b10]

    def test_invalid_bits(self):
        with pytest.raises(CodingError):
            SymbolCoder(2, 1.0).bits_to_symbols([3])

    def test_invalid_symbol(self):
        with pytest.raises(CodingError):
            SymbolCoder(2, 1.0).symbols_to_bits([5])

    @given(alphabets, st.lists(st.integers(min_value=0, max_value=1), max_size=64))
    def test_roundtrip_padded(self, alphabet, bits):
        coder = SymbolCoder(alphabet, 1.0)
        symbols = coder.bits_to_symbols(bits)
        recovered = coder.symbols_to_bits(symbols)
        assert recovered[: len(bits)] == bits
        assert all(b == 0 for b in recovered[len(bits):])


class TestDisplacements:
    def test_levels_symmetric_and_nonzero(self):
        coder = SymbolCoder(4, span=1.0)
        levels = [coder.displacement(s) for s in range(4)]
        assert levels == pytest.approx([-0.75, -0.25, 0.25, 0.75])
        assert all(level != 0.0 for level in levels)

    def test_levels_inside_span(self):
        coder = SymbolCoder(256, span=2.0)
        for s in (0, 17, 128, 255):
            assert abs(coder.displacement(s)) < 2.0

    @given(alphabets, st.integers(min_value=0, max_value=255))
    def test_decode_roundtrip(self, alphabet, symbol):
        symbol %= alphabet
        coder = SymbolCoder(alphabet, span=1.5)
        assert coder.decode_displacement(coder.displacement(symbol)) == symbol

    @given(
        alphabets,
        st.integers(min_value=0, max_value=255),
        st.floats(min_value=-0.39, max_value=0.39),
    )
    def test_decode_tolerates_noise_within_guard(self, alphabet, symbol, noise_frac):
        symbol %= alphabet
        coder = SymbolCoder(alphabet, span=1.5)
        step = 2 * 1.5 / alphabet
        noisy = coder.displacement(symbol) + noise_frac * step
        assert coder.decode_displacement(noisy) == symbol

    def test_decode_rejects_out_of_range(self):
        coder = SymbolCoder(4, span=1.0)
        with pytest.raises(CodingError):
            coder.decode_displacement(2.0)

    def test_decode_rejects_dead_zone(self):
        coder = SymbolCoder(2, span=1.0)
        # Exactly between the two levels (-0.5 and +0.5) is ambiguous.
        with pytest.raises(CodingError):
            coder.decode_displacement(0.0)


class TestMovesPerBits:
    def test_reduction_factor(self):
        """The Section 3.1 claim: B levels divide the move count by
        log2(B)."""
        bits = 240
        assert SymbolCoder(2, 1.0).moves_per_bits(bits) == 240
        assert SymbolCoder(16, 1.0).moves_per_bits(bits) == 60
        assert SymbolCoder(256, 1.0).moves_per_bits(bits) == 30

    def test_rounding_up(self):
        assert SymbolCoder(16, 1.0).moves_per_bits(5) == 2
