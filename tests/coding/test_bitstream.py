"""Tests for bit packing and message framing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.bitstream import (
    FrameDecoder,
    bits_to_bytes,
    bytes_to_bits,
    decode_message,
    encode_message,
)
from repro.errors import CodingError


class TestBitPacking:
    def test_byte_to_bits_msb_first(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bytes_to_bits(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]
        assert bytes_to_bits(b"\xff") == [1] * 8

    def test_empty(self):
        assert bytes_to_bits(b"") == []
        assert bits_to_bytes([]) == b""

    def test_partial_byte_rejected(self):
        with pytest.raises(CodingError):
            bits_to_bytes([1, 0, 1])

    def test_invalid_bit_rejected(self):
        with pytest.raises(CodingError):
            bits_to_bytes([2] * 8)

    @given(st.binary(max_size=200))
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestFraming:
    def test_frame_layout(self):
        bits = encode_message(b"\xab")
        assert len(bits) == 16 + 8
        # Length prefix says 1.
        assert bits[:16] == [0] * 15 + [1]

    def test_string_is_utf8(self):
        bits = encode_message("é")
        assert decode_message(bits) == "é".encode("utf-8")

    def test_empty_message(self):
        bits = encode_message(b"")
        assert len(bits) == 16
        assert decode_message(bits) == b""

    def test_oversized_rejected(self):
        with pytest.raises(CodingError):
            encode_message(b"x" * 70_000)

    def test_truncated_rejected(self):
        bits = encode_message(b"hello")
        with pytest.raises(CodingError):
            decode_message(bits[:-1])

    def test_trailing_bits_rejected(self):
        bits = encode_message(b"hello") + [0]
        with pytest.raises(CodingError):
            decode_message(bits)

    @given(st.binary(max_size=300))
    def test_roundtrip(self, payload):
        assert decode_message(encode_message(payload)) == payload

    @given(st.text(max_size=100))
    def test_text_roundtrip(self, text):
        assert decode_message(encode_message(text)).decode("utf-8") == text


class TestFrameDecoder:
    def test_incremental_delivery(self):
        decoder = FrameDecoder()
        bits = encode_message(b"ab")
        results = [decoder.push(b) for b in bits]
        assert all(r is None for r in results[:-1])
        assert results[-1] == b"ab"
        assert decoder.is_idle

    def test_back_to_back_frames(self):
        decoder = FrameDecoder()
        stream = encode_message(b"one") + encode_message(b"two") + encode_message(b"")
        frames = decoder.push_all(stream)
        assert frames == [b"one", b"two", b""]
        assert decoder.is_idle

    def test_partial_state_visible(self):
        decoder = FrameDecoder()
        bits = encode_message(b"xy")
        decoder.push_all(bits[:20])
        assert not decoder.is_idle
        assert decoder.buffered_bits == 20

    def test_invalid_bit(self):
        with pytest.raises(CodingError):
            FrameDecoder().push(7)

    @given(st.lists(st.binary(max_size=40), min_size=1, max_size=10))
    def test_stream_roundtrip(self, payloads):
        stream = []
        for p in payloads:
            stream.extend(encode_message(p))
        decoder = FrameDecoder()
        assert decoder.push_all(stream) == payloads
        assert decoder.is_idle
