"""Tests for the Section 5 few-slice addressing codec and step models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.logk_addressing import (
    address_digit_count,
    address_digits,
    digits_to_index,
    slowdown_factor,
    steps_per_message_full_slicing,
    steps_per_message_logk,
    theoretical_slowdown_logslices,
)
from repro.errors import CodingError


class TestDigitCount:
    def test_known_values(self):
        assert address_digit_count(2, 2) == 1
        assert address_digit_count(4, 2) == 2
        assert address_digit_count(5, 2) == 3
        assert address_digit_count(1000, 10) == 3
        assert address_digit_count(1001, 10) == 4

    def test_validation(self):
        with pytest.raises(CodingError):
            address_digit_count(1, 2)
        with pytest.raises(CodingError):
            address_digit_count(4, 1)

    @given(st.integers(min_value=2, max_value=100_000), st.integers(min_value=2, max_value=64))
    def test_matches_logarithm(self, n, k):
        digits = address_digit_count(n, k)
        assert k**digits >= n
        assert digits == 1 or k ** (digits - 1) < n


class TestDigitsRoundtrip:
    def test_known_encoding(self):
        assert address_digits(6, 8, 2) == [1, 1, 0]
        assert address_digits(0, 8, 2) == [0, 0, 0]

    def test_fixed_width(self):
        for index in range(10):
            assert len(address_digits(index, 10, 3)) == address_digit_count(10, 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(CodingError):
            address_digits(10, 10, 2)

    def test_decode_validation(self):
        with pytest.raises(CodingError):
            digits_to_index([1], 10, 2)  # wrong width
        with pytest.raises(CodingError):
            digits_to_index([2, 0, 0, 0], 10, 2)  # digit out of base
        with pytest.raises(CodingError):
            digits_to_index([1, 1, 1, 1], 10, 2)  # 15 >= n

    @given(st.integers(min_value=2, max_value=4096), st.integers(min_value=2, max_value=16), st.data())
    def test_roundtrip(self, n, k, data):
        index = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert digits_to_index(address_digits(index, n, k), n, k) == index


class TestStepModels:
    def test_full_slicing(self):
        assert steps_per_message_full_slicing(1) == 2
        assert steps_per_message_full_slicing(8) == 16
        with pytest.raises(CodingError):
            steps_per_message_full_slicing(-1)

    def test_logk_adds_address_block(self):
        # n=16, k=2 -> 4 digits -> 8 extra instants.
        assert steps_per_message_logk(1, 16, 2) == 2 + 8

    def test_slowdown_monotone_in_n(self):
        """The trade-off shape: fixing k, more robots cost more."""
        values = [slowdown_factor(1, n, 2) for n in (4, 16, 64, 256, 1024)]
        assert values == sorted(values)

    def test_slowdown_monotone_decreasing_in_k(self):
        values = [slowdown_factor(1, 1024, k) for k in (2, 4, 8, 32)]
        assert values == sorted(values, reverse=True)

    def test_slowdown_undefined_for_empty(self):
        with pytest.raises(CodingError):
            slowdown_factor(0, 8, 2)

    def test_theoretical_reference(self):
        assert theoretical_slowdown_logslices(16) == pytest.approx(
            math.log(16) / math.log(math.log(16))
        )
        with pytest.raises(CodingError):
            theoretical_slowdown_logslices(3)

    def test_paper_asymptotic_shape(self):
        """With k = O(log n), the measured slowdown for 1-bit messages
        tracks log n / log log n within a constant factor."""
        for n in (64, 256, 1024, 4096):
            k = max(2, round(math.log2(n)))
            measured = slowdown_factor(1, n, k)
            reference = theoretical_slowdown_logslices(n)
            assert 0.3 < measured / reference < 5.0
