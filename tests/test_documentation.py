"""Meta-tests: the documentation deliverable, enforced.

Every public module, class, function and method in the library must
carry a docstring.  "Public" means: importable under ``repro`` and not
underscore-prefixed.  This keeps the doc coverage from silently
eroding as the library grows.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from typing import Iterator, List, Tuple

import repro


def _walk_modules() -> Iterator[str]:
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


def _public_members(module) -> Iterator[Tuple[str, object]]:
    for name, member in inspect.getmembers(module):
        if name.startswith("_"):
            continue
        origin = getattr(member, "__module__", None)
        if origin != module.__name__:
            continue  # re-exports documented at their origin
        if inspect.isclass(member) or inspect.isfunction(member):
            yield f"{module.__name__}.{name}", member


def _all_targets() -> List[Tuple[str, object]]:
    targets: List[Tuple[str, object]] = []
    for module_name in _walk_modules():
        module = importlib.import_module(module_name)
        targets.append((module_name, module))
        for qualified, member in _public_members(module):
            targets.append((qualified, member))
            if inspect.isclass(member):
                for attr_name, attr in inspect.getmembers(member):
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and attr.__qualname__.startswith(
                        member.__name__ + "."
                    ):
                        targets.append((f"{qualified}.{attr_name}", attr))
    return targets


class TestDocstrings:
    def test_every_public_item_is_documented(self):
        missing = [
            name
            for name, obj in _all_targets()
            if not (inspect.getdoc(obj) or "").strip()
        ]
        assert not missing, f"undocumented public items: {missing}"

    def test_docstrings_are_substantive(self):
        """One-word docstrings are placeholders, not documentation."""
        thin = [
            name
            for name, obj in _all_targets()
            if inspect.ismodule(obj) or inspect.isclass(obj)
            if len((inspect.getdoc(obj) or "").split()) < 4
        ]
        assert not thin, f"too-thin docstrings: {thin}"

    def test_coverage_is_meaningful(self):
        """The walker actually finds a large API surface."""
        targets = _all_targets()
        assert len(targets) > 250, f"only {len(targets)} targets found"
