"""The PerfStats deprecation shim over the metrics registry.

PR 1 gave every simulator a ``PerfStats`` block; the observability
layer re-hosts those counters as registry series.  The classic
attribute API must keep working bit-for-bit, and the same numbers must
be readable through the registry.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.perf.counters import PerfStats


class TestClassicApi:
    def test_attributes_start_at_zero(self):
        stats = PerfStats()
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0
        assert stats.observations_built == 0
        assert stats.observations_reused == 0

    def test_augmented_assignment_still_works(self):
        stats = PerfStats()
        stats.cache_hits += 1
        stats.cache_hits += 1
        stats.cache_misses += 1
        assert stats.cache_hits == 2
        assert stats.hit_rate == 2 / 3

    def test_rates_and_as_dict_are_unchanged(self):
        stats = PerfStats()
        stats.observations_built = 1
        stats.observations_reused = 3
        assert stats.observation_reuse_rate == 0.75
        snapshot = stats.as_dict()
        assert snapshot["observations_reused"] == 3
        assert snapshot["hit_rate"] == 0.0

    def test_reset_zeroes_everything(self):
        stats = PerfStats()
        stats.cache_hits = 5
        stats.reset()
        assert stats.cache_hits == 0
        assert stats.as_dict()["hit_rate"] == 0.0

    def test_equality_and_repr(self):
        a, b = PerfStats(), PerfStats()
        a.cache_hits = 2
        assert a != b
        b.cache_hits = 2
        assert a == b
        assert "cache_hits=2" in repr(a)


class TestRegistryDelegation:
    def test_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        stats = PerfStats(registry, protocol="sync_two")
        stats.cache_hits += 4
        assert (
            registry.counter("perf_cache_hits", protocol="sync_two").value == 4
        )

    def test_registry_writes_are_visible_through_the_shim(self):
        registry = MetricsRegistry()
        stats = PerfStats(registry)
        registry.counter("perf_cache_misses").inc(7)
        assert stats.cache_misses == 7

    def test_private_registry_by_default(self):
        a, b = PerfStats(), PerfStats()
        a.cache_hits += 1
        assert b.cache_hits == 0
        assert a.registry is not b.registry

    def test_simulator_stats_are_shim_instances(self, twelve_ring):
        from repro.apps.harness import SwarmHarness
        from repro.protocols.sync_granular import SyncGranularProtocol

        harness = SwarmHarness(
            twelve_ring,
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        harness.run(4)
        stats = harness.simulator.stats
        assert isinstance(stats, PerfStats)
        total = stats.cache_hits + stats.cache_misses
        assert total > 0
        assert stats.registry.counter("perf_cache_hits").value == stats.cache_hits
