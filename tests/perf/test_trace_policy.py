"""Trace memory control: ring-buffer capacity and stride sampling."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import Protocol
from repro.model.robot import Robot
from repro.model.simulator import Simulator
from repro.model.trace import TracePolicy
from repro.corda.simulator import StaleLookSimulator
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.apps.harness import ring_positions


class Drift(Protocol):
    """Move right by a fixed amount every activation."""

    def _decode(self, observation: Observation):
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position + Vec2(0.5, 0.0)


def drifting(count: int = 3, **simulator_kwargs) -> Simulator:
    robots = [
        Robot(position=Vec2(0.0, float(4 * i)), protocol=Drift(), sigma=1.0)
        for i in range(count)
    ]
    return Simulator(robots, **simulator_kwargs)


class TestPolicyValidation:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ModelError, match="capacity"):
            TracePolicy(capacity=0)

    def test_bad_stride_rejected(self):
        with pytest.raises(ModelError, match="stride"):
            TracePolicy(stride=0)

    def test_default_is_unbounded(self):
        assert not TracePolicy().bounded
        assert TracePolicy(capacity=8).bounded
        assert TracePolicy(stride=2).bounded


class TestRingBuffer:
    def test_capacity_retains_only_recent_steps(self):
        sim = drifting(trace_policy=TracePolicy(capacity=5))
        sim.run(12)
        assert len(sim.trace.steps) == 5
        assert [s.time for s in sim.trace.steps] == list(range(7, 12))
        assert sim.trace.dropped == 7
        assert sim.trace.total_steps == 12

    def test_latest_always_reachable(self):
        sim = drifting(trace_policy=TracePolicy(capacity=2))
        sim.run(9)
        assert sim.trace.latest is not None
        assert sim.trace.latest.time == 8
        assert sim.trace.positions_at(9) == sim.positions

    def test_evicted_instant_raises(self):
        sim = drifting(trace_policy=TracePolicy(capacity=3))
        sim.run(10)
        with pytest.raises(ModelError, match="not retained"):
            sim.trace.positions_at(2)

    def test_retained_instant_still_indexable(self):
        unbounded = drifting()
        bounded = drifting(trace_policy=TracePolicy(capacity=4))
        unbounded.run(10)
        bounded.run(10)
        for time in (7, 8, 9, 10):
            assert bounded.trace.positions_at(time) == unbounded.trace.positions_at(time)


class TestStrideSampling:
    def test_stride_records_every_kth_instant(self):
        sim = drifting(trace_policy=TracePolicy(stride=3))
        sim.run(10)
        assert [s.time for s in sim.trace.steps] == [0, 3, 6, 9]
        assert sim.trace.skipped == 6
        assert sim.trace.total_steps == 10

    def test_skipped_instant_raises(self):
        sim = drifting(trace_policy=TracePolicy(stride=3))
        sim.run(10)
        # Instant 3 is P(t) after step time=2, which was skipped.
        with pytest.raises(ModelError, match="not retained"):
            sim.trace.positions_at(3)
        # Step time=3 was recorded, i.e. instant 4 is available.
        assert len(sim.trace.positions_at(4)) == sim.count

    def test_latest_wins_over_stride(self):
        sim = drifting(trace_policy=TracePolicy(stride=4))
        sim.run(7)  # final step time=6, not a stride multiple
        assert sim.trace.latest is not None
        assert sim.trace.latest.time == 6
        assert sim.trace.positions_at(7) == sim.positions


class TestPolicyOnRealRuns:
    def test_bounded_run_matches_unbounded_positions(self):
        def build(policy):
            robots = [
                Robot(
                    position=p,
                    protocol=SyncGranularProtocol(),
                    sigma=4.0,
                    observable_id=i,
                )
                for i, p in enumerate(ring_positions(5, radius=10.0, jitter=0.06))
            ]
            sim = Simulator(robots, trace_policy=policy)
            robots[0].protocol.send_bits(2, [1, 0, 1])
            sim.run(10)
            return sim

        full = build(None)
        ring = build(TracePolicy(capacity=4))
        assert ring.positions == full.positions
        assert ring.trace.latest == full.trace.latest
        assert [e.bit for e in ring.protocol_of(2).received] == [
            e.bit for e in full.protocol_of(2).received
        ]

    def test_stale_look_simulator_rejects_starved_policy(self):
        robots = [
            Robot(position=p, protocol=Drift(), sigma=1.0)
            for p in (Vec2(0.0, 0.0), Vec2(8.0, 0.0))
        ]
        with pytest.raises(ModelError, match="max_delay"):
            StaleLookSimulator(
                robots, max_delay=3, trace_policy=TracePolicy(capacity=2)
            )
        with pytest.raises(ModelError, match="max_delay"):
            StaleLookSimulator(robots, max_delay=1, trace_policy=TracePolicy(stride=2))

    def test_stale_look_simulator_accepts_sufficient_capacity(self):
        robots = [
            Robot(position=p, protocol=Drift(), sigma=1.0)
            for p in (Vec2(0.0, 0.0), Vec2(8.0, 0.0))
        ]
        sim = StaleLookSimulator(
            robots, max_delay=2, seed=3, trace_policy=TracePolicy(capacity=16)
        )
        sim.run(30)
        assert len(sim.trace.steps) <= 16
