"""Cache-invalidation semantics of the configuration-epoch layer.

The hard requirement: a cache may never serve stale geometry.  After a
``displace()`` transient fault the epoch must bump, the next derived-
geometry access must recompute (a miss, matching a from-scratch
computation on the new positions), and observation entries for the
displaced robot must be rebuilt.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BitEvent, Protocol
from repro.model.robot import Robot
from repro.model.simulator import Simulator
from repro.apps.harness import ring_positions
from repro.visibility.simulator import VisibilitySimulator


class Still(Protocol):
    """Test protocol: never move."""

    def _decode(self, observation: Observation):
        return []

    def _compute(self, observation: Observation) -> Vec2:
        return observation.self_position


def still_swarm(count: int = 6, caching: bool = True) -> Simulator:
    robots = [
        Robot(position=p, protocol=Still(), sigma=2.0, observable_id=i)
        for i, p in enumerate(ring_positions(count, radius=10.0, jitter=0.05))
    ]
    return Simulator(robots, caching=caching)


class TestEpoch:
    def test_epoch_static_while_nobody_moves(self):
        sim = still_swarm()
        sim.run(5)
        assert sim.epoch == 0

    def test_epoch_bumps_on_displace(self):
        sim = still_swarm()
        before = sim.epoch
        sim.displace(0, Vec2(50.0, 50.0))
        assert sim.epoch == before + 1

    def test_epoch_bumps_on_actual_movement_only(self):
        class GoRight(Protocol):
            def _decode(self, observation):
                return []

            def _compute(self, observation):
                return observation.self_position + Vec2(1.0, 0.0)

        robots = [
            Robot(position=Vec2(float(3 * i), 0.0), protocol=GoRight(), sigma=2.0)
            for i in range(3)
        ]
        sim = Simulator(robots)
        sim.step()
        assert sim.epoch == 1
        sim.step()
        assert sim.epoch == 2


class TestGeometryCache:
    def test_repeated_access_hits(self):
        sim = still_swarm()
        first = sim.geometry.sec()
        hits_before = sim.stats.cache_hits
        second = sim.geometry.sec()
        assert second is first
        assert sim.stats.cache_hits == hits_before + 1

    def test_displace_invalidates_and_recomputes(self):
        sim = still_swarm()
        stale = sim.geometry.sec()
        sim.displace(0, Vec2(80.0, 0.0))
        misses_before = sim.stats.cache_misses
        hits_before = sim.stats.cache_hits
        fresh = sim.geometry.sec()
        # A miss, not a (stale) hit...
        assert sim.stats.cache_misses == misses_before + 1
        assert sim.stats.cache_hits == hits_before
        # ...and the value matches a from-scratch computation on the
        # displaced configuration, not the old circle.
        assert fresh == smallest_enclosing_circle(sim.positions)
        assert fresh != stale
        assert fresh.radius > stale.radius

    def test_labels_and_hull_track_epoch(self):
        sim = still_swarm()
        labels = sim.geometry.labels(0)
        hull = sim.geometry.hull()
        assert sorted(labels.values()) == list(range(sim.count))
        assert not hull.is_empty()
        sim.displace(1, Vec2(70.0, 5.0))
        assert sim.geometry.hull() != hull

    def test_disabled_cache_always_recomputes(self):
        sim = still_swarm(caching=False)
        a = sim.geometry.sec()
        b = sim.geometry.sec()
        assert a == b
        assert a is not b
        assert sim.stats.cache_hits == 0


class TestObservationCache:
    def test_static_run_reuses_observations(self):
        sim = still_swarm()
        sim.run(4)
        assert sim.stats.cache_hits > 0
        assert sim.stats.observations_reused > 0
        # First instant builds everything, later instants reuse.
        assert sim.stats.observations_built == sim.count * sim.count

    def test_displace_rebuilds_only_the_moved_entry(self):
        sim = still_swarm()
        sim.run(2)
        built_before = sim.stats.observations_built
        sim.displace(0, Vec2(55.0, -5.0))
        sim.step()
        # Each of the n observers rebuilds exactly the displaced
        # robot's entry and reuses the other n-1.
        assert sim.stats.observations_built == built_before + sim.count

    def test_observation_contents_track_displacement(self):
        sim = still_swarm()
        sim.run(2)
        sim.displace(0, Vec2(55.0, -5.0))
        observation = sim._observe(1)
        expected = sim.robots[1].frame.to_local(Vec2(55.0, -5.0), sim.positions[1])
        assert observation.position_of(0) == expected

    def test_uncached_mode_reports_no_hits(self):
        sim = still_swarm(caching=False)
        sim.run(4)
        assert sim.stats.cache_hits == 0
        assert sim.stats.observations_reused == 0
        assert sim.stats.observations_built == sim.count * sim.count * 4


class TestVisibilityCache:
    def test_cached_visibility_matches_recompute(self):
        robots = [
            Robot(position=Vec2(6.0 * i, 0.0), protocol=Still(), sigma=2.0)
            for i in range(5)
        ]
        sim = VisibilitySimulator(robots, visibility_radius=7.0)
        for i in range(sim.count):
            assert sim._visible_from(i) == sim._compute_visible_from(i)
            assert i in sim._visible_from(i)
        # Chain topology: each robot sees only its neighbours.
        assert sim._visible_from(0) == frozenset({0, 1})
        assert sim._visible_from(2) == frozenset({1, 2, 3})


class TestConstructionChecks:
    def test_duplicate_positions_still_rejected(self):
        robots = [
            Robot(position=Vec2(0.0, 0.0), protocol=Still(), sigma=1.0),
            Robot(position=Vec2(1.0, 0.0), protocol=Still(), sigma=1.0),
            Robot(position=Vec2(0.0, 0.0), protocol=Still(), sigma=1.0),
        ]
        with pytest.raises(ModelError, match="robots 0 and 2 share"):
            Simulator(robots)
