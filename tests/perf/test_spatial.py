"""The spatial-hash grid and the grid-backed ``scatter`` sampler."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.geometry.vec import Vec2
from repro.perf.spatial import SpatialHashGrid

from benchmarks.support import scatter


def brute_force_scatter(
    count: int, seed: int = 0, min_distance: float = 2.0, extent: float = 60.0
) -> List[Vec2]:
    """The historical all-pairs rejection sampler, kept as the oracle."""
    rng = random.Random(seed)
    pts: List[Vec2] = []
    while len(pts) < count:
        p = Vec2(rng.uniform(-extent, extent), rng.uniform(-extent, extent))
        if all(p.distance_to(q) > min_distance for q in pts):
            pts.append(p)
    return pts


class TestGrid:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="cell_size"):
            SpatialHashGrid(cell_size=0.0)
        grid = SpatialHashGrid(cell_size=1.0)
        with pytest.raises(ValueError, match="radius"):
            list(grid.neighbors_within(Vec2(0.0, 0.0), -1.0))

    def test_neighbors_match_brute_force(self):
        rng = random.Random(42)
        points = [Vec2(rng.uniform(-30, 30), rng.uniform(-30, 30)) for _ in range(300)]
        grid = SpatialHashGrid(cell_size=3.0)
        grid.extend(points)
        assert len(grid) == 300
        for radius in (0.5, 3.0, 7.5):
            for probe in points[:20]:
                expected = {q for q in points if probe.distance_to(q) <= radius}
                got = set(grid.neighbors_within(probe, radius))
                assert got == expected

    def test_boundary_inclusive(self):
        grid = SpatialHashGrid(cell_size=2.0)
        grid.insert(Vec2(2.0, 0.0))
        assert grid.has_neighbor_within(Vec2(0.0, 0.0), 2.0)
        assert not grid.has_neighbor_within(Vec2(0.0, 0.0), 1.999)

    def test_query_radius_larger_than_cell(self):
        grid = SpatialHashGrid(cell_size=1.0)
        grid.insert(Vec2(5.5, 0.0))
        assert grid.has_neighbor_within(Vec2(0.0, 0.0), 6.0)
        assert not grid.has_neighbor_within(Vec2(0.0, 0.0), 5.0)

    def test_negative_coordinates(self):
        grid = SpatialHashGrid(cell_size=2.0)
        grid.insert(Vec2(-3.1, -3.1))
        assert grid.has_neighbor_within(Vec2(-2.0, -2.0), 2.0)
        assert not grid.has_neighbor_within(Vec2(2.0, 2.0), 2.0)


class TestScatter:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_identical_to_brute_force(self, seed):
        # Same RNG draw order and accept decisions => bit-identical
        # points, so historical benchmark placements are unchanged.
        assert scatter(40, seed=seed) == brute_force_scatter(40, seed=seed)

    def test_identical_with_custom_separation(self):
        assert scatter(24, seed=3, min_distance=6.0, extent=40.0) == (
            brute_force_scatter(24, seed=3, min_distance=6.0, extent=40.0)
        )

    def test_separation_respected(self):
        pts = scatter(60, seed=5, min_distance=4.0)
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                assert pts[i].distance_to(pts[j]) > 4.0
