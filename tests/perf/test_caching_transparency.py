"""Semantic transparency: caching on and off yield bit-identical runs.

Each scenario builds two structurally identical simulations with the
same seeds — one with the hot-path caches enabled, one without — and
asserts that the recorded traces (and delivered bits, where traffic
flows) are exactly equal, element by element.  Covered variants: the
base synchronous engine, a fair-asynchronous schedule, CORDA-style
bounded-stale looks, visibility-limited swarms, and noisy sensing.
"""

from __future__ import annotations

from typing import List

from repro.channels.transport import MovementChannel
from repro.apps.harness import SwarmHarness, ring_positions
from repro.corda.simulator import StaleLookSimulator
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.scheduler import FairAsynchronousScheduler
from repro.model.simulator import Simulator
from repro.noise.simulator import NoisyObservationSimulator
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.visibility.flooding import FloodRouter
from repro.visibility.protocol import LocalGranularProtocol
from repro.visibility.simulator import VisibilitySimulator


def assert_traces_identical(a: Simulator, b: Simulator) -> None:
    assert a.trace.initial_positions == b.trace.initial_positions
    assert len(a.trace.steps) == len(b.trace.steps)
    for left, right in zip(a.trace.steps, b.trace.steps):
        assert left == right


def received_bits(sim: Simulator, index: int) -> List[tuple]:
    return [(e.time, e.src, e.dst, e.bit) for e in sim.protocol_of(index).received]


class TestSynchronous:
    def test_sync_granular_trace_equivalence(self):
        def build(caching: bool) -> SwarmHarness:
            h = SwarmHarness(
                ring_positions(8, radius=10.0, jitter=0.06),
                protocol_factory=lambda: SyncGranularProtocol(),
                sigma=4.0,
                caching=caching,
            )
            h.simulator.protocol_of(0).send_bits(4, [1, 0, 1, 1])
            return h

        cached, uncached = build(True), build(False)
        cached.run(20)
        uncached.run(20)
        assert_traces_identical(cached.simulator, uncached.simulator)
        assert received_bits(cached.simulator, 4) == received_bits(uncached.simulator, 4)
        assert received_bits(cached.simulator, 4)  # traffic actually flowed

    def test_equivalence_across_displacement(self):
        def run(caching: bool) -> Simulator:
            h = SwarmHarness(
                ring_positions(6, radius=10.0, jitter=0.06),
                protocol_factory=lambda: SyncGranularProtocol(),
                sigma=4.0,
                caching=caching,
            )
            h.simulator.protocol_of(0).send_bits(3, [1, 0])
            h.run(5)
            h.simulator.displace(2, Vec2(30.0, 30.0))
            h.run(5)
            return h.simulator

        assert_traces_identical(run(True), run(False))


class TestAsynchronous:
    def test_fair_async_trace_equivalence(self):
        from repro.protocols.async_n import AsyncNProtocol

        def build(caching: bool) -> SwarmHarness:
            h = SwarmHarness(
                ring_positions(4, radius=10.0, jitter=0.07),
                protocol_factory=lambda: AsyncNProtocol(naming="sec"),
                scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=1),
                identified=False,
                frame_regime="chirality",
                sigma=4.0,
                caching=caching,
            )
            h.simulator.protocol_of(0).send_bits(3, [1, 0])
            return h

        cached, uncached = build(True), build(False)
        cached.run(400)
        uncached.run(400)
        assert_traces_identical(cached.simulator, uncached.simulator)
        assert received_bits(cached.simulator, 3) == received_bits(uncached.simulator, 3)


class TestCordaStale:
    def test_stale_look_trace_equivalence(self):
        def run(caching: bool) -> Simulator:
            robots = [
                Robot(
                    position=p,
                    protocol=SyncGranularProtocol(dilation=3),
                    sigma=4.0,
                    observable_id=i,
                )
                for i, p in enumerate(ring_positions(6, radius=10.0, jitter=0.06))
            ]
            sim = StaleLookSimulator(robots, max_delay=2, seed=7, caching=caching)
            robots[0].protocol.send_bits(3, [1, 0, 1])
            sim.run(40)
            return sim

        cached, uncached = run(True), run(False)
        assert_traces_identical(cached, uncached)
        assert received_bits(cached, 3) == received_bits(uncached, 3)
        assert received_bits(cached, 3)


class TestVisibilityLimited:
    RADIUS = 12.0

    def _positions(self) -> List[Vec2]:
        # A short chain: consecutive robots are mutually visible,
        # endpoints are not.
        return [Vec2(0.0, 0.0), Vec2(8.0, 1.0), Vec2(16.0, 0.0), Vec2(24.0, 1.0)]

    def test_visibility_trace_equivalence(self):
        def run(caching: bool) -> Simulator:
            robots = [
                Robot(
                    position=p,
                    protocol=LocalGranularProtocol(),
                    sigma=4.0,
                    observable_id=i,
                )
                for i, p in enumerate(self._positions())
            ]
            sim = VisibilitySimulator(
                robots, visibility_radius=self.RADIUS, caching=caching
            )
            routers = [FloodRouter(MovementChannel(r.protocol)) for r in robots]
            routers[0].send(3, b"x")
            for _ in range(6000):
                sim.step()
                for router in routers:
                    router.pump(sim.time)
                if routers[3].inbox:
                    break
            assert routers[3].inbox, "flooded payload should arrive"
            return sim

        assert_traces_identical(run(True), run(False))


class TestNoisySensing:
    def test_noise_trace_equivalence(self):
        def run(caching: bool) -> Simulator:
            robots = [
                Robot(
                    position=p,
                    protocol=SyncGranularProtocol(
                        off_home_fraction=0.25, tolerate_ambiguity=True
                    ),
                    sigma=4.0,
                    observable_id=i,
                )
                for i, p in enumerate(ring_positions(5, radius=10.0, jitter=0.06))
            ]
            sim = NoisyObservationSimulator(robots, noise_std=0.05, seed=11, caching=caching)
            robots[0].protocol.send_bits(2, [1, 0, 1])
            sim.run(12)
            return sim

        cached, uncached = run(True), run(False)
        assert_traces_identical(cached, uncached)
        assert received_bits(cached, 2) == received_bits(uncached, 2)
