"""Property-based tests: flooding delivers on any connected topology."""

from __future__ import annotations

import random
from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.transport import MovementChannel
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.visibility.flooding import FloodRouter
from repro.visibility.graph import shortest_route, visibility_is_connected
from repro.visibility.protocol import LocalGranularProtocol
from repro.visibility.simulator import VisibilitySimulator

RADIUS = 12.0


def connected_positions(count: int, seed: int) -> List[Vec2]:
    """Random positions forming a connected visibility graph.

    Grown incrementally: each new robot lands within visibility range
    of an existing one (so the graph is connected by construction) but
    not too close to anyone (granulars need room).
    """
    rng = random.Random(seed)
    points = [Vec2(0.0, 0.0)]
    while len(points) < count:
        anchor = rng.choice(points)
        angle = rng.uniform(0.0, 6.28318)
        distance = rng.uniform(6.0, RADIUS * 0.95)
        candidate = anchor + Vec2.from_polar(distance, angle)
        if all(candidate.distance_to(p) > 4.0 for p in points):
            points.append(candidate)
    return points


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=3, max_value=7),
    st.integers(min_value=0, max_value=10_000),
)
def test_flooding_delivers_on_random_connected_graphs(count, seed):
    positions = connected_positions(count, seed)
    assert visibility_is_connected(positions, RADIUS)

    robots = [
        Robot(
            position=p,
            protocol=LocalGranularProtocol(),
            sigma=4.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    simulator = VisibilitySimulator(robots, visibility_radius=RADIUS)
    routers = [FloodRouter(MovementChannel(r.protocol)) for r in robots]

    src = seed % count
    dst = (src + 1 + seed // 7 % (count - 1)) % count
    if src == dst:
        dst = (dst + 1) % count

    payload = f"p{seed}".encode()
    routers[src].send(dst, payload)

    route = shortest_route(positions, RADIUS, src, dst)
    assert route is not None
    budget = 900 * (len(route) + 2)  # generous per-hop step budget
    for _ in range(budget):
        simulator.step()
        for router in routers:
            router.pump(simulator.time)
        if routers[dst].inbox:
            break

    inbox = routers[dst].inbox
    assert len(inbox) == 1, f"route {route}: expected delivery"
    assert inbox[0].payload == payload
    assert inbox[0].origin == src
