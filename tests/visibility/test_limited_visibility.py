"""Tests for limited-visibility simulation, protocol, and routing."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.channels.transport import MovementChannel
from repro.errors import ChannelError, ModelError, ProtocolError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.visibility.flooding import FloodRouter
from repro.visibility.protocol import LocalGranularProtocol
from repro.visibility.simulator import VisibilitySimulator


def line_positions(count: int, spacing: float = 10.0) -> List[Vec2]:
    return [Vec2(spacing * i, 0.0) for i in range(count)]


def build_line(count: int = 5, radius: float = 12.0) -> Tuple[
    VisibilitySimulator, List[MovementChannel], List[FloodRouter]
]:
    robots = [
        Robot(
            position=p,
            protocol=LocalGranularProtocol(),
            sigma=4.0,
            observable_id=i,
        )
        for i, p in enumerate(line_positions(count))
    ]
    sim = VisibilitySimulator(robots, visibility_radius=radius)
    channels = [MovementChannel(r.protocol) for r in robots]
    routers = [FloodRouter(c) for c in channels]
    return sim, channels, routers


def pump(sim, routers, steps: int) -> None:
    for _ in range(steps):
        sim.step()
        for router in routers:
            router.pump(sim.time)


class TestVisibilitySimulator:
    def test_radius_validated(self):
        robots = [Robot(position=Vec2(0, 0), protocol=LocalGranularProtocol(), observable_id=0)]
        with pytest.raises(ModelError):
            VisibilitySimulator(robots, visibility_radius=0.0)

    def test_observations_filtered(self):
        sim, _, _ = build_line()
        protocol = sim.protocol_of(2)
        obs = sim._observe(2)
        assert obs.visible_indices() == (1, 2, 3)
        assert obs.get(0) is None
        with pytest.raises(KeyError):
            obs.position_of(4)

    def test_binding_knowledge_filtered(self):
        sim, _, _ = build_line()
        info = sim.protocol_of(0).info
        assert info.initial_positions[0] is not None
        assert info.initial_positions[1] is not None
        assert info.initial_positions[2] is None  # 20 > 12 away
        assert info.visibility_radius == pytest.approx(12.0)


class TestLocalGranularProtocol:
    def test_requires_visibility_system(self):
        from repro.model.simulator import Simulator

        robots = [
            Robot(position=Vec2(0, 0), protocol=LocalGranularProtocol(), observable_id=0),
            Robot(position=Vec2(5, 0), protocol=LocalGranularProtocol(), observable_id=1),
        ]
        with pytest.raises(ProtocolError):
            Simulator(robots)  # unlimited visibility -> wrong protocol

    def test_requires_roster_ids(self):
        robots = [
            Robot(position=Vec2(0, 0), protocol=LocalGranularProtocol(), observable_id=7),
            Robot(position=Vec2(5, 0), protocol=LocalGranularProtocol(), observable_id=3),
        ]
        with pytest.raises(ProtocolError):
            VisibilitySimulator(robots, visibility_radius=10.0)

    def test_visible_peers(self):
        sim, _, _ = build_line()
        assert sim.protocol_of(0).visible_peers() == [1]
        assert sim.protocol_of(2).visible_peers() == [1, 3]
        assert sim.protocol_of(2).can_see(3)
        assert not sim.protocol_of(2).can_see(4)

    def test_one_hop_delivery(self):
        sim, channels, _ = build_line()
        sim.protocol_of(1).send_bits(2, [1, 0, 1])
        sim.run(8)
        assert [e.bit for e in sim.protocol_of(2).received] == [1, 0, 1]

    def test_direct_send_to_invisible_rejected(self):
        sim, _, _ = build_line()
        sim.protocol_of(0).send_bits(4, [1])
        with pytest.raises(ProtocolError):
            sim.run(2)

    def test_granular_radius_is_collision_safe(self):
        """The local radius never exceeds half the true NN distance."""
        sim, _, _ = build_line()
        # Spacing 10: true half-NN distance is 5; the local bound is
        # min(12, 10)/2 = 5.
        protocol = sim.protocol_of(2)
        assert protocol._granulars[2].radius == pytest.approx(5.0)

    def test_isolated_robot_uses_visibility_bound(self):
        positions = [Vec2(0, 0), Vec2(100, 0), Vec2(200, 0)]
        robots = [
            Robot(position=p, protocol=LocalGranularProtocol(), sigma=4.0, observable_id=i)
            for i, p in enumerate(positions)
        ]
        sim = VisibilitySimulator(robots, visibility_radius=12.0)
        assert sim.protocol_of(0)._granulars[0].radius == pytest.approx(6.0)


class TestFloodRouter:
    def test_requires_local_protocol(self):
        from repro.apps.harness import SwarmHarness, ring_positions

        h = SwarmHarness(ring_positions(3, jitter=0.05), lambda: SyncGranularProtocol())
        with pytest.raises(ChannelError):
            FloodRouter(h.channel(0))

    def test_ttl_validated(self):
        sim, channels, _ = build_line(3)
        with pytest.raises(ChannelError):
            FloodRouter(channels[0], ttl=0)

    def test_multi_hop_delivery(self):
        sim, channels, routers = build_line(5)
        routers[0].send(4, "across the line")
        pump(sim, routers, 4000)
        inbox = routers[4].inbox
        assert len(inbox) == 1
        assert inbox[0].payload == b"across the line"
        assert inbox[0].origin == 0

    def test_direct_when_visible(self):
        sim, channels, routers = build_line(3)
        copies = routers[1].send(2, "adjacent")
        assert copies == 1
        pump(sim, routers, 600)
        assert routers[2].inbox[0].payload == b"adjacent"

    def test_duplicate_suppression(self):
        """A ring topology floods both ways; delivery happens once."""
        import math

        count = 6
        radius = 9.0
        ring = [Vec2.from_polar(8.0, 2 * math.pi * i / count) for i in range(count)]
        robots = [
            Robot(position=p, protocol=LocalGranularProtocol(), sigma=3.0, observable_id=i)
            for i, p in enumerate(ring)
        ]
        sim = VisibilitySimulator(robots, visibility_radius=radius)
        channels = [MovementChannel(r.protocol) for r in robots]
        routers = [FloodRouter(c) for c in channels]
        # Opposite side of the ring: 3 hops either way.
        routers[0].send(3, "around")
        pump(sim, routers, 8000)
        assert [m.payload for m in routers[3].inbox] == [b"around"]

    def test_ttl_expiry_blocks_delivery(self):
        sim, channels, routers = build_line(5)
        short_ttl = FloodRouter(MovementChannel(sim.protocol_of(0)), ttl=2)
        # Rebuild router list with the short-TTL sender.
        routers = [short_ttl] + routers[1:]
        short_ttl.send(4, "too far")
        pump(sim, routers, 3000)
        assert routers[4].inbox == []

    def test_bidirectional_traffic(self):
        sim, channels, routers = build_line(4)
        routers[0].send(3, "east")
        routers[3].send(0, "west")
        pump(sim, routers, 5000)
        assert routers[3].inbox[0].payload == b"east"
        assert routers[0].inbox[0].payload == b"west"

    def test_self_send_rejected(self):
        sim, channels, routers = build_line(3)
        with pytest.raises(ChannelError):
            routers[0].send(0, "loop")
