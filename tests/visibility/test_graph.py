"""Tests for visibility graphs."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.geometry.vec import Vec2
from repro.visibility.graph import (
    shortest_route,
    visibility_graph,
    visibility_is_connected,
    visibility_neighbors,
)


def line(count: int, spacing: float = 10.0):
    return [Vec2(spacing * i, 0.0) for i in range(count)]


class TestGraph:
    def test_radius_validated(self):
        with pytest.raises(ModelError):
            visibility_graph(line(3), 0.0)

    def test_line_topology(self):
        graph = visibility_graph(line(4), 12.0)
        assert set(graph.edges) == {(0, 1), (1, 2), (2, 3)}

    def test_full_visibility(self):
        graph = visibility_graph(line(4), 100.0)
        assert graph.number_of_edges() == 6

    def test_neighbors(self):
        neighbors = visibility_neighbors(line(4), 12.0)
        assert neighbors == {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}

    def test_boundary_inclusive(self):
        graph = visibility_graph([Vec2(0, 0), Vec2(10, 0)], 10.0)
        assert graph.has_edge(0, 1)


class TestConnectivity:
    def test_connected_line(self):
        assert visibility_is_connected(line(5), 12.0)

    def test_disconnected(self):
        pts = line(3) + [Vec2(1000.0, 0.0)]
        assert not visibility_is_connected(pts, 12.0)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            visibility_is_connected([], 5.0)


class TestRoutes:
    def test_shortest_route_line(self):
        assert shortest_route(line(5), 12.0, 0, 4) == [0, 1, 2, 3, 4]

    def test_direct_when_visible(self):
        assert shortest_route(line(3), 100.0, 0, 2) == [0, 2]

    def test_no_route(self):
        pts = line(2) + [Vec2(1000.0, 0.0)]
        assert shortest_route(pts, 12.0, 0, 2) is None
