"""Tests for the CORDA-style stale-look model and phase dilation."""

from __future__ import annotations

from typing import List

import pytest

from repro.apps.harness import ring_positions
from repro.corda.simulator import StaleLookSimulator
from repro.errors import ModelError, ProtocolError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.protocols.sync_granular import SyncGranularProtocol

BITS = [1, 0, 1, 0, 1]


def build(delay: int, dilation: int, seed: int = 0) -> tuple:
    positions = ring_positions(5, radius=10.0, jitter=0.06)
    robots = [
        Robot(
            position=p,
            protocol=SyncGranularProtocol(dilation=dilation),
            sigma=4.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    sim = StaleLookSimulator(robots, max_delay=delay, seed=seed)
    return sim, robots


def run_transfer(delay: int, dilation: int, seed: int = 0) -> List[int]:
    sim, robots = build(delay, dilation, seed)
    robots[0].protocol.send_bits(2, BITS)
    sim.run(2 * dilation * len(BITS) + 2 * delay + 10)
    return [e.bit for e in robots[2].protocol.received]


class TestSimulator:
    def test_delay_validated(self):
        positions = [Vec2(0, 0), Vec2(10, 0)]
        robots = [
            Robot(position=p, protocol=SyncGranularProtocol(), observable_id=i)
            for i, p in enumerate(positions)
        ]
        with pytest.raises(ModelError):
            StaleLookSimulator(robots, max_delay=-1)

    def test_zero_delay_is_ssm(self):
        assert run_transfer(delay=0, dilation=1) == BITS

    def test_look_times_monotone_and_bounded(self):
        sim, robots = build(delay=3, dilation=1, seed=7)
        previous = [0] * 5
        for _ in range(60):
            sim.step()
            for i in range(5):
                look = sim.look_time_of(i)
                assert look >= previous[i]
                assert look >= sim.time - 1 - 3  # bounded lag
                previous[i] = look

    def test_dilation_validated(self):
        with pytest.raises(ProtocolError):
            SyncGranularProtocol(dilation=0)


class TestStalenessBreaksBaseProtocol:
    """The open-problem side: lag >= 1 garbles undilated transmission."""

    @pytest.mark.parametrize("delay", [1, 2, 4])
    def test_bits_lost_or_garbled(self, delay):
        failures = 0
        for seed in range(10):
            if run_transfer(delay=delay, dilation=1, seed=seed) != BITS:
                failures += 1
        assert failures > 5  # breaks on most schedules


class TestDilationRepairs:
    """The positive result: dilation d+1 tolerates lag d."""

    @pytest.mark.parametrize("delay", [1, 2, 4])
    def test_matched_dilation_delivers(self, delay):
        for seed in range(10):
            assert run_transfer(delay=delay, dilation=delay + 1, seed=seed) == BITS

    def test_overprovisioned_dilation_also_fine(self):
        assert run_transfer(delay=1, dilation=4, seed=3) == BITS

    def test_dilation_under_ssm_just_slows_down(self):
        sim, robots = build(delay=0, dilation=3)
        robots[0].protocol.send_bits(2, [1, 0])
        sim.run(2 * 3 * 2 + 2)
        assert [e.bit for e in robots[2].protocol.received] == [1, 0]
        # Cost: 2 * dilation instants per bit.
        moves = sim.trace.movements_of(0)
        assert len(moves) == 4  # still 2 position changes per bit

    def test_undermatched_dilation_insufficient(self):
        """Dilation d tolerates only d-1 of lag; at lag d it can fail."""
        failures = 0
        for seed in range(15):
            if run_transfer(delay=3, dilation=2, seed=seed) != BITS:
                failures += 1
        assert failures > 0
