"""Scalar-vs-batch trace equivalence: the whole protocol zoo.

Seeded property tests: the same swarm driven by the scalar
:class:`~repro.model.simulator.Simulator` and by
:class:`~repro.batch.engine.BatchSimulator` must be byte-identical —
positions, activation sets, received and overheard bit streams,
activation counts and configuration epochs — under both the
synchronous and the fair-asynchronous scheduler, for all six
protocols.  The ``repro.verify`` differential oracle sweeps the full
adversary matrix; these tests are its fast, always-on arm.
"""

from __future__ import annotations

import random

import pytest

from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler, SynchronousScheduler
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.flocking import FlockingProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_logk import SyncLogKProtocol
from repro.protocols.sync_two import SyncTwoProtocol
from tests.batch.conftest import assert_lockstep, requires_numpy, twin_sims

pytestmark = requires_numpy

SCHEDULERS = {
    "sync": SynchronousScheduler,
    "fair_async": lambda: FairAsynchronousScheduler(seed=42),
}


def _pair_positions(rng: random.Random):
    distance = rng.uniform(8.0, 14.0)
    angle = rng.uniform(0.0, 6.28)
    center = Vec2(rng.uniform(-5, 5), rng.uniform(-5, 5))
    return [center, center + Vec2.from_polar(distance, angle)]


@pytest.mark.parametrize("sched", sorted(SCHEDULERS))
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "naming,regime,identified",
    [
        ("identified", "sense_of_direction", True),
        ("sod", "sense_of_direction", False),
        ("sec", "chirality", False),
    ],
)
def test_sync_granular_equivalence(naming, regime, identified, seed, sched):
    scalar, batched, _ = twin_sims(
        seed,
        5,
        lambda: SyncGranularProtocol(naming=naming),
        regime=regime,
        identified=identified,
        scheduler_factory=SCHEDULERS[sched],
    )
    assert batched.mode == "kernel"
    rng = random.Random(seed * 99 + 5)
    for src, dst in ((0, 3), (2, 1)):
        payload = [rng.randrange(2) for _ in range(4)]
        scalar.protocol_of(src).send_bits(dst, payload)
        batched.protocol_of(src).send_bits(dst, payload)
    assert_lockstep(scalar, batched, 60)


@pytest.mark.parametrize("sched", sorted(SCHEDULERS))
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "name,factory",
    [
        ("sync_two", lambda: SyncTwoProtocol()),
        ("async_two", lambda: AsyncTwoProtocol(bounded=True)),
    ],
)
def test_pair_protocol_equivalence(name, factory, seed, sched):
    rng = random.Random(seed)
    positions = _pair_positions(rng)
    sigma = 0.6 * positions[0].distance_to(positions[1])
    scalar, batched, _ = twin_sims(
        seed,
        2,
        factory,
        positions=positions,
        sigma=sigma,
        scheduler_factory=SCHEDULERS[sched],
    )
    assert batched.mode == "object"
    for sim in (scalar, batched):
        sim.protocol_of(0).send_bits(1, [1, 0, 1])
    assert_lockstep(scalar, batched, 150)


@pytest.mark.parametrize("sched", sorted(SCHEDULERS))
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "name,regime,identified,factory",
    [
        (
            "sync_logk",
            "sense_of_direction",
            True,
            lambda: SyncLogKProtocol(k=2, naming="identified"),
        ),
        ("async_n", "chirality", False, lambda: AsyncNProtocol(naming="sec")),
        (
            "flocking",
            "sense_of_direction",
            True,
            lambda: FlockingProtocol(
                SyncGranularProtocol(naming="identified"),
                direction=Vec2(1.0, 0.0),
                speed_fraction=0.01,
            ),
        ),
    ],
)
def test_swarm_protocol_equivalence(name, regime, identified, factory, seed, sched):
    scalar, batched, _ = twin_sims(
        seed,
        4,
        factory,
        regime=regime,
        identified=identified,
        scheduler_factory=SCHEDULERS[sched],
    )
    assert batched.mode == "object"
    for sim in (scalar, batched):
        sim.protocol_of(0).send_bits(2, [1, 0])
    assert_lockstep(scalar, batched, 200)


def test_backend_oracle_cells_quick():
    """The packaged differential oracle agrees on a matrix sample."""
    from repro.verify.backends import compare_cell, run_backend_matrix
    from repro.verify.scenarios import CELLS

    for key in (("sync_granular", "synchronous"), ("async_n", "displacement")):
        result = compare_cell(CELLS[key], seed=0, quick=True)
        assert result.ok, (result.problems, result.error)

    report = run_backend_matrix(
        ["sync_two"], ["synchronous"], seeds=range(2), quick=True
    )
    assert report.ok
    assert len(report.results) == 4  # 2 matrix + 2 fair-async comparisons
    variants = {r.variant for r in report.results}
    assert variants == {"matrix", "fair_async"}
