"""Lean trace recording of the batch engine.

With a strided :class:`~repro.model.trace.TracePolicy`, the batch
engine materialises :class:`~repro.model.trace.TraceStep` tuples only
on retained instants and keeps the latest configuration as raw array
columns — ``latest`` and ``positions_at`` must nonetheless behave
exactly like the scalar trace.
"""

from __future__ import annotations

from repro.model.trace import TracePolicy
from repro.protocols.sync_granular import SyncGranularProtocol
from tests.batch.conftest import requires_numpy, twin_sims

pytestmark = requires_numpy


def _strided_pair(stride: int):
    from repro.batch.engine import BatchSimulator, BatchTrace
    from repro.model.robot import Robot
    from repro.model.simulator import Simulator

    scalar, batched, positions = twin_sims(0, 6, SyncGranularProtocol)

    def clone(sim_robots, cls, **kwargs):
        robots = [
            Robot(
                position=r.position,
                protocol=SyncGranularProtocol(),
                frame=r.frame,
                sigma=r.sigma,
                observable_id=r.observable_id,
            )
            for r in sim_robots
        ]
        return cls(robots, **kwargs)

    lean_scalar = clone(scalar.robots, Simulator, trace_policy=TracePolicy(stride=stride))
    lean_batch = clone(scalar.robots, BatchSimulator, trace_policy=TracePolicy(stride=stride))
    assert isinstance(lean_batch.trace, BatchTrace)
    return lean_scalar, lean_batch


def test_strided_trace_matches_scalar():
    lean_scalar, lean_batch = _strided_pair(stride=10)
    for sim in (lean_scalar, lean_batch):
        sim.protocol_of(0).send_bits(3, [1, 0])
        sim.run(55)
    ta, tb = lean_scalar.trace, lean_batch.trace
    assert tb.skipped >= 49  # non-retained instants are counted, not stored
    assert [s.time for s in ta.steps] == [s.time for s in tb.steps]
    assert len(tb.steps) == 6  # t = 0, 10, 20, 30, 40, 50
    assert ta.latest.time == tb.latest.time == 54
    assert ta.latest.positions == tb.latest.positions
    assert ta.positions_at(55) == tb.positions_at(55)  # served from `latest`
    assert ta.positions_at(11) == tb.positions_at(11)  # served from a retained step
    assert ta.positions_at(0) == tb.positions_at(0)


def test_unstrided_trace_retains_everything():
    lean_scalar, lean_batch = _strided_pair(stride=1)
    for sim in (lean_scalar, lean_batch):
        sim.protocol_of(0).send_bits(3, [1])
        sim.run(20)
    ta, tb = lean_scalar.trace, lean_batch.trace
    assert tb.skipped == ta.skipped
    assert [s.time for s in ta.steps] == [s.time for s in tb.steps]
    assert all(a.positions == b.positions for a, b in zip(ta.steps, tb.steps))


def test_latest_survives_step_listener_materialisation():
    # A step listener forces per-step materialisation; the lean trace
    # must keep retention decisions independent of that.
    lean_scalar, lean_batch = _strided_pair(stride=7)
    seen = []
    lean_batch.add_step_listener(lambda sim, step: seen.append(step.time))
    for sim in (lean_scalar, lean_batch):
        sim.run(15)
    assert seen == list(range(15))
    assert [s.time for s in lean_batch.trace.steps] == [s.time for s in lean_scalar.trace.steps]
    assert lean_batch.trace.latest.positions == lean_scalar.trace.latest.positions
