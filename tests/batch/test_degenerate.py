"""Degenerate-geometry inputs: the vectorized paths must not wobble.

Collinear swarms, duplicate points, near-degenerate SEC inputs and
adversarial near-ties are exactly where a vectorized geometry kernel
silently diverges from its scalar reference.  These tests pin the
scalar-fallback behaviour of :mod:`repro.batch.sec`, the exactness of
the neighbour passes, and full-simulation parity on collinear swarms.
"""

from __future__ import annotations

import math
import random

import pytest

import repro.batch
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2
from repro.protocols.sync_granular import SyncGranularProtocol
from tests.batch.conftest import assert_lockstep, requires_numpy, twin_sims

pytestmark = requires_numpy


def _np():
    return repro.batch.require_numpy()


def _sec_case(points):
    from repro.batch.sec import batch_sec

    np = _np()
    px = np.array([p.x for p in points], dtype=np.float64)
    py = np.array([p.y for p in points], dtype=np.float64)
    circle, fell_back = batch_sec(px, py)
    reference = smallest_enclosing_circle(points)
    assert circle.center.distance_to(reference.center) <= 1e-9 * max(1.0, reference.radius)
    assert abs(circle.radius - reference.radius) <= 1e-9 * max(1.0, reference.radius)
    for p in points:
        assert circle.center.distance_to(p) <= circle.radius + 1e-9
    return fell_back


def test_sec_collinear_points():
    _sec_case([Vec2(float(i), 2.0 * i) for i in range(7)])


def test_sec_duplicate_points():
    _sec_case([Vec2(0.0, 0.0), Vec2(0.0, 0.0), Vec2(4.0, 0.0), Vec2(4.0, 0.0)])


def test_sec_all_identical_points():
    from repro.batch.sec import batch_sec

    np = _np()
    px = np.full(5, 3.25)
    py = np.full(5, -1.5)
    circle, fell_back = batch_sec(px, py)
    assert circle.radius == 0.0 and circle.center == Vec2(3.25, -1.5)
    assert not fell_back


def test_sec_near_degenerate_triangle():
    # Three nearly-collinear points: the circumcircle is enormous and
    # numerically treacherous; the answer must still match the scalar SEC.
    _sec_case([Vec2(0.0, 0.0), Vec2(10.0, 1e-9), Vec2(20.0, 0.0)])


def test_sec_large_hull_takes_scalar_fallback():
    # More hull points than HULL_CAP: the candidate enumeration bows
    # out and the scalar Welzl reference must be used (and flagged).
    from repro.batch.sec import HULL_CAP

    count = HULL_CAP + 12
    points = [
        Vec2(math.cos(2.0 * math.pi * i / count), math.sin(2.0 * math.pi * i / count))
        for i in range(count)
    ]
    assert _sec_case(points) is True


def test_sec_fallback_bumps_counter_via_geometry():
    from repro.batch.geometry import BatchGeometry
    from repro.batch.sec import HULL_CAP

    np = _np()
    count = HULL_CAP + 12
    px = np.cos(2.0 * np.pi * np.arange(count) / count)
    py = np.sin(2.0 * np.pi * np.arange(count) / count)
    geometry = BatchGeometry()
    geometry.update(1, lambda: (px, py))
    geometry.sec()
    assert geometry.stats.registry.counter("batch_sec_fallbacks").value == 1


def test_nearest_neighbor_matches_bruteforce_scalar():
    np = _np()
    from repro.batch.neighbors import nearest_neighbor_sq

    rng = random.Random(7)
    points = [Vec2(rng.uniform(-50, 50), rng.uniform(-50, 50)) for _ in range(200)]
    px = np.array([p.x for p in points])
    py = np.array([p.y for p in points])
    expected = [
        min(
            (p.x - q.x) ** 2 + (p.y - q.y) ** 2
            for j, q in enumerate(points)
            if j != i
        )
        for i, p in enumerate(points)
    ]
    for brute_limit in (4096, 1):  # vectorized brute force and grid path
        dist_sq, _ = nearest_neighbor_sq(px, py, brute_limit=brute_limit)
        assert dist_sq.tolist() == expected


def test_exact_min_hypot_bit_identical_on_near_ties():
    np = _np()
    from repro.batch.neighbors import exact_min_hypot

    rng = random.Random(3)
    base = 12.345678901234567
    dx = np.array([base * (1.0 + rng.uniform(-1e-13, 1e-13)) for _ in range(64)])
    dy = np.array([base * (1.0 + rng.uniform(-1e-13, 1e-13)) for _ in range(64)])
    expected = min(math.hypot(float(a), float(b)) for a, b in zip(dx, dy))
    assert exact_min_hypot(dx, dy) == expected


@pytest.mark.parametrize("seed", [0, 1])
def test_collinear_swarm_full_parity(seed):
    # An exactly collinear swarm keeps every granular disc tangent and
    # the SEC centre on the line — worst case for the naming geometry.
    positions = [Vec2(6.0 * i, 3.0 * i) for i in range(5)]
    scalar, batched, _ = twin_sims(
        seed,
        5,
        lambda: SyncGranularProtocol(naming="identified"),
        positions=positions,
    )
    assert batched.mode == "kernel"
    for sim in (scalar, batched):
        sim.protocol_of(0).send_bits(4, [1, 0, 1])
    assert_lockstep(scalar, batched, 50)
