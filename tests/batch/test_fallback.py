"""The numpy-free degradation paths of :mod:`repro.batch`.

These tests simulate a numpy-free interpreter by poisoning the probe
cache, so they run (and matter) everywhere — including environments
where numpy *is* installed.  The contract: ``available()`` answers
False without raising, ``make_simulator`` silently degrades to the
scalar engine, and ``strict=True`` refuses with the one canonical
hint message.
"""

from __future__ import annotations

import pytest

import repro.batch
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.simulator import Simulator
from repro.protocols.sync_granular import SyncGranularProtocol
from tests.batch.conftest import requires_numpy


def _swarm():
    from repro.geometry.frames import make_frames

    positions = [Vec2(0.0, 0.0), Vec2(8.0, 0.0), Vec2(3.0, 7.0)]
    frames = make_frames(3, "sense_of_direction", seed=0)
    return [
        Robot(
            position=p,
            protocol=SyncGranularProtocol(),
            frame=frames[i],
            sigma=2.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]


@pytest.fixture
def no_numpy(monkeypatch):
    """Make ``repro.batch`` believe numpy is not importable."""
    monkeypatch.setattr(repro.batch, "_NUMPY", None)
    monkeypatch.setattr(repro.batch, "_PROBED", True)


def test_available_probe_answers_false(no_numpy):
    assert repro.batch.available() is False
    assert repro.batch.supports(_swarm()) is False


def test_require_numpy_raises_with_hint(no_numpy):
    with pytest.raises(ImportError, match="batch backend needs numpy"):
        repro.batch.require_numpy()


def test_make_simulator_degrades_to_scalar(no_numpy):
    sim = repro.batch.make_simulator(_swarm(), backend="batch")
    assert type(sim) is Simulator
    sim.run(3)  # the degraded simulator is fully functional


def test_make_simulator_strict_refuses(no_numpy):
    with pytest.raises(ImportError, match="batch backend needs numpy"):
        repro.batch.make_simulator(_swarm(), backend="batch", strict=True)


def test_backend_oracle_cli_skips_cleanly(no_numpy, capsys):
    from repro.verify.__main__ import main

    assert main(["--backend-oracle", "--quick", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "backend oracle skipped" in out


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        repro.batch.make_simulator(_swarm(), backend="simd")


def test_scalar_backend_never_touches_numpy(no_numpy):
    sim = repro.batch.make_simulator(_swarm(), backend="scalar")
    assert type(sim) is Simulator


@requires_numpy
def test_make_simulator_batch_selects_batch_engine():
    from repro.batch.engine import BatchSimulator

    sim = repro.batch.make_simulator(_swarm(), backend="batch")
    assert type(sim) is BatchSimulator
    assert sim.mode == "kernel"


@requires_numpy
def test_make_simulator_strict_rejects_unsupported_swarm():
    with pytest.raises(ValueError, match="cannot host this swarm"):
        repro.batch.make_simulator([], backend="batch", strict=True)
