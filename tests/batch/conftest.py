"""Shared helpers for the batch-backend tests.

Most tests in this package need numpy (the ``[batch]`` extra); they
set ``pytestmark = requires_numpy`` so the directory skips cleanly on
a numpy-free interpreter — which is exactly how the default CI test
job runs.  The fallback tests (:mod:`tests.batch.test_fallback`) run
everywhere by construction.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

import pytest

import repro.batch
from repro.geometry.frames import make_frames
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler, SynchronousScheduler
from repro.model.simulator import Simulator

requires_numpy = pytest.mark.skipif(
    not repro.batch.available(),
    reason="batch backend needs numpy (install the [batch] extra)",
)


def scatter(rng: random.Random, count: int, spread: float = 18.0,
            min_sep: float = 4.0) -> List[Vec2]:
    """Well-separated random positions (rejection sampling)."""
    positions: List[Vec2] = []
    while len(positions) < count:
        p = Vec2(rng.uniform(-spread, spread), rng.uniform(-spread, spread))
        if all(p.distance_to(q) >= min_sep for q in positions):
            positions.append(p)
    return positions


def twin_sims(
    seed: int,
    count: int,
    protocol_factory: Callable[[], object],
    *,
    regime: str = "sense_of_direction",
    identified: bool = True,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    sigma: float = 12.0,
    positions: Optional[List[Vec2]] = None,
):
    """Build the same swarm twice: a scalar and a batch simulator.

    Both swarms are constructed from identical, freshly-drawn robots
    (each simulator needs its own protocol instances), so any observable
    difference between the two runs is a backend bug.
    """
    from repro.batch.engine import BatchSimulator

    rng = random.Random(seed)
    pts = positions if positions is not None else scatter(rng, count)
    frames = make_frames(len(pts), regime, seed=seed)

    def robots():
        return [
            Robot(
                position=p,
                protocol=protocol_factory(),
                frame=frames[i],
                sigma=sigma,
                observable_id=i if identified else None,
            )
            for i, p in enumerate(pts)
        ]

    sched = scheduler_factory if scheduler_factory is not None else SynchronousScheduler
    return Simulator(robots(), sched()), BatchSimulator(robots(), sched()), pts


def assert_lockstep(
    scalar,
    batched,
    steps: int,
    displace: Optional[Dict[int, Tuple[int, Vec2]]] = None,
) -> None:
    """Drive both simulators in lockstep; any divergence fails the test.

    Positions and activation sets are compared per instant; received /
    overheard streams, activation counters and epochs at the end.  A
    step that raises must raise identically (type and message) on both
    backends — that run then counts as passed.
    """
    for t in range(steps):
        if displace and t in displace:
            index, pos = displace[t]
            scalar.displace(index, pos)
            batched.displace(index, pos)
        err_a = err_b = None
        step_a = step_b = None
        try:
            step_a = scalar.step()
        except Exception as exc:  # noqa: BLE001 - parity check
            err_a = exc
        try:
            step_b = batched.step()
        except Exception as exc:  # noqa: BLE001 - parity check
            err_b = exc
        if err_a is not None or err_b is not None:
            assert err_a is not None and err_b is not None, (
                f"asymmetric exception at t={t}: scalar={err_a!r} batch={err_b!r}"
            )
            assert type(err_a) is type(err_b) and str(err_a) == str(err_b), (
                f"exception divergence at t={t}: scalar={err_a!r} batch={err_b!r}"
            )
            return
        assert step_a.active == step_b.active, f"active set diverged at t={t}"
        assert step_a.positions == step_b.positions, (
            f"positions diverged at t={t}: "
            f"{[i for i, (p, q) in enumerate(zip(step_a.positions, step_b.positions)) if p != q]}"
        )
    for i in range(scalar.count):
        pa = scalar.protocol_of(i)
        pb = batched.protocol_of(i)
        assert pa.received == pb.received, f"received stream diverged for robot {i}"
        assert pa.overheard == pb.overheard, f"overheard stream diverged for robot {i}"
        assert pa.activations == pb.activations, f"activations diverged for robot {i}"
    assert scalar.epoch == batched.epoch, "configuration epochs diverged"
    assert tuple(scalar.positions) == tuple(batched.positions)
