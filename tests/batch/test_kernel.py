"""Kernel-mode specifics: eligibility, faults, holds, counters, limits.

The vectorized granular kernel only engages for exact
:class:`~repro.protocols.sync_granular.SyncGranularProtocol` swarms in
its envelope; everything else runs through the object core.  These
tests pin the mode selection and the kernel's trickier parity paths
(displacement faults, dilation holds, the overheard cap) plus the
batch counters surfaced through ``repro.obs``.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.simulator import Simulator
from repro.protocols.sync_granular import SyncGranularProtocol
from tests.batch.conftest import assert_lockstep, requires_numpy, twin_sims

pytestmark = requires_numpy


@pytest.mark.parametrize("seed", [0, 3])
def test_displacement_tolerant_parity(seed):
    scalar, batched, positions = twin_sims(
        seed, 5, lambda: SyncGranularProtocol(tolerate_ambiguity=True)
    )
    assert batched.mode == "kernel"
    for sim in (scalar, batched):
        sim.protocol_of(0).send_bits(3, [1, 0, 1])
    center = positions[4]
    displace = {
        4: (4, center + Vec2(0.9, 0.4)),
        11: (4, center + Vec2(-0.2, 0.1)),
    }
    assert_lockstep(scalar, batched, 40, displace=displace)


def test_displacement_intolerant_parity():
    scalar, batched, positions = twin_sims(
        0, 5, lambda: SyncGranularProtocol(tolerate_ambiguity=False)
    )
    for sim in (scalar, batched):
        sim.protocol_of(1).send_bits(2, [1])
    displace = {4: (4, positions[4] + Vec2(0.77, 0.31))}
    assert_lockstep(scalar, batched, 30, displace=displace)


@pytest.mark.parametrize("seed", [0, 5])
def test_dilation_hold_parity(seed):
    scalar, batched, _ = twin_sims(
        seed, 5, lambda: SyncGranularProtocol(dilation=3)
    )
    assert batched.mode == "kernel"
    for sim in (scalar, batched):
        sim.protocol_of(2).send_bits(0, [1, 1, 0])
    assert_lockstep(scalar, batched, 60)


def test_subclass_forces_object_mode():
    class Tagged(SyncGranularProtocol):
        """A subclass must not be captured by the vectorized kernel."""

    _, batched, _ = twin_sims(0, 4, lambda: Tagged(naming="identified"))
    assert batched.mode == "object"


def test_mixed_config_forces_object_mode():
    from repro.batch.engine import BatchSimulator
    from repro.geometry.frames import make_frames

    frames = make_frames(4, "sense_of_direction", seed=0)
    positions = [Vec2(0.0, 0.0), Vec2(9.0, 0.0), Vec2(0.0, 9.0), Vec2(9.0, 9.0)]
    robots = [
        Robot(
            position=p,
            protocol=SyncGranularProtocol(dilation=1 if i == 0 else 2),
            frame=frames[i],
            sigma=2.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    batched = BatchSimulator(robots)
    assert batched.mode == "object"


def test_overheard_cap_raises_beyond_limit():
    from repro.batch.engine import BatchSimulator

    scalar, _, positions = twin_sims(0, 5, SyncGranularProtocol)
    robots = [
        Robot(
            position=p,
            protocol=SyncGranularProtocol(),
            frame=r.frame,
            sigma=r.sigma,
            observable_id=r.observable_id,
        )
        for p, r in zip(positions, scalar.robots)
    ]
    capped = BatchSimulator(robots, overheard_limit=2)
    assert capped.mode == "kernel"
    capped.protocol_of(0).send_bits(3, [1, 0])
    capped.run(20)
    assert capped.protocol_of(3).received  # receipt still works
    with pytest.raises(ProtocolError):
        capped.protocol_of(1).overheard


def test_batch_counters_recorded():
    _, batched, _ = twin_sims(0, 5, SyncGranularProtocol)
    batched.protocol_of(0).send_bits(3, [1, 0, 1])
    batched.run(30)
    registry = batched.stats.registry
    names = {name for name, _, _ in registry.series()}
    assert {
        "batch_array_reallocs",
        "batch_neighbor_passes",
        "batch_sec_fallbacks",
    } <= names
    assert registry.counter("batch_array_reallocs").value > 0
    # the geometry facade's vectorized neighbour pass bumps the counter
    before = registry.counter("batch_neighbor_passes").value
    batched.geometry.granular_radii()
    assert registry.counter("batch_neighbor_passes").value >= before


def test_duplicate_positions_rejected_identically():
    from repro.batch.engine import BatchSimulator
    from repro.errors import ModelError
    from repro.geometry.frames import make_frames

    frames = make_frames(3, "sense_of_direction", seed=0)
    positions = [Vec2(0.0, 0.0), Vec2(5.0, 0.0), Vec2(5.0, 0.0)]

    def robots():
        return [
            Robot(
                position=p,
                protocol=SyncGranularProtocol(),
                frame=frames[i],
                sigma=2.0,
                observable_id=i,
            )
            for i, p in enumerate(positions)
        ]

    with pytest.raises(ModelError) as scalar_err:
        Simulator(robots())
    with pytest.raises(ModelError) as batch_err:
        BatchSimulator(robots())
    assert str(scalar_err.value) == str(batch_err.value)
