"""Smoke tests: every example script runs to completion.

Examples are the first thing an adopting user executes; this keeps
them from rotting as the library evolves.  Each runs as a subprocess
exactly as documented (``python examples/<name>.py``).
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": "robot 3 received",
    "surveillance_backup.py": "rerouted over movement signals",
    "anonymous_election.py": "Elected leader",
    "async_chat.py": "Transcript",
    "flocking_convoy.py": "Messages delivered while the convoy was moving",
    "relay_network.py": "hops taken",
    "custom_protocol.py": "unanimous and correct",
    "stabilization_demo.py": "converged",
    "tour.py": "Tour complete",
}


class TestExampleInventory:
    def test_every_example_has_an_expectation(self):
        assert set(EXAMPLES) == set(EXPECTED_MARKERS), (
            "keep EXPECTED_MARKERS in sync with examples/"
        )

    def test_at_least_three_examples_exist(self):
        """The deliverable floor: a quickstart plus two scenarios."""
        assert "quickstart.py" in EXAMPLES
        assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, f"examples/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[name] in result.stdout
