"""Tests for the ``repro.campaign`` experiment-campaign engine."""
