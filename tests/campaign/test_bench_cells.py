"""Benchmark modules as campaign cells: the cells()/run_cell() pair.

Every ``bench_*.py`` module (and ``run_all`` itself, for the perf
probes) must expose the import-based ``cells()``/``run_cell(name)``
protocol from ``benchmarks.support.table_cells`` — the campaign
engine never ``exec``s a benchmark script.
"""

from __future__ import annotations

import pytest

import benchmarks.run_all as run_all
from benchmarks.support import table_cells
from repro.campaign.cells import execute_cell
from repro.errors import CampaignError


class TestModuleProtocol:
    def test_every_registered_module_exposes_the_pair(self):
        for module in run_all.MODULES:
            assert callable(getattr(module, "cells", None)), module.__name__
            assert callable(getattr(module, "run_cell", None)), module.__name__
            # Every module regenerates its table; parametrized modules
            # expose additional name[key=value] cells alongside it.
            assert "table" in module.cells(), module.__name__

    def test_run_all_exposes_the_probe_cells(self):
        assert run_all.cells() == sorted(run_all.PROBES)
        with pytest.raises(KeyError, match="no probe cell"):
            run_all.run_cell("nonsense")

    def test_table_cell_regenerates_the_experiment(self):
        """One cheap end-to-end table: Figure 1 through the executor."""
        payload = execute_cell(
            "bench",
            {"module": "benchmarks.bench_fig1_sync_two", "cell": "table"},
        )
        assert payload["ok"] is True
        assert "Figure 1" in payload["output"]

    def test_unknown_module_is_a_spec_error(self):
        with pytest.raises(CampaignError, match="cannot import"):
            execute_cell(
                "bench", {"module": "benchmarks.bench_nope", "cell": "table"}
            )

    def test_unknown_cell_is_a_spec_error(self):
        with pytest.raises(CampaignError, match="has no cell"):
            execute_cell(
                "bench",
                {"module": "benchmarks.bench_fig1_sync_two", "cell": "nope"},
            )


class TestTableCellsFactory:
    def test_named_cells_and_main(self):
        calls = []

        def fake_main():
            calls.append("main")
            print("a table")

        cells, run_cell = table_cells(
            ("extra", lambda: {"n": 3}), main=fake_main
        )
        assert cells() == ["extra", "table"]
        assert run_cell("extra") == {"n": 3}
        payload = run_cell("table")
        assert calls == ["main"]
        assert payload == {"ok": True, "output": "a table\n"}

    def test_non_dict_payloads_are_wrapped(self):
        _, run_cell = table_cells(("scalar", lambda: 42))
        assert run_cell("scalar") == {"value": 42}

    def test_unknown_cell_raises(self):
        cells, run_cell = table_cells(main=lambda: None)
        with pytest.raises(KeyError):
            run_cell("nope")

    def test_table_name_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            table_cells(("table", lambda: {}), main=lambda: None)

    def test_param_grid_expands_to_labeled_cells(self):
        def run(engine="rounds", n=0):
            return {"engine": engine, "n": n}

        cells, run_cell = table_cells(
            ("sweep", run, {"engine": ("events", "rounds"), "n": (4, 8)}),
        )
        assert cells() == [
            "sweep[engine=events,n=4]",
            "sweep[engine=events,n=8]",
            "sweep[engine=rounds,n=4]",
            "sweep[engine=rounds,n=8]",
        ]
        assert run_cell("sweep[engine=events,n=8]") == {
            "engine": "events", "n": 8,
        }

    def test_param_grid_rejects_empty_and_duplicate(self):
        with pytest.raises(ValueError, match="empty parameter grid"):
            table_cells(("sweep", lambda: {}, {}))
        with pytest.raises(ValueError, match="duplicate cell name"):
            table_cells(
                ("a", lambda: {}),
                ("a", lambda: {}),
            )


class TestCollectProbes:
    def _stub_probes(self, monkeypatch):
        monkeypatch.setattr(
            run_all, "throughput_probe",
            lambda n=64, steps=40: {"n": n, "stub": True},
        )
        monkeypatch.setattr(
            run_all, "geometry_cache_probe", lambda: {"stub": True}
        )
        monkeypatch.setattr(
            run_all, "adversarial_transparency_probe",
            lambda: {"ok": True, "stub": True},
        )
        monkeypatch.setattr(
            run_all, "event_sparse_probe",
            lambda n=10_000, events=30_000: {"n": n, "stub": True},
        )

    def test_probes_route_through_the_campaign_engine(
        self, monkeypatch, tmp_path
    ):
        """Monkeypatched probes still reach the inline executor."""
        self._stub_probes(monkeypatch)
        probes, timings = run_all.collect_probes()
        assert set(probes) == set(run_all.PROBES)
        assert probes["sync_throughput_n64"] == {"n": 64, "stub": True}
        assert set(timings) == set(run_all.PROBES)
        assert all(t >= 0.0 for t in timings.values())

    def test_crashing_probe_is_reported_not_raised(self, monkeypatch):
        self._stub_probes(monkeypatch)

        def boom():
            raise RuntimeError("probe exploded")

        monkeypatch.setattr(run_all, "geometry_cache_probe", boom)
        probes, _ = run_all.collect_probes()
        assert probes["geometry_cache"]["ok"] is False
        assert "probe exploded" in probes["geometry_cache"]["error"]

    def test_persistent_store_resumes(self, monkeypatch, tmp_path):
        self._stub_probes(monkeypatch)
        store = str(tmp_path / "probes")
        first, _ = run_all.collect_probes(store_dir=store)

        def never():
            raise AssertionError("resumed store must not re-execute")

        monkeypatch.setattr(run_all, "geometry_cache_probe", never)
        monkeypatch.setattr(run_all, "throughput_probe", never)
        monkeypatch.setattr(run_all, "adversarial_transparency_probe", never)
        second, _ = run_all.collect_probes(store_dir=store)
        assert first == second
