"""The worker pool actually overlaps cell execution.

Uses wait-bound (sleeping) cells so the check holds even on the
single-core runners CI tends to give us — CPU-bound cells cannot
speed up without cores, sleeps always can.  Margins are deliberately
loose: the point is overlap, not a benchmark.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, CellSpec

#: per-cell sleep; 6 cells -> >= 1.8s floor for any serial execution.
_SLEEP_S = 0.3
_CELLS = 6


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="parallel-test",
        cells=[
            CellSpec(
                kind="selftest",
                params={"behavior": "slow", "sleep_s": _SLEEP_S, "value": i},
            )
            for i in range(_CELLS)
        ],
        timeout_s=30.0,
        max_attempts=1,
    )


@pytest.mark.slow
def test_four_workers_overlap_wait_bound_cells(tmp_path):
    started = time.perf_counter()
    sequential = run_campaign(
        _spec(), str(tmp_path / "seq"), workers=0, git_commit="cafe"
    )
    sequential_s = time.perf_counter() - started
    assert sequential.ok
    assert sequential_s >= _CELLS * _SLEEP_S  # serial floor

    started = time.perf_counter()
    pooled = run_campaign(
        _spec(), str(tmp_path / "par"), workers=4, git_commit="cafe"
    )
    pooled_s = time.perf_counter() - started
    assert pooled.ok
    # 6 x 0.3s over 4 workers is a 0.6s critical path; allow a very
    # generous 2x-pool-startup margin and still demand real overlap.
    assert pooled_s < sequential_s * 0.75, (
        f"4 workers took {pooled_s:.2f}s vs {sequential_s:.2f}s sequential"
    )
