"""Resume semantics: a killed campaign converges on the same store.

The satellite acceptance test: run a campaign, kill it after *k*
cells (``max_cells`` — the deterministic stand-in for SIGKILL),
re-run with ``resume=True``, and require (a) exactly one result per
cell and (b) a ``results/`` directory byte-identical to the one an
uninterrupted run produces.
"""

from __future__ import annotations

import pathlib

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import ResultStore


def _spec(n: int = 8) -> CampaignSpec:
    return CampaignSpec(
        name="resume-test",
        cells=[
            CellSpec(kind="selftest", params={"behavior": "ok", "value": i})
            for i in range(n)
        ],
        timeout_s=30.0,
        max_attempts=2,
        backoff_s=0.05,
    )


def _result_bytes(root: str) -> dict:
    results = pathlib.Path(root) / "results"
    return {p.name: p.read_bytes() for p in sorted(results.glob("*.json"))}


class TestResume:
    def test_killed_campaign_resumes_to_identical_store(self, tmp_path):
        spec = _spec(8)
        interrupted = str(tmp_path / "interrupted")
        straight = str(tmp_path / "straight")

        # Run A: killed after 4 new results (2-way pool, like CI).
        partial = run_campaign(
            spec, interrupted, workers=2, max_cells=4, git_commit="cafe"
        )
        assert len(partial.outcomes) == 4
        assert len(partial.remaining) == 4
        assert not partial.complete

        # Run B: resume — only the missing cells execute.
        resumed = run_campaign(
            spec, interrupted, workers=2, resume=True, git_commit="cafe"
        )
        assert resumed.complete and resumed.ok
        assert sum(1 for o in resumed.outcomes if o.resumed) == 4
        assert sum(1 for o in resumed.outcomes if not o.resumed) == 4

        # Exactly one result per cell, never a duplicate.
        ids = [o.cell_id for o in resumed.outcomes]
        assert sorted(ids) == sorted(c.cell_id() for c in spec.cells)
        assert len(set(ids)) == len(spec.cells)

        # Byte-identical to a run that was never interrupted.
        run_campaign(spec, straight, workers=2, git_commit="cafe")
        assert _result_bytes(interrupted) == _result_bytes(straight)

    def test_resume_of_complete_store_runs_nothing(self, tmp_path):
        spec = _spec(3)
        store_dir = str(tmp_path / "s")
        run_campaign(spec, store_dir, git_commit="cafe")
        executed = []
        again = run_campaign(
            spec,
            store_dir,
            resume=True,
            git_commit="cafe",
            progress=executed.append,
        )
        assert again.complete
        assert executed == []  # progress fires on *new* results only
        assert all(o.resumed for o in again.outcomes)

    def test_resume_skips_are_journaled(self, tmp_path):
        spec = _spec(3)
        store_dir = str(tmp_path / "s")
        run_campaign(spec, store_dir, max_cells=2, git_commit="cafe")
        run_campaign(spec, store_dir, resume=True, git_commit="cafe")
        events = [e["event"] for e in ResultStore(store_dir).read_journal()]
        assert events.count("resume_skip") == 2
        assert events.count("run_start") == 2
        assert events.count("run_finish") == 2
        assert events.count("result") == 3

    def test_inline_and_pooled_results_are_identical(self, tmp_path):
        """Worker count is execution policy — the store can't tell."""
        spec = _spec(5)
        inline = str(tmp_path / "inline")
        pooled = str(tmp_path / "pooled")
        run_campaign(spec, inline, workers=0, git_commit="cafe")
        run_campaign(spec, pooled, workers=3, git_commit="cafe")
        assert _result_bytes(inline) == _result_bytes(pooled)

    def test_max_cells_zero_records_nothing(self, tmp_path):
        spec = _spec(3)
        outcome = run_campaign(
            spec, str(tmp_path / "s"), max_cells=0, git_commit="cafe"
        )
        assert outcome.outcomes == []
        assert len(outcome.remaining) == 3
