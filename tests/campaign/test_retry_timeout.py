"""Retry, timeout, and crash-isolation semantics of the runner.

The satellite acceptance test: a cell that hangs must be killed at
its per-cell timeout, retried with backoff, and finally reported
``failed`` — never silently dropped — and the ``status`` exit code
must reflect the failure.
"""

from __future__ import annotations

import pytest

from repro.campaign.report import EXIT_FAILURES, EXIT_OK, render_status
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import ResultStore


def _spec(cells, **defaults) -> CampaignSpec:
    policy = dict(timeout_s=30.0, max_attempts=2, backoff_s=0.05)
    policy.update(defaults)
    return CampaignSpec(name="retry-test", cells=cells, **policy)


class TestTimeout:
    @pytest.mark.parametrize("workers", [0, 1])
    def test_hanging_cell_is_killed_retried_and_reported_failed(
        self, tmp_path, workers
    ):
        spec = _spec(
            [CellSpec(kind="selftest", params={"behavior": "hang"})],
            timeout_s=0.3,
        )
        store_dir = str(tmp_path / f"s{workers}")
        outcome = run_campaign(
            spec, store_dir, workers=workers, git_commit="cafe"
        )

        assert outcome.complete  # reported, not dropped
        (cell,) = outcome.outcomes
        assert cell.status == "failed"
        assert cell.attempts == 2  # retried once, then gave up
        assert "timeout" in (cell.error or "")

        # both attempts were timeouts, visible in the journal
        store = ResultStore(store_dir)
        attempts = [
            e for e in store.read_journal() if e["event"] == "attempt_done"
        ]
        assert [a["status"] for a in attempts] == ["timeout", "timeout"]
        # each attempt died near the 0.3s budget, not the hang's 3600s
        assert all(float(a["elapsed_s"]) < 5.0 for a in attempts)

        # ...and the status exit code reflects it
        text, code = render_status(store)
        assert code == EXIT_FAILURES
        assert "failed" in text

    def test_retries_back_off_exponentially(self, tmp_path):
        spec = _spec(
            [CellSpec(kind="selftest", params={"behavior": "fail"})],
            max_attempts=3,
            backoff_s=0.1,
        )
        run_campaign(spec, str(tmp_path / "s"), git_commit="cafe")
        events = ResultStore(str(tmp_path / "s")).read_journal()
        starts = [
            e["wall_time"] for e in events if e["event"] == "attempt_start"
        ]
        assert len(starts) == 3
        # gaps >= 0.1s then >= 0.2s (exponential, base 0.1)
        assert starts[1] - starts[0] >= 0.09
        assert starts[2] - starts[1] >= 0.19


class TestRetry:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_flaky_cell_recovers_within_budget(self, tmp_path, workers):
        spec = _spec(
            [
                CellSpec(
                    kind="selftest",
                    params={"behavior": "flaky", "succeed_on_attempt": 2},
                )
            ],
            max_attempts=3,
        )
        outcome = run_campaign(
            spec, str(tmp_path / f"s{workers}"), workers=workers,
            git_commit="cafe",
        )
        (cell,) = outcome.outcomes
        assert cell.status == "ok"
        assert cell.attempts == 2
        assert outcome.ok

    def test_spec_errors_are_never_retried(self, tmp_path):
        spec = _spec(
            [CellSpec(kind="selftest", params={"behavior": "no-such"})],
            max_attempts=5,
        )
        outcome = run_campaign(spec, str(tmp_path / "s"), git_commit="cafe")
        (cell,) = outcome.outcomes
        assert cell.status == "failed"
        assert cell.attempts == 1  # malformed cells fail fast
        assert "unknown selftest behavior" in (cell.error or "")


class TestCrashIsolation:
    def test_dying_worker_fails_only_its_cell(self, tmp_path):
        """os._exit in one cell: neighbours finish, campaign completes."""
        cells = [
            CellSpec(kind="selftest", params={"behavior": "ok", "value": i})
            for i in range(5)
        ]
        cells.append(
            CellSpec(kind="selftest", params={"behavior": "die"})
        )
        spec = _spec(cells)
        outcome = run_campaign(
            spec, str(tmp_path / "s"), workers=2, git_commit="cafe"
        )
        assert outcome.complete
        assert len(outcome.failed) == 1
        (dead,) = outcome.failed
        assert dead.cell.params["behavior"] == "die"
        oks = [o for o in outcome.outcomes if o.status == "ok"]
        assert len(oks) == 5
        assert all(o.attempts == 1 for o in oks)


class TestStatusExit:
    def test_clean_store_exits_zero(self, tmp_path):
        spec = _spec(
            [CellSpec(kind="selftest", params={"behavior": "ok"})]
        )
        run_campaign(spec, str(tmp_path / "s"), git_commit="cafe")
        _, code = render_status(ResultStore(str(tmp_path / "s")))
        assert code == EXIT_OK

    def test_finding_exits_nonzero(self, tmp_path):
        """A payload-level finding (ok=False) is a failure exit too."""
        from repro.campaign.store import CellRecord

        spec = _spec(
            [CellSpec(kind="selftest", params={"behavior": "ok"})]
        )
        store_dir = str(tmp_path / "s")
        run_campaign(spec, store_dir, git_commit="cafe")
        store = ResultStore(store_dir)
        record = next(store.iter_results())
        record.payload = {"ok": False, "violations": ["boom"]}
        store.write_result(record)
        _, code = render_status(store)
        assert code == EXIT_FAILURES
