"""The result store: atomic writes, the journal, the derived index."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import CellRecord, ResultStore
from repro.errors import CampaignError


def _spec(n: int = 3, name: str = "store-test") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        cells=[
            CellSpec(kind="selftest", params={"behavior": "ok", "value": i})
            for i in range(n)
        ],
    )


def _record(cell: CellSpec, value: int = 0) -> CellRecord:
    return CellRecord(
        cell_id=cell.cell_id(),
        kind=cell.kind,
        params=dict(cell.params),
        status="ok",
        attempts=1,
        payload={"ok": True, "value": value},
    )


class TestInitialize:
    def test_fresh_store_writes_header(self, tmp_path):
        spec = _spec()
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False, git_commit="abc123")
        header = store.read_header()
        assert header["name"] == spec.name
        assert header["spec_hash"] == spec.spec_hash()
        assert header["git_commit"] == "abc123"
        assert len(store.expected_cells()) == len(spec.cells)

    def test_nonempty_store_requires_resume(self, tmp_path):
        spec = _spec()
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False)
        store.write_result(_record(spec.cells[0]))
        with pytest.raises(CampaignError, match="resume"):
            ResultStore(str(tmp_path / "s")).initialize(spec, resume=False)
        # resume over the same spec is fine
        ResultStore(str(tmp_path / "s")).initialize(spec, resume=True)

    def test_spec_mismatch_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(_spec(), resume=False)
        store.write_result(_record(_spec().cells[0]))
        other = _spec(name="something-else")
        with pytest.raises(CampaignError, match="refusing to run"):
            ResultStore(str(tmp_path / "s")).initialize(other, resume=True)


class TestResults:
    def test_write_read_round_trip(self, tmp_path):
        spec = _spec()
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False)
        record = _record(spec.cells[1], value=7)
        store.write_result(record)
        loaded = store.read_result(record.cell_id)
        assert loaded.to_json() == record.to_json()
        assert loaded.payload == {"ok": True, "value": 7}
        assert store.completed_ids() == {record.cell_id: "ok"}

    def test_writes_are_atomic(self, tmp_path):
        """No partially-written temp files survive a completed write."""
        spec = _spec()
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False)
        for cell in spec.cells:
            store.write_result(_record(cell))
        leftovers = [
            p for p in (tmp_path / "s").rglob("*") if ".tmp" in p.name
        ]
        assert leftovers == []

    def test_result_files_are_canonical_json(self, tmp_path):
        """Sorted keys + trailing newline: byte-stable across runs."""
        spec = _spec()
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False)
        path = store.write_result(_record(spec.cells[0], value=1))
        text = path.read_text()
        assert text.endswith("\n")
        doc = json.loads(text)
        assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_iter_results_is_sorted(self, tmp_path):
        spec = _spec(5)
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False)
        for cell in reversed(spec.cells):
            store.write_result(_record(cell))
        ids = [r.cell_id for r in store.iter_results()]
        assert ids == sorted(ids)

    def test_missing_result_is_a_campaign_error(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(_spec(), resume=False)
        with pytest.raises(CampaignError, match="no result"):
            store.read_result("0" * 16)


class TestJournal:
    def test_journal_appends_and_reads_back(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(_spec(), resume=False)
        store.journal("attempt_start", cell_id="aa", attempt=1)
        store.journal("attempt_done", cell_id="aa", attempt=1,
                      status="ok", elapsed_s=0.25)
        events = store.read_journal()
        assert [e["event"] for e in events] == [
            "attempt_start", "attempt_done",
        ]
        assert all("wall_time" in e for e in events)

    def test_cell_timings_sum_attempts(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(_spec(), resume=False)
        store.journal("attempt_done", cell_id="aa", attempt=1,
                      status="timeout", elapsed_s=0.5)
        store.journal("attempt_done", cell_id="aa", attempt=2,
                      status="ok", elapsed_s=0.25)
        store.journal("attempt_done", cell_id="bb", attempt=1,
                      status="ok", elapsed_s=1.0)
        timings = store.cell_timings()
        assert timings["aa"] == pytest.approx(0.75)
        assert timings["bb"] == pytest.approx(1.0)


class TestIndex:
    def test_index_is_rebuilt_from_results(self, tmp_path):
        spec = _spec(4)
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False)
        for i, cell in enumerate(spec.cells):
            store.write_result(_record(cell, value=i))
        rows = store.query_index(
            "SELECT cell_id, kind, status, payload_ok FROM cells "
            "ORDER BY cell_id"
        )
        assert len(rows) == 4
        assert all(kind == "selftest" for _, kind, _, _ in rows)
        assert all(status == "ok" and ok == 1 for _, _, status, ok in rows)

    def test_index_marks_findings(self, tmp_path):
        """payload ok=False is queryable without parsing payloads."""
        spec = _spec(1)
        store = ResultStore(str(tmp_path / "s"))
        store.initialize(spec, resume=False)
        record = _record(spec.cells[0])
        record.payload = {"ok": False, "violations": ["x"]}
        store.write_result(record)
        rows = store.query_index(
            "SELECT payload_ok FROM cells WHERE cell_id = ?", record.cell_id
        )
        assert rows == [(0,)]


# ----------------------------------------------------------------------
# Index concurrency (WAL mode)
# ----------------------------------------------------------------------

def test_index_is_wal_mode_with_busy_timeout(tmp_path):
    """The derived index must serve readers under a concurrent writer.

    The serving layer checkpoints sessions into a store while status
    tooling queries the index; WAL journal mode (persistent in the db
    file) plus a busy timeout is what keeps that from dying with
    ``database is locked``.
    """
    import sqlite3

    store = ResultStore(str(tmp_path))
    spec = _spec(2)
    store.initialize(spec)
    for cell in spec.cells:
        store.write_result(_record(cell))
    store.build_index()

    conn = sqlite3.connect(store.index_path)
    try:
        mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"
    finally:
        conn.close()


def test_index_readable_while_writer_holds_transaction(tmp_path):
    """A reader sees a consistent snapshot under an open write txn."""
    from repro.campaign.store import _connect

    store = ResultStore(str(tmp_path))
    spec = _spec(3)
    store.initialize(spec)
    for cell in spec.cells:
        store.write_result(_record(cell))
    store.build_index()

    writer = _connect(store.index_path)
    try:
        writer.execute("BEGIN IMMEDIATE")
        writer.execute("UPDATE cells SET attempts = attempts + 1")
        # Under rollback journaling this read would raise
        # "database is locked"; under WAL it sees the pre-txn snapshot.
        reader = _connect(store.index_path)
        try:
            rows = reader.execute(
                "SELECT COUNT(*), MAX(attempts) FROM cells"
            ).fetchone()
            assert rows == (3, 1)
        finally:
            reader.close()
        writer.rollback()
    finally:
        writer.close()
