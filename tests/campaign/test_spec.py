"""Campaign specs: deterministic expansion and stable cell hashes."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    CellSpec,
    bench_cells,
    load_spec,
    parse_spec,
    probe_cells,
    verify_cells,
)
from repro.errors import CampaignError


class TestCellHash:
    def test_hash_ignores_param_insertion_order(self):
        a = CellSpec(kind="selftest", params={"behavior": "ok", "value": 3})
        b = CellSpec(kind="selftest", params={"value": 3, "behavior": "ok"})
        assert a.cell_id() == b.cell_id()

    def test_hash_ignores_execution_policy(self):
        """Identity is (kind, params); timeouts/options are policy."""
        a = CellSpec(kind="selftest", params={"behavior": "ok"})
        b = CellSpec(
            kind="selftest",
            params={"behavior": "ok"},
            timeout_s=1.0,
            max_attempts=7,
            options={"obs_dump_dir": "/tmp/x"},
        )
        assert a.cell_id() == b.cell_id()

    def test_distinct_params_hash_differently(self):
        a = CellSpec(kind="selftest", params={"behavior": "ok", "value": 1})
        b = CellSpec(kind="selftest", params={"behavior": "ok", "value": 2})
        assert a.cell_id() != b.cell_id()

    def test_hash_is_stable_across_processes(self):
        """sha256 of canonical JSON — not Python's salted hash()."""
        cell = CellSpec(kind="selftest", params={"behavior": "ok"})
        assert cell.cell_id() == cell.cell_id()
        assert len(cell.cell_id()) == 16
        int(cell.cell_id(), 16)  # hex


class TestCampaignSpec:
    def test_duplicate_cells_rejected(self):
        cells = [
            CellSpec(kind="selftest", params={"behavior": "ok"}),
            CellSpec(kind="selftest", params={"behavior": "ok"}),
        ]
        with pytest.raises(CampaignError, match="duplicate cell"):
            CampaignSpec(name="dup", cells=cells)

    def test_spec_hash_ignores_defaults(self):
        cells = lambda: [CellSpec(kind="selftest", params={"behavior": "ok"})]
        a = CampaignSpec(name="x", cells=cells(), timeout_s=1.0)
        b = CampaignSpec(name="x", cells=cells(), timeout_s=99.0, max_attempts=9)
        assert a.spec_hash() == b.spec_hash()

    def test_spec_hash_tracks_name_and_cells(self):
        cells = lambda v: [
            CellSpec(kind="selftest", params={"behavior": "ok", "value": v})
        ]
        base = CampaignSpec(name="x", cells=cells(1))
        assert base.spec_hash() != CampaignSpec(name="y", cells=cells(1)).spec_hash()
        assert base.spec_hash() != CampaignSpec(name="x", cells=cells(2)).spec_hash()

    def test_per_cell_overrides_beat_defaults(self):
        spec = CampaignSpec(
            name="x",
            cells=[
                CellSpec(kind="selftest", params={"v": 1}, timeout_s=5.0,
                         max_attempts=1),
                CellSpec(kind="selftest", params={"v": 2}),
            ],
            timeout_s=60.0,
            max_attempts=4,
        )
        assert spec.cell_timeout(spec.cells[0]) == 5.0
        assert spec.cell_attempts(spec.cells[0]) == 1
        assert spec.cell_timeout(spec.cells[1]) == 60.0
        assert spec.cell_attempts(spec.cells[1]) == 4


class TestGenerators:
    def test_verify_cells_expand_deterministically(self):
        a = verify_cells(protocols=["sync_two"], seeds=3, quick=True)
        b = verify_cells(protocols=["sync_two"], seeds=3, quick=True)
        assert [c.cell_id() for c in a] == [c.cell_id() for c in b]
        assert len(a) > 0
        assert all(c.kind == "verify" for c in a)
        seeds = {c.params["seed"] for c in a}
        assert seeds == {0, 1, 2}

    def test_verify_cells_skip_out_of_envelope_pairs(self):
        from repro.verify.scenarios import SKIPS

        expanded = {
            (c.params["protocol"], c.params["scheduler"])
            for c in verify_cells(seeds=1)
        }
        assert not expanded & set(SKIPS)

    def test_repeats_are_distinct_cells(self):
        cells = verify_cells(protocols=["sync_two"],
                             schedulers=["synchronous"], seeds=1, repeats=3)
        assert len({c.cell_id() for c in cells}) == len(cells) == 3

    def test_probe_cells_cover_the_run_all_registry(self):
        import benchmarks.run_all as run_all

        names = {c.params["cell"] for c in probe_cells()}
        assert names == set(run_all.PROBES)

    def test_bench_cells_cover_every_module(self):
        import benchmarks.run_all as run_all

        modules = {c.params["module"] for c in bench_cells()}
        assert modules == {m.__name__ for m in run_all.MODULES}


class TestSpecFiles:
    def test_load_spec_round_trips(self, tmp_path):
        doc = {
            "name": "from-file",
            "defaults": {"timeout_s": 9.0, "max_attempts": 2, "backoff_s": 0.1},
            "cells": [
                {"kind": "selftest", "params": {"behavior": "ok", "value": 5},
                 "timeout_s": 1.5},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        spec = load_spec(str(path))
        assert spec.name == "from-file"
        assert spec.timeout_s == 9.0
        assert spec.max_attempts == 2
        assert spec.cells[0].timeout_s == 1.5
        # to_json() -> parse_spec() preserves identity
        assert parse_spec(spec.to_json()).spec_hash() == spec.spec_hash()

    def test_generate_entries_expand(self, tmp_path):
        doc = {
            "name": "gen",
            "cells": [
                {"generate": "verify", "protocols": ["sync_two"],
                 "schedulers": ["synchronous"], "seeds": 2, "quick": True},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        spec = load_spec(str(path))
        assert len(spec.cells) == 2
        assert all(c.kind == "verify" for c in spec.cells)

    def test_unknown_generator_rejected(self):
        with pytest.raises(CampaignError, match="unknown generator"):
            parse_spec({"name": "x", "cells": [{"generate": "nonsense"}]})

    def test_malformed_entries_rejected(self):
        with pytest.raises(CampaignError, match="needs 'kind' and 'params'"):
            parse_spec({"name": "x", "cells": [{"kind": "selftest"}]})
        with pytest.raises(CampaignError, match="non-empty 'name'"):
            parse_spec({"cells": [{"kind": "a", "params": {}}]})
        with pytest.raises(CampaignError, match="non-empty list"):
            parse_spec({"name": "x", "cells": []})

    def test_unreadable_spec_is_a_campaign_error(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read spec"):
            load_spec(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(CampaignError, match="not valid JSON"):
            load_spec(str(bad))
