"""The ``python -m repro.campaign`` CLI, driven in-process."""

from __future__ import annotations

import json

import pytest

from repro.campaign.__main__ import main


def _selftest_spec(tmp_path, behaviors, name="cli-test", **defaults):
    policy = dict(timeout_s=10.0, max_attempts=1, backoff_s=0.05)
    policy.update(defaults)
    doc = {
        "name": name,
        "defaults": policy,
        "cells": [
            {"kind": "selftest", "params": {"behavior": b, "value": i}}
            for i, b in enumerate(behaviors)
        ],
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(doc))
    return str(path)


class TestRun:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        spec = _selftest_spec(tmp_path, ["ok", "ok", "ok"])
        store = str(tmp_path / "store")
        assert main(["run", "--spec", spec, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "3/3 cells done" in out
        assert "0 failed" in out

    def test_failures_exit_one(self, tmp_path):
        spec = _selftest_spec(tmp_path, ["ok", "fail"])
        assert main(
            ["run", "--spec", spec, "--store", str(tmp_path / "store")]
        ) == 1

    def test_interrupted_run_exits_three_then_resumes(self, tmp_path):
        spec = _selftest_spec(tmp_path, ["ok"] * 4)
        store = str(tmp_path / "store")
        assert main(
            ["run", "--spec", spec, "--store", store, "--max-cells", "2"]
        ) == 3
        # without --resume a non-empty store is refused (usage error)
        assert main(["run", "--spec", spec, "--store", store]) == 2
        assert main(
            ["run", "--spec", spec, "--store", store, "--resume"]
        ) == 0

    def test_verify_flags_build_a_matrix_campaign(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            [
                "run", "--verify", "--protocols", "sync_two",
                "--schedulers", "synchronous", "--seeds", "1", "--quick",
                "--store", store,
            ]
        )
        assert code == 0
        assert "verify" in capsys.readouterr().out

    def test_nothing_to_run_is_a_usage_error(self, tmp_path, capsys):
        assert main(["run", "--store", str(tmp_path / "s")]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_missing_spec_file_is_a_usage_error(self, tmp_path, capsys):
        code = main(
            ["run", "--spec", str(tmp_path / "nope.json"),
             "--store", str(tmp_path / "s")]
        )
        assert code == 2
        assert "cannot read spec" in capsys.readouterr().err


class TestInspection:
    @pytest.fixture
    def stores(self, tmp_path):
        spec = _selftest_spec(tmp_path, ["ok", "ok"])
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(["run", "--spec", spec, "--store", a]) == 0
        assert main(["run", "--spec", spec, "--store", b]) == 0
        return a, b

    def test_status_of_clean_store(self, stores, capsys):
        a, _ = stores
        assert main(["status", a]) == 0
        out = capsys.readouterr().out
        assert "2/2" in out or "ok" in out

    def test_status_of_incomplete_store(self, tmp_path, capsys):
        spec = _selftest_spec(tmp_path, ["ok"] * 3)
        store = str(tmp_path / "store")
        main(["run", "--spec", spec, "--store", store, "--max-cells", "1"])
        assert main(["status", store]) == 3

    def test_report_renders(self, stores, capsys):
        a, _ = stores
        assert main(["report", a]) == 0
        out = capsys.readouterr().out
        assert "selftest" in out

    def test_diff_of_identical_stores_exits_zero(self, stores, capsys):
        a, b = stores
        assert main(["diff", a, b]) == 0
        assert "agree" in capsys.readouterr().out

    def test_diff_flags_structural_changes(self, stores, capsys):
        import pathlib

        a, b = stores
        # flip one payload value in store b: a structural disagreement
        (result,) = [
            p
            for p in sorted(pathlib.Path(b).glob("results/*.json"))
        ][:1]
        doc = json.loads(result.read_text())
        doc["payload"]["value"] = "mutated"
        result.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        assert main(["diff", a, b]) == 1

    def test_status_of_missing_store_is_a_usage_error(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nope")]) == 2
        assert "not a campaign store" in capsys.readouterr().err
