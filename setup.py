"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` use the classic setuptools
develop path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
