"""Ablation A3 — the movement cost ("energy") of talking.

Movement is the swarm's scarcest resource; this ablation maps the
distance-per-delivered-bit surface across the design knobs DESIGN.md
calls out:

* excursion_fraction of the granular protocol — linear in the knob
  (shorter wiggles, same information);
* alphabet size of the pair protocol — bigger alphabets send fewer,
  *longer* excursions; distance per bit still falls because the level
  ladder is shared by more bits;
* synchronous vs asynchronous — the price of missing a global clock.
"""

from __future__ import annotations

from repro.analysis.metrics import transmission_stats
from repro.apps.harness import SwarmHarness, ring_positions
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

BITS = [1, 0] * 10


def granular_distance_per_bit(excursion_fraction: float) -> float:
    h = SwarmHarness(
        ring_positions(5, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncGranularProtocol(
            excursion_fraction=excursion_fraction
        ),
        sigma=6.0,
    )
    h.simulator.protocol_of(0).send_bits(2, BITS)
    h.run(2 * len(BITS) + 2)
    stats = transmission_stats(h.simulator.trace, h.simulator.protocol_of(2).received)
    assert stats.bits_delivered == len(BITS)
    return stats.distance_per_bit


def pair_distance_per_bit(alphabet: int) -> float:
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(alphabet_size=alphabet),
        identified=False,
        sigma=10.0,
    )
    h.simulator.protocol_of(0).send_bits(1, BITS)
    h.run(2 * len(BITS) + 2)
    stats = transmission_stats(h.simulator.trace, h.simulator.protocol_of(1).received)
    assert stats.bits_delivered >= len(BITS)
    return stats.total_distance / len(BITS)


def async_distance_per_bit(seed: int = 3) -> float:
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: AsyncTwoProtocol(bounded=True),
        scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=seed),
        identified=False,
        sigma=10.0,
    )
    h.simulator.protocol_of(0).send_bits(1, BITS)
    assert h.pump(
        lambda hh: len(hh.simulator.protocol_of(1).received) >= len(BITS),
        max_steps=60_000,
    )
    stats = transmission_stats(h.simulator.trace, h.simulator.protocol_of(1).received)
    return stats.distance_per_bit


def sweep():
    fractions = [(f, round(granular_distance_per_bit(f), 3)) for f in (0.15, 0.30, 0.45, 0.70)]
    alphabets = [(b, round(pair_distance_per_bit(b), 3)) for b in (2, 16, 256)]
    async_cost = round(async_distance_per_bit(), 3)
    return fractions, alphabets, async_cost


def test_a3_shape(benchmark):
    fractions, alphabets, async_cost = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Distance/bit is monotone in the excursion fraction (and ~linear).
    values = [v for _, v in fractions]
    assert values == sorted(values)
    assert values[-1] / values[0] == pytest_approx_ratio(0.70 / 0.15)
    # Bigger alphabets cost less distance per bit.
    pair_values = [v for _, v in alphabets]
    assert pair_values == sorted(pair_values, reverse=True)
    # Asynchrony costs more movement than the same pair synchronously:
    # drift legs and ack-waiting excursions are pure overhead.
    assert async_cost > 2 * pair_values[0]


def pytest_approx_ratio(expected: float):
    import pytest

    return pytest.approx(expected, rel=0.05)


def main() -> None:
    fractions, alphabets, async_cost = sweep()
    print_table(
        "A3 — distance per delivered bit vs excursion fraction (sync granular, n=5)",
        ["excursion fraction", "distance/bit"],
        fractions,
    )
    print_table(
        "A3 — distance per delivered bit vs alphabet size (sync pair)",
        ["B", "distance/bit"],
        alphabets,
    )
    print_table(
        "A3 — the price of asynchrony (bounded Async2, fair scheduler)",
        ["protocol", "distance/bit"],
        [("sync pair, B=2", alphabets[0][1]), ("async pair (bounded)", async_cost)],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
