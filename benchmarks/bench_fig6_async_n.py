"""Experiment F6 — Figure 6: n asynchronous robots, kappa idle slice.

Regenerates Protocol Asyncn runs for n in {3, 6, 12}: granulars sliced
in n+1, kappa heartbeats keeping every acknowledgement counter alive,
one-to-one payload delivered under a fair asynchronous scheduler.
Reports steps per delivered bit as n grows (the shape: superlinear in
n, because each leg waits for *everyone* to be observed twice).
"""

from __future__ import annotations

from repro.apps.harness import SwarmHarness, ring_positions
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_n import AsyncNProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

SIZES = (3, 6, 12)
BITS = [1, 0]


def run_asyncn(count: int, seed: int = 1) -> dict:
    h = SwarmHarness(
        ring_positions(count, radius=10.0, jitter=0.07),
        protocol_factory=lambda: AsyncNProtocol(naming="sec"),
        scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=seed),
        identified=False,
        frame_regime="chirality",
        sigma=4.0,
    )
    dst = count - 1
    h.simulator.protocol_of(0).send_bits(dst, BITS)

    def done(hh):
        return len(hh.simulator.protocol_of(dst).received) >= len(BITS)

    assert h.pump(done, max_steps=400_000), f"n={count}: bits lost"
    assert [e.bit for e in h.simulator.protocol_of(dst).received] == BITS
    idle_moves = len(h.simulator.trace.movements_of(1))
    return {
        "n": count,
        "steps": h.simulator.time,
        "steps_per_bit": h.simulator.time / len(BITS),
        "idle_robot_moves": idle_moves,
        "min_distance": h.simulator.trace.min_pairwise_distance(),
    }


def sweep():
    return [run_asyncn(count) for count in SIZES]


def test_fig6_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_n = {r["n"]: r for r in rows}
    # Cost grows with the swarm (each leg awaits everyone's ack).
    assert by_n[12]["steps_per_bit"] > by_n[3]["steps_per_bit"]
    # Remark 4.3: idle robots move constantly (kappa oscillation) —
    # the protocol is NOT silent, unlike the synchronous ones.
    for row in rows:
        assert row["idle_robot_moves"] > 0
        assert row["min_distance"] > 0.0


def main() -> None:
    rows = sweep()
    print_table(
        "F6 / Figure 6 — Protocol Asyncn (kappa idle slice), 2-bit payload",
        ["n", "steps", "steps/bit", "idle robot moves", "min pairwise dist"],
        [
            (r["n"], r["steps"], round(r["steps_per_bit"], 1), r["idle_robot_moves"], round(r["min_distance"], 3))
            for r in rows
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
