"""Ablation A5 — sensing noise vs decoding guard bands (§5 round-off).

The continuous counterpart of the §5 round-off discussion: every
observed position carries Gaussian error.  Two decoder configurations:

* **exact** — the paper's model (infinitesimal off-home threshold):
  any noise at all floods the decoder with phantom off-home sightings;
* **robust** — off-home threshold at 25% of the granular radius plus
  skip-on-ambiguity: tolerates noise up to a few percent of the
  excursion length, then degrades.

Shape claims: exact decoding has a cliff at zero; robust decoding is
perfect through sigma = 0.1 (about 4% of the excursion) and dead by
sigma = 1.2.
"""

from __future__ import annotations

from repro.apps.harness import ring_positions
from repro.errors import ReproError
from repro.model.robot import Robot
from repro.noise.simulator import NoisyObservationSimulator
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, scatter, table_cells

NOISE_LEVELS = (0.0, 0.02, 0.1, 0.3, 1.2)
SEEDS = range(20)
BITS = [1, 0, 1, 0, 1]


def scattered_delivery_rate(n: int, noise: float, seeds=range(5)) -> float:
    """Robust-decode delivery over a large scattered swarm.

    Placement uses the grid-accelerated ``scatter`` (the old O(n²)
    rejection sampler made these swarm sizes impractical to even set
    up), with a separation wide enough that every granular comfortably
    exceeds the decoders' noise guard bands.
    """
    ok = 0
    for seed in seeds:
        positions = scatter(n, seed=seed, min_distance=6.0, extent=40.0)
        robots = [
            Robot(
                position=p,
                protocol=SyncGranularProtocol(
                    off_home_fraction=0.25, tolerate_ambiguity=True
                ),
                sigma=4.0,
                observable_id=i,
            )
            for i, p in enumerate(positions)
        ]
        sim = NoisyObservationSimulator(robots, noise_std=noise, seed=seed)
        robots[0].protocol.send_bits(2, BITS)
        try:
            sim.run(2 * len(BITS) + 4)
            if [e.bit for e in robots[2].protocol.received] == BITS:
                ok += 1
        except ReproError:
            pass
    return ok / len(list(seeds))


def sweep_scattered():
    return [
        (n, scattered_delivery_rate(n, 0.0), scattered_delivery_rate(n, 0.05))
        for n in (8, 24)
    ]


def delivery_rate(noise: float, robust: bool) -> float:
    ok = 0
    for seed in SEEDS:
        positions = ring_positions(5, radius=10.0, jitter=0.06)
        kwargs = (
            {"off_home_fraction": 0.25, "tolerate_ambiguity": True} if robust else {}
        )
        robots = [
            Robot(
                position=p,
                protocol=SyncGranularProtocol(**kwargs),
                sigma=4.0,
                observable_id=i,
            )
            for i, p in enumerate(positions)
        ]
        sim = NoisyObservationSimulator(robots, noise_std=noise, seed=seed)
        robots[0].protocol.send_bits(2, BITS)
        try:
            sim.run(2 * len(BITS) + 4)
            if [e.bit for e in robots[2].protocol.received] == BITS:
                ok += 1
        except ReproError:
            pass  # decoding blew up: a failed delivery
    return ok / len(list(SEEDS))


def async_delivery_rate(noise: float, robust: bool) -> float:
    """Noise tolerance of the asynchronous pair protocol."""
    from repro.geometry.vec import Vec2
    from repro.model.scheduler import FairAsynchronousScheduler
    from repro.protocols.async_two import AsyncTwoProtocol

    ok = 0
    for seed in SEEDS:
        kwargs = (
            {"on_line_fraction": 0.05, "change_fraction": 0.02} if robust else {}
        )
        robots = [
            Robot(position=p, protocol=AsyncTwoProtocol(**kwargs), sigma=10.0)
            for p in (Vec2(0.0, 0.0), Vec2(10.0, 0.0))
        ]
        sim = NoisyObservationSimulator(
            robots,
            noise_std=noise,
            seed=seed,
            scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=seed),
        )
        robots[0].protocol.send_bits(1, BITS)
        try:
            for _ in range(20_000):
                sim.step()
                if len(robots[1].protocol.received) >= len(BITS):
                    break
            if [e.bit for e in robots[1].protocol.received] == BITS:
                ok += 1
        except ReproError:
            pass
    return ok / len(list(SEEDS))


def sweep():
    return [
        (noise, delivery_rate(noise, robust=False), delivery_rate(noise, robust=True))
        for noise in NOISE_LEVELS
    ]


def sweep_async():
    return [
        (noise, async_delivery_rate(noise, False), async_delivery_rate(noise, True))
        for noise in (0.0, 0.02, 0.1)
    ]


def test_a5_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_noise = {noise: (exact, robust) for noise, exact, robust in rows}
    assert by_noise[0.0] == (1.0, 1.0)
    # Exact decoding: a cliff at any noise.
    assert by_noise[0.02][0] == 0.0
    # Robust decoding: perfect through moderate noise, dead at extreme.
    assert by_noise[0.1][1] == 1.0
    assert by_noise[1.2][1] <= 0.1


def test_a5_async_shape(benchmark):
    rows = benchmark.pedantic(sweep_async, rounds=1, iterations=1)
    by_noise = {noise: (exact, robust) for noise, exact, robust in rows}
    assert by_noise[0.0][0] == 1.0
    assert by_noise[0.02][0] == 0.0  # exact acks drown in jitter
    assert by_noise[0.02][1] == 1.0  # debounced acks + on-line margin hold


def main() -> None:
    print_table(
        "A5 / §5 round-off — delivery rate vs sensing noise (20 seeds, 5 bits)",
        ["noise sigma", "exact decode (paper)", "robust decode (0.25R + skip)"],
        sweep(),
    )
    print_table(
        "A5 / §5 round-off — asynchronous pair (debounced acks + 0.05D margin)",
        ["noise sigma", "exact (paper)", "robust"],
        sweep_async(),
    )
    print_table(
        "A5 — robust decode on scattered swarms (grid-placed, 5 seeds)",
        ["n", "noise 0.0", "noise 0.05"],
        sweep_scattered(),
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
