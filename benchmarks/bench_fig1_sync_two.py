"""Experiment F1 — Figure 1: two synchronous robots coding by side-steps.

Regenerates the figure's scenario: two robots exchange messages
simultaneously by stepping right ("0") / left ("1") of the line between
them.  Reports steps, moves and distance per bit and checks the exact
2-instants-per-bit cost of the protocol.
"""

from __future__ import annotations

from repro.analysis.metrics import transmission_stats
from repro.apps.harness import SwarmHarness
from repro.coding.bitstream import encode_message
from repro.geometry.vec import Vec2
from repro.protocols.sync_two import SyncTwoProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells


def run_fig1(message_a: str = "hello", message_b: str = "world"):
    """One Figure 1 exchange; returns (harness, stats rows)."""
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(8.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(),
        identified=False,
        sigma=8.0,
    )
    bits_a = encode_message(message_a)
    bits_b = encode_message(message_b)
    h.channel(0).send(1, message_a)
    h.channel(1).send(0, message_b)
    done = h.pump(
        lambda hh: len(hh.channel(0).inbox) >= 1 and len(hh.channel(1).inbox) >= 1,
        max_steps=4 * max(len(bits_a), len(bits_b)),
    )
    assert done, "figure 1 exchange did not complete"
    assert h.channel(1).inbox[0].text() == message_a
    assert h.channel(0).inbox[0].text() == message_b

    rows = []
    for robot, bits in ((0, bits_a), (1, bits_b)):
        stats = transmission_stats(
            h.simulator.trace, h.simulator.protocol_of(1 - robot).received
        )
        rows.append(
            (
                f"r{robot}",
                len(bits),
                h.simulator.time,
                round(h.simulator.time / len(bits), 3),
                round(h.simulator.trace.distance_travelled(robot), 2),
            )
        )
    return h, rows


def test_fig1_shape(benchmark):
    h, rows = benchmark.pedantic(run_fig1, rounds=3, iterations=1)
    # The paper's protocol costs exactly 2 instants per bit (out+back),
    # and the run ends when the longer message completes.
    longest = max(rows[0][1], rows[1][1])
    assert h.simulator.time == 2 * longest
    for _, bits, steps, steps_per_bit, distance in rows:
        assert distance > 0.0


def main() -> None:
    _, rows = run_fig1()
    print_table(
        "F1 / Figure 1 — two synchronous robots, simultaneous exchange",
        ["sender", "bits", "steps", "steps/bit(run)", "distance"],
        rows,
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
