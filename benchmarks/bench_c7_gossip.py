"""Experiment C7 — one-to-all: addressed fan-out vs overhearing (§1/§5).

    "our protocols can be easily adapted to implement efficiently
    one-to-many or one-to-all explicit communication"

The movement medium is a broadcast channel: a single addressed
transmission is decoded by every observer.  This experiment spreads the
same rumor both ways and counts transmissions, source movements and
completion time.  Shape claim: overhearing needs exactly one
transmission and ``(n-1)x`` fewer source movements.
"""

from __future__ import annotations

from repro.apps.gossip import spread_rumor

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

SIZES = (4, 8, 12)
RUMOR = "the nest has moved"


def sweep():
    rows = []
    for count in SIZES:
        over = spread_rumor(RUMOR, count=count, mode="overheard")
        addr = spread_rumor(RUMOR, count=count, mode="addressed")
        rows.append(
            (
                count,
                over.transmissions,
                addr.transmissions,
                over.source_moves,
                addr.source_moves,
                over.steps,
                addr.steps,
            )
        )
    return rows


def test_c7_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, tx_over, tx_addr, mv_over, mv_addr, st_over, st_addr in rows:
        assert tx_over == 1
        assert tx_addr == n - 1
        # Source movement scales with the copy count.
        assert abs(mv_addr - (n - 1) * mv_over) <= 2
        assert st_addr >= st_over


def main() -> None:
    print_table(
        f"C7 / one-to-all — spreading {RUMOR!r}",
        [
            "n",
            "tx (overheard)",
            "tx (addressed)",
            "source moves (ovh)",
            "source moves (addr)",
            "steps (ovh)",
            "steps (addr)",
        ],
        sweep(),
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
