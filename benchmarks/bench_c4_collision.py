"""Experiment C4 — collision freedom via Voronoi granulars (§3.2).

All-pairs chatter on random configurations: every robot sends bits to
every other robot simultaneously.  The audit tracks the minimum
pairwise distance over the run; the granular confinement guarantees it
never reaches zero — in fact each pair keeps at least the gap left by
their two excursion bands.
"""

from __future__ import annotations

import random

from repro.analysis.metrics import collision_audit
from repro.apps.harness import SwarmHarness
from repro.geometry.vec import Vec2
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

CASES = ((4, 0), (8, 1), (16, 2), (32, 3))


def scatter(count: int, seed: int):
    rng = random.Random(seed)
    pts = []
    while len(pts) < count:
        p = Vec2(rng.uniform(-30, 30), rng.uniform(-30, 30))
        if all(p.distance_to(q) > 2.0 for q in pts):
            pts.append(p)
    return pts


def run_case(count: int, seed: int) -> dict:
    positions = scatter(count, seed)
    initial_min = min(
        positions[i].distance_to(positions[j])
        for i in range(count)
        for j in range(i + 1, count)
    )
    h = SwarmHarness(positions, protocol_factory=lambda: SyncGranularProtocol(), sigma=4.0)
    for i in range(count):
        for j in range(count):
            if i != j:
                h.simulator.protocol_of(i).send_bits(j, [i & 1, j & 1])
    h.run(4 * 2 * (count - 1) + 4)
    # All bits must actually have been delivered (the run is no toy).
    delivered = sum(len(h.simulator.protocol_of(j).received) for j in range(count))
    return {
        "n": count,
        "seed": seed,
        "initial_min": initial_min,
        "run_min": collision_audit(h.simulator.trace),
        "bits": delivered,
    }


def sweep():
    return [run_case(n, seed) for n, seed in CASES]


def test_c4_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        n = row["n"]
        assert row["bits"] == n * (n - 1) * 2
        assert row["run_min"] > 0.0
        # Excursions cover at most 45% of each granular (half the
        # nearest-neighbour gap), so pairs keep >= 55% of their gap.
        assert row["run_min"] >= 0.5 * row["initial_min"]


def main() -> None:
    rows = sweep()
    print_table(
        "C4 / §3.2 — collision audit under all-pairs chatter",
        ["n", "seed", "bits delivered", "initial min dist", "run min dist", "ratio"],
        [
            (
                r["n"],
                r["seed"],
                r["bits"],
                round(r["initial_min"], 3),
                round(r["run_min"], 3),
                round(r["run_min"] / r["initial_min"], 3),
            )
            for r in rows
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
