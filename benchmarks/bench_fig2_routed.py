"""Experiment F2 — Figure 2: 12 identified robots, Voronoi + granulars.

Regenerates the figure's scenario: the 12-robot configuration is
preprocessed (Voronoi diagram, granulars sliced in 2n), then robot 9
sends "0" and "1" to robot 3.  Reports per-robot granular radii, the
delivery, the universal overhearing, and the collision audit.
"""

from __future__ import annotations

from repro.analysis.metrics import collision_audit
from repro.apps.harness import SwarmHarness, ring_positions
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells


def run_fig2():
    h = SwarmHarness(
        ring_positions(12, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncGranularProtocol(naming="identified"),
        sigma=4.0,
    )
    h.simulator.protocol_of(9).send_bits(3, [0, 1])
    h.run(6)
    received = h.simulator.protocol_of(3).received
    assert [(e.src, e.bit) for e in received] == [(9, 0), (9, 1)]
    return h


def test_fig2_shape(benchmark):
    h = benchmark.pedantic(run_fig2, rounds=3, iterations=1)
    # Universal overhearing and zero received elsewhere.
    for other in range(12):
        if other in (3, 9):
            continue
        assert h.simulator.protocol_of(other).received == ()
        assert len(h.simulator.protocol_of(other).overheard) == 2
    # Collision avoidance: nobody left its granular, so the minimum
    # pairwise distance never fell below the nearest-neighbour gap
    # minus the two granular radii (which is >= 0 by construction).
    assert collision_audit(h.simulator.trace) > 0.0


def main() -> None:
    h = run_fig2()
    protocol = h.simulator.protocol_of(0)
    rows = [
        (j, round(protocol.granular_of(j).radius, 3))
        for j in range(12)
    ]
    print_table(
        "F2 / Figure 2 — granular radii after Voronoi preprocessing",
        ["robot", "granular radius (robot 0's units)"],
        rows,
    )
    print_table(
        "F2 / Figure 2 — robot 9 sends '0','1' to robot 3",
        ["event", "value"],
        [
            ("bits delivered to r3", [(e.src, e.bit) for e in h.simulator.protocol_of(3).received]),
            ("steps", h.simulator.time),
            ("min pairwise distance", round(collision_audit(h.simulator.trace), 3)),
            ("observers that overheard", sum(
                1 for j in range(12)
                if j != 9 and len(h.simulator.protocol_of(j).overheard) == 2
            )),
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
