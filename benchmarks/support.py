"""Shared helpers for the benchmark/experiment suite.

Every ``bench_*.py`` module is both

* a pytest-benchmark module (``pytest benchmarks/ --benchmark-only``)
  whose assertions pin the *qualitative shape* the paper claims, and
* a runnable script (``python benchmarks/bench_xxx.py``) that prints
  the regenerated rows/series; ``python benchmarks/run_all.py`` prints
  everything and is the source of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["print_table", "fmt"]


def fmt(value) -> str:
    """Human formatting for table cells."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned text table (the 'figure' regeneration format)."""
    materialised: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in materialised:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
