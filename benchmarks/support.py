"""Shared helpers for the benchmark/experiment suite.

Every ``bench_*.py`` module is both

* a pytest-benchmark module (``pytest benchmarks/ --benchmark-only``)
  whose assertions pin the *qualitative shape* the paper claims, and
* a runnable script (``python benchmarks/bench_xxx.py``) that prints
  the regenerated rows/series; ``python benchmarks/run_all.py`` prints
  everything and is the source of EXPERIMENTS.md.
"""

from __future__ import annotations

import contextlib
import functools
import io
import itertools
import random
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.geometry.vec import Vec2
from repro.perf.spatial import SpatialHashGrid

__all__ = ["print_table", "fmt", "scatter", "table_cells", "batch_swarm"]


def batch_swarm(n: int, seed: int = 0) -> list:
    """A grid-scattered identified sync-granular swarm of ``n`` robots.

    The standard large-``n`` workload of the batch-backend benchmarks:
    robots on a jittered 10-unit grid (pairwise well separated at any
    ``n``), identified naming, sense-of-direction frames — the exact
    envelope the vectorized granular kernel accepts, so a
    ``BatchSimulator`` built from it runs in kernel mode.
    """
    import math

    from repro.geometry.frames import make_frames
    from repro.model.robot import Robot
    from repro.protocols.sync_granular import SyncGranularProtocol

    rng = random.Random(seed)
    side = int(math.ceil(math.sqrt(n)))
    frames = make_frames(n, "sense_of_direction", seed=seed)
    robots = []
    for i in range(n):
        row, col = divmod(i, side)
        position = Vec2(
            col * 10.0 + rng.uniform(-2.0, 2.0),
            row * 10.0 + rng.uniform(-2.0, 2.0),
        )
        robots.append(
            Robot(
                position=position,
                protocol=SyncGranularProtocol(naming="identified"),
                frame=frames[i],
                sigma=12.0,
                observable_id=i,
            )
        )
    return robots


def table_cells(
    *named,
    main: Callable[[], None] = None,
) -> Tuple[Callable[[], List[str]], Callable[[str], Dict[str, object]]]:
    """Build the standard ``cells()``/``run_cell()`` pair for a module.

    The campaign engine (``repro.campaign``) imports benchmark work
    through this two-function protocol instead of ``exec``-ing
    scripts: ``cells()`` lists the module's cell names, and
    ``run_cell(name)`` executes one and returns a JSON-able payload.

    ``main=fn`` registers the module's table regeneration as the
    ``"table"`` cell — its stdout is captured into the payload, so the
    experiment document can be replayed from the result store.  Extra
    ``(name, fn)`` pairs register finer-grained cells whose return
    value becomes the payload directly.

    A ``(name, fn, params)`` triple parametrizes a cell: ``params``
    maps keyword names (``backend``, ``engine``, seeds, sizes, ...) to
    value sequences, and the triple expands into one
    ``name[key=value,...]`` cell per combination of the cartesian
    product, each calling ``fn(key=value, ...)``.  Labels are built in
    sorted-key order, so cell names are deterministic across runs.

    Usage, at the bottom of a ``bench_*.py`` module::

        cells, run_cell = table_cells(
            ("sparse", sparse_cell, {"engine": ("events", "rounds")}),
            main=main,
        )
    """
    registry: Dict[str, Callable[[], object]] = {}
    for entry in named:
        if len(entry) == 2:
            name, fn = entry
            expanded = {name: fn}
        elif len(entry) == 3:
            name, fn, params = entry
            if not params:
                raise ValueError(f"cell {name!r}: empty parameter grid")
            keys = sorted(params)
            expanded = {}
            for combo in itertools.product(*(params[k] for k in keys)):
                kwargs = dict(zip(keys, combo))
                label = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
                expanded[f"{name}[{label}]"] = functools.partial(fn, **kwargs)
        else:
            raise ValueError(
                f"cell entries are (name, fn) or (name, fn, params); got {entry!r}"
            )
        for cell_name, cell_fn in expanded.items():
            if cell_name in registry:
                raise ValueError(f"duplicate cell name {cell_name!r}")
            registry[cell_name] = cell_fn
    if main is not None:
        if "table" in registry:
            raise ValueError("cell name 'table' is reserved for main")
        registry["table"] = main

    def cells() -> List[str]:
        """The cell names this module exposes, sorted."""
        return sorted(registry)

    def run_cell(name: str) -> Dict[str, object]:
        """Execute one cell; returns its JSON-able payload."""
        if name not in registry:
            raise KeyError(f"no cell {name!r} (available: {sorted(registry)})")
        fn = registry[name]
        if name == "table":
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                fn()
            return {"ok": True, "output": buffer.getvalue()}
        payload = fn()
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return payload

    return cells, run_cell


def scatter(
    count: int,
    seed: int = 0,
    min_distance: float = 2.0,
    extent: float = 60.0,
) -> List[Vec2]:
    """``count`` uniform random points, pairwise farther than ``min_distance``.

    Rejection sampling with a spatial-hash grid for the separation
    check: O(n) expected instead of the old all-pairs O(n²) scan, which
    made large-n point sets impractically slow to set up.  The RNG
    draws and accept/reject decisions are identical to the brute-force
    version, so any (count, seed) pair yields the same points it always
    did.
    """
    rng = random.Random(seed)
    grid = SpatialHashGrid(cell_size=min_distance)
    pts: List[Vec2] = []
    while len(pts) < count:
        p = Vec2(rng.uniform(-extent, extent), rng.uniform(-extent, extent))
        if not grid.has_neighbor_within(p, min_distance):
            pts.append(p)
            grid.insert(p)
    return pts


def fmt(value) -> str:
    """Human formatting for table cells."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned text table (the 'figure' regeneration format)."""
    materialised: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in materialised:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
