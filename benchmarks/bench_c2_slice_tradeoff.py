"""Experiment C2 — the Section 5 slice/step trade-off.

    "by taking O(log n) slices instead of O(n), the number of steps to
    transmit a message would increase by O(log n / log log n)"

Closed-form table for n up to 4096 plus *simulated* step counts (the
working SyncLogKProtocol) for laptop-scale swarms, cross-validating the
model.  Shape claims: the measured slowdown is monotone in n for fixed
k, monotone decreasing in k for fixed n, and the k = O(log n) column
tracks log n / log log n within a constant factor.
"""

from __future__ import annotations

from repro.analysis.complexity import log_slice_choice, slice_tradeoff_table
from repro.apps.harness import SwarmHarness, ring_positions
from repro.coding.logk_addressing import steps_per_message_logk
from repro.protocols.sync_logk import SyncLogKProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

MODEL_SIZES = (16, 64, 256, 1024, 4096)
SIM_CASES = ((8, 2), (8, 3), (16, 2), (16, 4))
PAYLOAD_BITS = 1


def simulate(n: int, k: int) -> int:
    """Measured instants for a 1-bit message under the §5 protocol."""
    h = SwarmHarness(
        ring_positions(n, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncLogKProtocol(k=k),
        sigma=4.0,
    )
    dst = n // 2
    h.simulator.protocol_of(0).send_bits(dst, [1] * PAYLOAD_BITS)

    def done(hh):
        return len(hh.simulator.protocol_of(dst).received) >= PAYLOAD_BITS

    assert h.pump(done, max_steps=500)
    return h.simulator.time


def model_rows():
    return slice_tradeoff_table(MODEL_SIZES, bases=(2, 4, 8, 16), payload_bits=PAYLOAD_BITS)


def simulated_rows():
    rows = []
    for n, k in SIM_CASES:
        measured = simulate(n, k)
        model = steps_per_message_logk(PAYLOAD_BITS, n, k)
        rows.append((n, k, measured, model))
    return rows


def test_c2_model_shape(benchmark):
    rows = benchmark.pedantic(model_rows, rounds=3, iterations=1)
    by_nk = {(r.n, r.k): r for r in rows}
    # Monotone in n at fixed k.
    assert by_nk[(4096, 2)].slowdown > by_nk[(16, 2)].slowdown
    # Monotone decreasing in k at fixed n.
    assert by_nk[(1024, 16)].slowdown < by_nk[(1024, 2)].slowdown
    # k = O(log n) tracks log n / log log n.
    for n in (64, 1024, 4096):
        row = slice_tradeoff_table([n])[0]
        assert 0.3 < row.slowdown / row.reference < 5.0


def test_c2_simulation_matches_model(benchmark):
    rows = benchmark.pedantic(simulated_rows, rounds=1, iterations=1)
    for n, k, measured, model in rows:
        assert abs(measured - model) <= 2, (n, k, measured, model)


def main() -> None:
    print_table(
        "C2 / §5 — closed-form slice trade-off (1-bit message)",
        ["n", "k", "digits", "steps(2n slices)", "steps(2k+1 slices)", "slowdown", "log n/log log n"],
        [
            (r.n, r.k, r.digits, r.steps_full, r.steps_logk, round(r.slowdown, 2), round(r.reference, 2))
            for r in model_rows()
        ],
    )
    print_table(
        "C2 / §5 — simulated SyncLogKProtocol vs model",
        ["n", "k", "measured steps", "model steps"],
        simulated_rows(),
    )
    print_table(
        "C2 / §5 — the paper's k = O(log n) choice",
        ["n", "k=O(log n)", "slowdown", "log n/log log n"],
        [
            (r.n, r.k, round(r.slowdown, 2), round(r.reference, 2))
            for r in slice_tradeoff_table(MODEL_SIZES)
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
