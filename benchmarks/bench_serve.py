"""Experiment S1 — the serving layer under open-loop session load.

The paper's deaf-dumb bit channel is a transport; :mod:`repro.serve`
is the multi-tenant service built on it — thousands of concurrent
swarm sessions multiplexed over one asyncio loop and a worker pool,
with bounded admission, LRU eviction and CRC-verified checkpoint
restore.  This module is the thin benchmark face of that layer:

* the ``throughput`` cell drives an open-loop (Poisson-arrival) cohort
  of chat sessions, all held live at once, and reports sessions/sec,
  instants/sec and client-observed p50/p99 step latency;
* the ``churn`` cell forces the live-session budget far below the
  cohort size, so every session is repeatedly evicted to the
  checkpoint store and restored — each restore re-proving trace-CRC
  byte identity with the uninterrupted run.

The heavy acceptance configuration (>= 1000 concurrent sessions) lives
behind ``python -m repro.serve bench --quick``; this module's cells
are the campaign-sized probes ``run_all`` folds into
``BENCH_history.jsonl`` under the ``python -m repro.obs regress`` gate.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

# Support running as a standalone script (python benchmarks/bench_serve.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells


def serve_cell(
    phase: str = "throughput", sessions: int = 0, seed: int = 0
) -> Dict[str, object]:
    """One serving-layer probe cell; ``phase`` picks the workload.

    * ``throughput``: open-loop arrivals, whole cohort concurrently
      live (default 100 sessions) — the latency/throughput numbers.
    * ``churn``: cohort several times larger than ``max_live``
      (default 24 sessions over 6 slots) — the eviction/restore
      numbers, every restore CRC-checked against its checkpoint.
    """
    from repro.serve.bench import churn_phase, throughput_phase

    if phase == "throughput":
        row = asyncio.run(
            throughput_phase(sessions=sessions or 100, seed=seed)
        )
        row.pop("metrics", None)  # keep the cell payload compact
        return row
    if phase == "churn":
        return asyncio.run(
            churn_phase(sessions=sessions or 24, max_live=6, seed=seed)
        )
    raise ValueError(f"unknown phase {phase!r}")


def serve_probe(
    sessions: int = 40, churn_sessions: int = 12, seed: int = 0
) -> Dict[str, object]:
    """Both phases at campaign-probe size, one flat metrics payload.

    The shape ``run_all`` ingests into the longitudinal history: the
    throughput row's live :class:`MetricsRegistry` snapshot is kept
    under ``"metrics"`` and the churn verdicts ride alongside, so the
    regress gate watches sessions/sec, p99 latency, queue-wait p99 and
    SLO attainment (the request tracer's ``queue_wait_p99_ms`` and
    ``slo_*`` row fields) *and* the CRC-verified restore count in one
    entry.
    """
    from repro.serve.bench import churn_phase, throughput_phase

    row = asyncio.run(throughput_phase(sessions=sessions, seed=seed))
    churn = asyncio.run(
        churn_phase(sessions=churn_sessions, max_live=4, seed=seed)
    )
    merged = dict(row)
    merged.update(churn)
    merged["crc_restore_identity"] = (
        churn["crc_verified_restores"] == churn["restores"]
    )
    assert "slo_ok" in merged and "queue_wait_p99_ms" in merged
    return merged


def test_serve_cells_shape(benchmark):
    """Both cells at test size: cohort fully live, churn really churns."""
    rows = benchmark.pedantic(
        lambda: [
            serve_cell("throughput", sessions=12, seed=3),
            serve_cell("churn", sessions=12, seed=3),
        ],
        rounds=1,
        iterations=1,
    )
    throughput, churn = rows
    assert throughput["completed"] == 12
    assert throughput["peak_concurrent"] == 12
    assert 0.0 < throughput["step_p50_ms"] <= throughput["step_p99_ms"]
    assert churn["evictions"] > 0
    assert churn["crc_verified_restores"] == churn["restores"] > 0


def main(argv: Optional[List[str]] = None) -> int:
    """Delegate to the real load generator (``repro.serve.bench``).

    ``python benchmarks/bench_serve.py --quick`` is therefore exactly
    ``python -m repro.serve bench --quick`` — one CLI, one acceptance
    configuration, two spellings.
    """
    from repro.serve.bench import main as bench_main

    return bench_main(argv)


def _table_main() -> None:
    """Regenerate the S1 table from both campaign-sized cells."""
    rows = [
        serve_cell("throughput", sessions=100),
        serve_cell("churn", sessions=24),
    ]
    throughput, churn = rows
    print_table(
        "S1 — serving layer: open-loop load and eviction churn",
        ["phase", "sessions", "peak live", "sessions/s", "instants/s",
         "p50 ms", "p99 ms", "evict", "restore (CRC ok)"],
        [
            ("throughput", throughput["sessions"],
             throughput["peak_concurrent"],
             int(throughput["sessions_per_sec"]),
             int(throughput["steps_per_sec"]),
             round(throughput["step_p50_ms"], 2),
             round(throughput["step_p99_ms"], 2), "-", "-"),
            ("churn", churn["churn_sessions"], churn["churn_max_live"],
             "-", "-", "-", "-", churn["evictions"],
             churn["crc_verified_restores"]),
        ],
    )


cells, run_cell = table_cells(
    ("serve", serve_cell, {"phase": ("throughput", "churn")}),
    main=_table_main,
)


if __name__ == "__main__":
    raise SystemExit(main())
