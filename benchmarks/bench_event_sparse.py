"""Experiment E1 — event-engine throughput under sparse activation.

The round engine charges every robot every instant: a swarm where
almost everyone is asleep costs the same as one where everyone is
busy.  The event engine (:mod:`repro.events`) charges *per event*, so
a sparse swarm — here n=10,000 robots at a ~1% duty cycle (unit
Look/Compute/Move phases separated by a mean-297 exponential gap) —
should process events at a rate independent of how many robots are
currently idle.

Reported: events/second through the heap (the engine's unit of work),
achieved duty cycle, and peak heap depth.  The numbers land in
``BENCH_history.jsonl`` (via ``run_all`` or this module's own
``--history`` flag) where ``python -m repro.obs regress`` gates them
longitudinally.

The engine-parametrized table cell compares the event engine against
the round engine on a duty-matched workload at equal n: the round
engine's cost per activation *includes* all the idle robots, the
event engine's does not — the gap is the point of the experiment.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells
from repro.model.observation import Observation
from repro.model.protocol import BitEvent, Protocol


class _IdleProtocol(Protocol):
    """Decode nothing, go nowhere: pure engine-overhead ballast."""

    def _decode(self, observation: Observation) -> List[BitEvent]:
        return []

    def _compute(self, observation: Observation):
        return observation.self_position


#: Unit phases: 3 active time units per cycle; the exponential gap's
#: mean is chosen so active/(active+gap) = 1% duty.
ACTIVE_SPAN = 3.0
DUTY = 0.01
GAP_MEAN = ACTIVE_SPAN * (1.0 - DUTY) / DUTY  # = 297.0
#: Fairness clamp: no robot sleeps longer than this between cycles.
MAX_GAP = 4.0 * GAP_MEAN
#: Limited visibility radius (world units; grid pitch is 10).
RADIUS = 25.0


def sparse_swarm(n: int, seed: int = 0) -> list:
    """n idle robots on a jittered grid (pairwise well separated).

    The protocol is deliberately trivial — decode nothing, stay put —
    so the benchmark measures *engine* overhead (heap, snapshots,
    bookkeeping), not protocol work.
    """
    import math
    import random

    from repro.geometry.frames import make_frames
    from repro.geometry.vec import Vec2
    from repro.model.robot import Robot

    rng = random.Random(seed)
    side = int(math.ceil(math.sqrt(n)))
    frames = make_frames(n, "sense_of_direction", seed=seed)
    robots = []
    for i in range(n):
        row, col = divmod(i, side)
        position = Vec2(
            col * 10.0 + rng.uniform(-2.0, 2.0),
            row * 10.0 + rng.uniform(-2.0, 2.0),
        )
        robots.append(
            Robot(
                position=position,
                protocol=_IdleProtocol(),
                frame=frames[i],
                sigma=1.0,
                observable_id=i,
            )
        )
    return robots


def _sparse_timing():
    from repro.events.distributions import Deterministic, Exponential
    from repro.events.timing import TimingModel

    return TimingModel.free(
        look=Deterministic(1.0),
        compute=Deterministic(1.0),
        move=Deterministic(1.0),
        gap=Exponential(mean=GAP_MEAN),
        max_gap=MAX_GAP,
        # Waking everyone at t=0 would make the first "round" dense;
        # staggered first Looks keep the workload sparse from the start.
        activate_all_first=False,
    )


def sparse_probe(
    n: int = 10_000, events: int = 30_000, seed: int = 0
) -> Dict[str, object]:
    """Drive n sparse robots through ``events`` heap events; time it.

    Uses the event engine's huge-swarm construction path (spatial-hash
    limited visibility + lazy initial views: O(n) setup) and a live
    :class:`~repro.obs.registry.MetricsRegistry`, whose snapshot is
    returned under ``"metrics"`` for the longitudinal history.
    """
    from repro.events.engine import EventSimulator
    from repro.model.trace import TracePolicy
    from repro.obs.history import metrics_from_snapshot
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    started = time.perf_counter()
    sim = EventSimulator(
        sparse_swarm(n, seed=seed),
        None,
        timing=_sparse_timing(),
        seed=seed,
        registry=registry,
        visibility_radius=RADIUS,
        lazy_views=True,
        trace_policy=TracePolicy(stride=1_000),
    )
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    steps = 0
    while sim.events_processed < events:
        sim.step()
        steps += 1
    run_s = time.perf_counter() - started
    snapshot = metrics_from_snapshot(registry.collect())
    # Achieved duty: fraction of robot-time spent in a phase.  Each
    # popped move closes one 3-unit cycle; duty ~= cycles * span / (n * clock).
    moves = snapshot.get("event_count{phase=move}", 0.0)
    duty = moves * ACTIVE_SPAN / (n * sim.clock) if sim.clock > 0 else 0.0
    return {
        "n": n,
        "seed": seed,
        "engine": "events",
        "events": sim.events_processed,
        "steps": steps,
        "clock": sim.clock,
        "build_s": build_s,
        "run_s": run_s,
        "events_per_sec": sim.events_processed / run_s if run_s > 0 else 0.0,
        "duty": duty,
        "heap_depth_max": snapshot.get("event_heap_depth_max", 0.0),
        "metrics": snapshot,
    }


def duty_matched_cell(
    engine: str = "events", n: int = 1_000, seed: int = 0
) -> Dict[str, object]:
    """One duty-matched workload on one engine; the comparison cell.

    * ``events``: free-running timing at DUTY, as in :func:`sparse_probe`.
    * ``rounds``: the classic engine under a fair-async scheduler with
      ``activation_probability=DUTY`` — the closest round-stepped
      analogue of the same workload.

    Both report "activations per wall-clock second": the number of
    robot cycles the engine completed, divided by run time.  The round
    engine also pays for every idle robot every instant, which is the
    asymmetry the table shows.
    """
    if engine == "events":
        row = sparse_probe(n=n, events=6 * max(n // 10, 100), seed=seed)
        activations = row["events"] / 3.0
        return {
            "engine": "events",
            "n": n,
            "activations": activations,
            "run_s": row["run_s"],
            "activations_per_sec": (
                activations / row["run_s"] if row["run_s"] > 0 else 0.0
            ),
            "duty": row["duty"],
        }
    if engine != "rounds":
        raise ValueError(f"unknown engine {engine!r}")

    from repro.batch import make_simulator
    from repro.model.scheduler import FairAsynchronousScheduler
    from repro.model.trace import TracePolicy

    scheduler = FairAsynchronousScheduler(
        fairness_bound=int(MAX_GAP),
        activation_probability=DUTY,
        seed=seed,
        activate_all_first=False,
    )
    sim = make_simulator(
        sparse_swarm(n, seed=seed),
        scheduler,
        trace_policy=TracePolicy(stride=1_000),
    )
    steps = 2 * max(n // 10, 100)
    started = time.perf_counter()
    sim.run(steps)
    run_s = time.perf_counter() - started
    activations = sum(sim.protocol_of(i).activations for i in range(n))
    return {
        "engine": "rounds",
        "n": n,
        "activations": activations,
        "run_s": run_s,
        "activations_per_sec": activations / run_s if run_s > 0 else 0.0,
        "duty": activations / (n * steps) if steps else 0.0,
    }


def test_event_sparse_shape(benchmark):
    row = benchmark.pedantic(
        lambda: sparse_probe(n=2_000, events=6_000), rounds=1, iterations=1
    )
    # The engine did the requested work (step() can overshoot by at
    # most one move batch) and the workload really was sparse.
    assert row["events"] >= 6_000
    assert 0.001 < row["duty"] < 0.05
    # Heap depth stays O(n): one pending event per robot (plus the
    # in-flight batch), never an event explosion.
    assert row["heap_depth_max"] <= 2_000 + 10
    assert row["events_per_sec"] > 0


def test_duty_matched_engines_agree_on_duty(benchmark):
    rows = benchmark.pedantic(
        lambda: [duty_matched_cell(engine=e, n=400) for e in ("events", "rounds")],
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert 0.001 < row["duty"] < 0.05, row
        assert row["activations"] > 0


def main(argv: Optional[List[str]] = None) -> int:
    """Regenerate the table; ``--quick`` runs the CI-sized probe only.

    ``--history PATH`` appends the probe's metrics snapshot to the
    longitudinal history (gate with ``python -m repro.obs regress``).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI probe: smaller swarm, fewer events, no comparison table",
    )
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help="append the probe metrics to this history file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        probe = sparse_probe(n=2_000, events=6_000)
    else:
        probe = sparse_probe()
    print(
        f"[event_sparse n={probe['n']}: "
        f"{probe['events_per_sec']:,.0f} events/s over {probe['events']} events, "
        f"duty {probe['duty']:.2%}, heap max {probe['heap_depth_max']:.0f}, "
        f"build {probe['build_s']:.2f}s]"
    )
    if not args.quick:
        rows = [
            duty_matched_cell(engine=engine, n=1_000)
            for engine in ("events", "rounds")
        ]
        print_table(
            "E1 — duty-matched sparse swarm, per-engine cost (n=1000, ~1% duty)",
            ["engine", "activations", "run s", "activations/s", "duty"],
            [
                (r["engine"], int(r["activations"]), round(r["run_s"], 3),
                 int(r["activations_per_sec"]), f"{r['duty']:.2%}")
                for r in rows
            ],
        )
    if args.history:
        from repro.obs.history import HistoryStore, entry_from_registry
        from repro.obs.history.ingest import flatten_scalars
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        registry.absorb(
            flatten_scalars({k: v for k, v in probe.items() if k != "metrics"}),
            probe="event_sparse",
        )
        registry.absorb(dict(probe["metrics"]))
        entry = HistoryStore(args.history).append(
            entry_from_registry(
                registry,
                run_id=f"bench_event_sparse-{'quick' if args.quick else 'full'}",
                meta={"n": probe["n"], "mode": "quick" if args.quick else "full"},
            )
        )
        print(
            f"[history: entry #{entry.seq} "
            f"({len(entry.metrics)} metrics) -> {args.history}]"
        )
    return 0


def _table_main() -> None:
    main([])


# The campaign engine's import-based entry points (no exec).  The
# duty-matched comparison parametrizes over ``engine=`` exactly like
# the batch benchmarks parametrize over ``backend=``.
cells, run_cell = table_cells(
    ("sparse", duty_matched_cell, {"engine": ("events", "rounds")}),
    main=_table_main,
)


if __name__ == "__main__":
    raise SystemExit(main())
