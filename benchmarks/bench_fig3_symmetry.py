"""Experiment F3 — Figure 3: symmetry defeats common naming.

Regenerates the figure's six-robot symmetric configuration, verifies
the obstruction (orbit mates with identical views), and shows the
Section 3.4 escape hatch: relative naming still routes messages on the
very same configuration.
"""

from __future__ import annotations

from repro.apps.harness import SwarmHarness
from repro.naming.symmetry import (
    common_naming_is_impossible,
    figure3_configuration,
    local_view,
    rotational_symmetry_order,
    symmetric_view_pairs,
)
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells


def run_fig3():
    pts = figure3_configuration()
    order = rotational_symmetry_order(pts)
    pairs = symmetric_view_pairs(pts)
    identical = []
    for i, j, frame_i, frame_j in pairs:
        view_i = local_view(pts, i, frame_i)
        view_j = local_view(pts, j, frame_j)
        identical.append(all(a.distance_to(b) < 1e-9 for a, b in zip(view_i, view_j)))

    # Relative naming on the same (scaled) configuration still works.
    h = SwarmHarness(
        [p * 10.0 for p in pts],
        protocol_factory=lambda: SyncGranularProtocol(naming="sec"),
        identified=False,
        frame_regime="chirality",
        sigma=3.0,
    )
    h.simulator.protocol_of(0).send_bits(3, [1, 0])
    h.run(6)
    delivered = [e.bit for e in h.simulator.protocol_of(3).received]
    return pts, order, pairs, identical, delivered


def test_fig3_shape(benchmark):
    pts, order, pairs, identical, delivered = benchmark.pedantic(
        run_fig3, rounds=3, iterations=1
    )
    assert order == 2
    assert common_naming_is_impossible(pts)
    assert len(pairs) == 3
    assert all(identical)
    assert delivered == [1, 0]


def main() -> None:
    pts, order, pairs, identical, delivered = run_fig3()
    print_table(
        "F3 / Figure 3 — the symmetric six-robot configuration",
        ["property", "value"],
        [
            ("rotational symmetry order", order),
            ("common naming possible", not common_naming_is_impossible(pts)),
            ("indistinguishable pairs", [(i, j) for i, j, *_ in pairs]),
            ("orbit-mate views identical", identical),
            ("relative-naming delivery (bits)", delivered),
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
