"""Ablation A4 — partial synchrony: staleness vs phase dilation (§5).

The CORDA open problem made quantitative: delivery rate of the
synchronous granular protocol under boundedly-stale Look phases, for
the paper's 1-instant phases (dilation 1) versus phases dilated to
``max_delay + 1`` instants.

Shape claims: dilation 1 collapses as soon as staleness appears;
matched dilation stays at 100% at a proportional latency cost.
"""

from __future__ import annotations

from repro.apps.harness import ring_positions
from repro.corda.simulator import StaleLookSimulator
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

DELAYS = (0, 1, 2, 4)
SEEDS = range(15)
BITS = [1, 0, 1, 0, 1]


def delivery_rate(delay: int, dilation: int) -> float:
    ok = 0
    for seed in SEEDS:
        positions = ring_positions(5, radius=10.0, jitter=0.06)
        robots = [
            Robot(
                position=p,
                protocol=SyncGranularProtocol(dilation=dilation),
                sigma=4.0,
                observable_id=i,
            )
            for i, p in enumerate(positions)
        ]
        sim = StaleLookSimulator(robots, max_delay=delay, seed=seed)
        robots[0].protocol.send_bits(2, BITS)
        sim.run(2 * dilation * len(BITS) + 2 * delay + 10)
        if [e.bit for e in robots[2].protocol.received] == BITS:
            ok += 1
    return ok / len(list(SEEDS))


def sweep():
    rows = []
    for delay in DELAYS:
        base = delivery_rate(delay, dilation=1)
        matched = delivery_rate(delay, dilation=delay + 1)
        rows.append((delay, base, matched, 2 * (delay + 1)))
    return rows


def test_a4_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for delay, base, matched, _ in rows:
        if delay == 0:
            assert base == 1.0
        else:
            assert base < 0.2  # the open problem, measured
        assert matched == 1.0  # the dilation repair


def main() -> None:
    print_table(
        "A4 / §5 — delivery rate under CORDA-style stale looks (15 seeds, 5 bits)",
        ["max look lag d", "dilation 1 (paper)", "dilation d+1", "steps/bit @ d+1"],
        sweep(),
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
