"""Experiment P3 — the protocol comparison matrix (ours).

One table, all protocol families, one workload: a 3-bit message on a
4-robot swarm (or the 2-robot pair where the protocol demands it).
Columns: instants and distance per delivered bit, silence, and the
assumptions consumed — the engineering summary of the whole paper.
"""

from __future__ import annotations

from repro.analysis.metrics import silence_audit, transmission_stats
from repro.apps.harness import SwarmHarness, ring_positions
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_logk import SyncLogKProtocol
from repro.protocols.sync_two import SyncTwoProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

BITS = [1, 0, 1]


def run_case(name: str, build) -> dict:
    """Run one protocol case; build() returns (harness, src, dst)."""
    h, src, dst = build()
    h.simulator.protocol_of(src).send_bits(dst, BITS)
    delivered = h.pump(
        lambda hh: len(hh.simulator.protocol_of(dst).received) >= len(BITS),
        max_steps=120_000,
    )
    assert delivered, f"{name}: bits lost"
    got = [e.bit for e in h.simulator.protocol_of(dst).received]
    # Symbol-coded variants pad the last symbol with zero bits.
    assert got[: len(BITS)] == BITS
    assert all(bit == 0 for bit in got[len(BITS):])
    stats = transmission_stats(h.simulator.trace, h.simulator.protocol_of(dst).received)
    idle = [i for i in range(h.count) if i != src]
    silent = not silence_audit(h.simulator.trace, idle)
    return {
        "name": name,
        "steps_per_bit": stats.steps_per_bit,
        "distance_per_bit": stats.distance_per_bit,
        "silent": silent,
    }


def pair(factory):
    def build():
        h = SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
            protocol_factory=factory,
            identified=False,
            sigma=10.0,
            scheduler=None,
        )
        return h, 0, 1

    return build


def pair_async():
    def build():
        h = SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
            protocol_factory=lambda: AsyncTwoProtocol(bounded=True),
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=1),
            identified=False,
            sigma=10.0,
        )
        return h, 0, 1

    return build


def swarm(factory, identified=True, regime="sense_of_direction", scheduler=None):
    def build():
        h = SwarmHarness(
            ring_positions(4, radius=10.0, jitter=0.07),
            protocol_factory=factory,
            scheduler=scheduler,
            identified=identified,
            frame_regime=regime,  # type: ignore[arg-type]
            sigma=4.0,
        )
        return h, 0, 2

    return build


CASES = [
    ("SyncTwo (§3.1)", pair(lambda: SyncTwoProtocol())),
    ("SyncTwo B=16 (§3.1 rmk)", pair(lambda: SyncTwoProtocol(alphabet_size=16))),
    ("SyncGranular id (§3.2)", swarm(lambda: SyncGranularProtocol())),
    (
        "SyncGranular sec (§3.4)",
        swarm(
            lambda: SyncGranularProtocol(naming="sec"),
            identified=False,
            regime="chirality",
        ),
    ),
    ("SyncLogK k=2 (§5)", swarm(lambda: SyncLogKProtocol(k=2))),
    ("AsyncTwo bounded (§4.1)", pair_async()),
    (
        "AsyncN sec (§4.2)",
        swarm(
            lambda: AsyncNProtocol(naming="sec"),
            identified=False,
            regime="chirality",
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=1),
        ),
    ),
]

ASSUMPTIONS = {
    "SyncTwo (§3.1)": "sync, chirality",
    "SyncTwo B=16 (§3.1 rmk)": "sync, chirality, known sigma",
    "SyncGranular id (§3.2)": "sync, IDs, SoD",
    "SyncGranular sec (§3.4)": "sync, chirality",
    "SyncLogK k=2 (§5)": "sync, IDs, SoD, 6 slices",
    "AsyncTwo bounded (§4.1)": "fair async, chirality",
    "AsyncN sec (§4.2)": "fair async, chirality, P(t0)",
}


def sweep():
    return [run_case(name, build) for name, build in CASES]


def test_p3_matrix(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_name = {r["name"]: r for r in rows}
    # Sync protocols: 2 instants/bit and silent.
    for name in ("SyncTwo (§3.1)", "SyncGranular id (§3.2)", "SyncGranular sec (§3.4)"):
        assert by_name[name]["steps_per_bit"] == 2.0
        assert by_name[name]["silent"]
    # Symbol coding is cheaper than bit coding.
    assert (
        by_name["SyncTwo B=16 (§3.1 rmk)"]["steps_per_bit"]
        < by_name["SyncTwo (§3.1)"]["steps_per_bit"]
    )
    # Asynchrony costs more and is not silent.
    for name in ("AsyncTwo bounded (§4.1)", "AsyncN sec (§4.2)"):
        assert by_name[name]["steps_per_bit"] > 2.0
        assert not by_name[name]["silent"]


def main() -> None:
    print_table(
        "P3 — all protocols, one workload (3 bits, n=4 or pair)",
        ["protocol", "steps/bit", "distance/bit", "silent", "assumptions"],
        [
            (
                r["name"],
                round(r["steps_per_bit"], 2),
                round(r["distance_per_bit"], 2),
                r["silent"],
                ASSUMPTIONS[r["name"]],
            )
            for r in sweep()
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
