"""Experiment C5 — the movement channel as wireless backup (§1).

    "our solution can serve as a communication backup, i.e., it
    provides fault-tolerance by allowing the robots to communicate
    without means of communication (wireless device)."

Three fault scenarios against the dual-channel stack: device crash
(detectable), jamming (silent, recovered by ACK timeout) and heavy
intermittent loss.  Shape claim: every message is eventually delivered
exactly once, with the failing ones travelling over the movement path.
"""

from __future__ import annotations

from typing import List

from repro.apps.harness import SwarmHarness, ring_positions
from repro.channels.stack import DualChannelStack
from repro.faults.wireless import SimulatedWireless
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells


def build(count: int = 4, drop: float = 0.0, seed: int = 0):
    h = SwarmHarness(
        ring_positions(count, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
    )
    wireless = SimulatedWireless(count, drop_probability=drop, seed=seed)
    stacks = [
        DualChannelStack(i, wireless, h.channel(i), ack_timeout=4) for i in range(count)
    ]
    return h, wireless, stacks


def pump(h, stacks, steps: int):
    for _ in range(steps):
        h.run(1)
        for s in stacks:
            s.tick(h.simulator.time)


def scenario_crash() -> dict:
    h, wireless, stacks = build()
    stacks[0].send(2, b"before crash", time=0)
    pump(h, stacks, 3)
    wireless.crash_device(0)
    path = stacks[0].send(2, b"after crash", time=h.simulator.time)
    pump(h, stacks, 500)
    vias = [(m.payload, m.via) for m in stacks[2].inbox]
    return {"name": "crash", "immediate_path": path, "deliveries": vias}


def scenario_jam() -> dict:
    h, wireless, stacks = build()
    stacks[0].send(2, b"clear air", time=0)
    pump(h, stacks, 3)
    wireless.jam()
    path = stacks[0].send(2, b"into the jam", time=h.simulator.time)
    pump(h, stacks, 600)
    vias = [(m.payload, m.via) for m in stacks[2].inbox]
    return {"name": "jam", "immediate_path": path, "deliveries": vias}


def scenario_lossy() -> dict:
    h, wireless, stacks = build(drop=0.5, seed=7)
    sent: List[bytes] = []
    for i in range(5):
        payload = f"lossy {i}".encode()
        stacks[0].send(1, payload, time=h.simulator.time)
        sent.append(payload)
        pump(h, stacks, 30)
    pump(h, stacks, 1500)
    got = sorted(m.payload for m in stacks[1].inbox)
    return {"name": "lossy", "sent": sorted(sent), "got": got,
            "fallbacks": stacks[0].fallback_count}


def run_all():
    return scenario_crash(), scenario_jam(), scenario_lossy()


def test_c5_shape(benchmark):
    crash, jam, lossy = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Crash: detectable, movement used immediately; both messages land
    # exactly once.
    assert crash["immediate_path"] == "movement"
    assert sorted(crash["deliveries"]) == [
        (b"after crash", "movement"),
        (b"before crash", "wireless"),
    ]
    # Jam: the sender cannot tell; the ACK timeout reroutes.
    assert jam["immediate_path"] == "wireless"
    assert sorted(jam["deliveries"]) == [
        (b"clear air", "wireless"),
        (b"into the jam", "movement"),
    ]
    # Lossy: everything arrives exactly once despite 50% frame loss.
    assert lossy["got"] == lossy["sent"]


def main() -> None:
    crash, jam, lossy = run_all()
    print_table(
        "C5 / §1 — wireless failover scenarios",
        ["scenario", "send path", "deliveries (payload, via)"],
        [
            ("device crash", crash["immediate_path"], crash["deliveries"]),
            ("jamming", jam["immediate_path"], jam["deliveries"]),
        ],
    )
    print_table(
        "C5 / §1 — 50% frame loss, 5 messages",
        ["sent", "delivered exactly once", "movement fallbacks"],
        [(len(lossy["sent"]), lossy["got"] == lossy["sent"], lossy["fallbacks"])],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
