"""Experiment C6 — chatting while flocking (§5 remark).

The swarm drifts as a flock while robots chat; observers subtract the
agreed drift.  Shape claims: the decoded traffic is bit-for-bit the
static run's, the formation is preserved during idle travel, and the
swarm actually covers ground.
"""

from __future__ import annotations

from repro.apps.harness import SwarmHarness, ring_positions
from repro.geometry.vec import Vec2
from repro.protocols.flocking import FlockingProtocol
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

BITS = [1, 0, 1, 1, 0]


def run_pair() -> dict:
    positions = ring_positions(5, radius=10.0, jitter=0.07)

    static = SwarmHarness(
        positions, protocol_factory=lambda: SyncGranularProtocol(), sigma=6.0
    )
    static.simulator.protocol_of(0).send_bits(2, BITS)
    static.run(2 * len(BITS) + 2)
    static_events = [
        (e.src, e.dst, e.bit) for e in static.simulator.protocol_of(2).received
    ]

    flying = SwarmHarness(
        positions,
        protocol_factory=lambda: FlockingProtocol(
            SyncGranularProtocol(), direction=Vec2(0.0, 1.0), speed_fraction=0.02
        ),
        sigma=6.0,
    )
    flying.simulator.protocol_of(0).send_bits(2, BITS)
    flying.run(2 * len(BITS) + 2)
    flying_events = [
        (e.src, e.dst, e.bit) for e in flying.simulator.protocol_of(2).received
    ]

    travelled = min(
        flying.simulator.trace.initial_positions[i].distance_to(
            flying.simulator.positions[i]
        )
        for i in range(5)
    )
    return {
        "static": static_events,
        "flying": flying_events,
        "min_travel": travelled,
        "steps": flying.simulator.time,
    }


def test_c6_shape(benchmark):
    result = benchmark.pedantic(run_pair, rounds=3, iterations=1)
    assert result["flying"] == result["static"] == [(0, 2, b) for b in BITS]
    assert result["min_travel"] > 0.0


def main() -> None:
    result = run_pair()
    print_table(
        "C6 / §5 — chatting while flocking",
        ["metric", "value"],
        [
            ("bits (static run)", result["static"]),
            ("bits (flocking run)", result["flying"]),
            ("identical decode", result["flying"] == result["static"]),
            ("min distance flocked", round(result["min_travel"], 2)),
            ("steps", result["steps"]),
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
