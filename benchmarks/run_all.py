"""Print every experiment's regenerated tables (the EXPERIMENTS.md source).

Usage::

    python benchmarks/run_all.py
"""

from __future__ import annotations

import pathlib
import sys
import time

# Allow `python benchmarks/run_all.py` from the repo root.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks import (
    bench_fig1_sync_two,
    bench_fig2_routed,
    bench_fig3_symmetry,
    bench_fig4_naming,
    bench_fig5_async_two,
    bench_fig6_async_n,
    bench_c1_symbols,
    bench_c2_slice_tradeoff,
    bench_c3_silence,
    bench_c4_collision,
    bench_c5_failover,
    bench_c6_flocking,
    bench_c7_gossip,
    bench_a1_resolution,
    bench_a2_ack_threshold,
    bench_a3_energy,
    bench_a4_staleness,
    bench_a5_noise,
    bench_p1_scaling,
    bench_p2_throughput,
    bench_p3_protocol_matrix,
)

MODULES = [
    bench_fig1_sync_two,
    bench_fig2_routed,
    bench_fig3_symmetry,
    bench_fig4_naming,
    bench_fig5_async_two,
    bench_fig6_async_n,
    bench_c1_symbols,
    bench_c2_slice_tradeoff,
    bench_c3_silence,
    bench_c4_collision,
    bench_c5_failover,
    bench_c6_flocking,
    bench_c7_gossip,
    bench_a1_resolution,
    bench_a2_ack_threshold,
    bench_a3_energy,
    bench_a4_staleness,
    bench_a5_noise,
    bench_p1_scaling,
    bench_p2_throughput,
    bench_p3_protocol_matrix,
]


def main() -> int:
    failures = 0
    for module in MODULES:
        started = time.perf_counter()
        try:
            module.main()
            elapsed = time.perf_counter() - started
            print(f"[{module.__name__}: ok in {elapsed:.1f}s]")
        except Exception as exc:  # pragma: no cover - reporting path
            failures += 1
            print(f"[{module.__name__}: FAILED — {exc!r}]", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
