"""The experiment driver: regenerate every table, in parallel, with JSON.

Usage::

    python benchmarks/run_all.py                 # all tables, parallel
    python benchmarks/run_all.py --jobs 4        # bounded worker pool
    python benchmarks/run_all.py --sequential    # old single-process mode
    python benchmarks/run_all.py --json BENCH_results.json
    python -m benchmarks.run_all --quick --json BENCH_results.json
    python -m benchmarks.run_all --quick --obs run.jsonl   # + obs export
    python -m benchmarks.run_all --quick --workers 4 --store .campaigns/ci

The driver is a thin wrapper over :mod:`repro.campaign`: the table
matrix and the perf probes are submitted as campaign cells, executed
by the campaign worker pool (``--jobs`` for tables, ``--workers`` for
probes; 0 = inline), and read back from the result store.  Outputs are
replayed in registration order so the document is reproducible
byte-for-byte regardless of completion order; ``--store DIR`` keeps
the store (and with it, resumability) instead of a throwaway one.

``--quick`` is the CI smoke target: it skips the full table matrix and
runs only the perf probes — the cached-vs-uncached throughput A/B at
n=64, a geometry-cache effectiveness probe, and the sync-granular
2-steps-per-bit invariant — then writes the machine-readable results
JSON.  A nonzero exit means an invariant or transparency check failed.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

#: schema tag of the machine-readable results document; bump the
#: version whenever a consumer-visible key changes shape.
RESULTS_SCHEMA = "repro-bench-results"
RESULTS_VERSION = 4

#: where the longitudinal metrics history accumulates (one JSONL line
#: per driver run, appended — never overwritten; see repro.obs.history).
DEFAULT_HISTORY = "BENCH_history.jsonl"

# Allow `python benchmarks/run_all.py` from the repo root.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks import (
    bench_fig1_sync_two,
    bench_fig2_routed,
    bench_fig3_symmetry,
    bench_fig4_naming,
    bench_fig5_async_two,
    bench_fig6_async_n,
    bench_c1_symbols,
    bench_c2_slice_tradeoff,
    bench_c3_silence,
    bench_c4_collision,
    bench_c5_failover,
    bench_c6_flocking,
    bench_c7_gossip,
    bench_a1_resolution,
    bench_a2_ack_threshold,
    bench_a3_energy,
    bench_a4_staleness,
    bench_a5_noise,
    bench_event_sparse,
    bench_serve,
    bench_p1_scaling,
    bench_p2_throughput,
    bench_p3_protocol_matrix,
)

MODULES = [
    bench_fig1_sync_two,
    bench_fig2_routed,
    bench_fig3_symmetry,
    bench_fig4_naming,
    bench_fig5_async_two,
    bench_fig6_async_n,
    bench_c1_symbols,
    bench_c2_slice_tradeoff,
    bench_c3_silence,
    bench_c4_collision,
    bench_c5_failover,
    bench_c6_flocking,
    bench_c7_gossip,
    bench_a1_resolution,
    bench_a2_ack_threshold,
    bench_a3_energy,
    bench_a4_staleness,
    bench_a5_noise,
    bench_event_sparse,
    bench_serve,
    bench_p1_scaling,
    bench_p2_throughput,
    bench_p3_protocol_matrix,
]


# ----------------------------------------------------------------------
# The table matrix, as a campaign
# ----------------------------------------------------------------------
_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _run_cells(name: str, cells, workers: int, store_dir: Optional[str]):
    """Run ``cells`` through the campaign engine; return the outcomes.

    With ``store_dir`` the results persist (and a second run resumes
    from them); without, a throwaway store is used and deleted.  Cells
    get a single attempt — a crashed table or probe is a *finding*,
    not flakiness to retry.
    """
    from repro.campaign.runner import run_campaign
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec(
        name=name, cells=cells, timeout_s=900.0, max_attempts=1
    )
    persistent = store_dir is not None
    root = store_dir or tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        outcome = run_campaign(
            spec,
            root,
            workers=workers,
            resume=persistent,
            extra_paths=[str(_REPO_ROOT), str(_REPO_ROOT / "src")],
        )
    finally:
        if not persistent:
            shutil.rmtree(root, ignore_errors=True)
    return outcome.outcomes


def run_matrix(jobs: Optional[int], sequential: bool,
               store_dir: Optional[str] = None) -> List[Dict]:
    """Regenerate every experiment table as a campaign of bench cells."""
    from repro.campaign.spec import bench_cells

    workers = 0 if sequential else (jobs or min(len(MODULES), os.cpu_count() or 2))
    entries: List[Dict] = []
    for outcome in _run_cells("run-all-tables", bench_cells(), workers, store_dir):
        payload = outcome.payload or {}
        entry: Dict = {
            "name": str(outcome.cell.params["module"]),
            "ok": outcome.status == "ok",
            "elapsed_s": outcome.elapsed_s,
            "output": str(payload.get("output", "")),
        }
        if outcome.error is not None:  # pragma: no cover - reporting path
            entry["error"] = outcome.error
        entries.append(entry)
    return entries


# ----------------------------------------------------------------------
# Perf probes (the BENCH_results.json payload)
# ----------------------------------------------------------------------
def throughput_probe(n: int = 64, steps: int = 40) -> Dict:
    """Cached-vs-uncached A/B of the synchronous granular hot path.

    Semantic transparency is asserted, not assumed: the run fails if
    the two traces or the delivered bit streams differ in any way.
    """
    from repro.apps.harness import SwarmHarness, ring_positions
    from repro.protocols.sync_granular import SyncGranularProtocol

    def run(caching: bool):
        harness = SwarmHarness(
            ring_positions(n, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
            caching=caching,
        )
        harness.simulator.protocol_of(0).send_bits(n // 2, [1, 0] * 8)
        started = time.perf_counter()
        harness.run(steps)
        return harness, time.perf_counter() - started

    uncached, uncached_s = run(caching=False)
    cached, cached_s = run(caching=True)
    trace_identical = (
        uncached.simulator.trace.initial_positions
        == cached.simulator.trace.initial_positions
        and uncached.simulator.trace.steps == cached.simulator.trace.steps
    )
    bits_identical = [
        (e.src, e.dst, e.bit) for e in uncached.simulator.protocol_of(n // 2).received
    ] == [(e.src, e.dst, e.bit) for e in cached.simulator.protocol_of(n // 2).received]
    return {
        "n": n,
        "steps": steps,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "speedup": uncached_s / cached_s if cached_s > 0 else float("inf"),
        "uncached_steps_per_sec": steps / uncached_s,
        "cached_steps_per_sec": steps / cached_s,
        "trace_identical": trace_identical,
        "bits_identical": bits_identical,
        "stats": cached.simulator.stats.as_dict(),
    }


def geometry_cache_probe(n: int = 32, repeats: int = 200) -> Dict:
    """Hit rate of the epoch geometry cache on a static configuration."""
    from repro.apps.harness import ring_positions
    from repro.model.robot import Robot
    from repro.model.simulator import Simulator
    from repro.protocols.sync_granular import SyncGranularProtocol

    robots = [
        Robot(position=p, protocol=SyncGranularProtocol(), sigma=4.0, observable_id=i)
        for i, p in enumerate(ring_positions(n, radius=10.0, jitter=0.06))
    ]
    sim = Simulator(robots)
    started = time.perf_counter()
    for _ in range(repeats):
        sim.geometry.sec()
        sim.geometry.voronoi()
        sim.geometry.hull()
    elapsed = time.perf_counter() - started
    stats = sim.stats.as_dict()
    return {
        "n": n,
        "repeats": repeats,
        "elapsed_s": elapsed,
        "cache_hits": stats["cache_hits"],
        "cache_misses": stats["cache_misses"],
        "hit_rate": stats["hit_rate"],
    }


def batch_scaling_probe(
    sizes: Tuple[int, ...] = (1_000,), compare_n: int = 64
) -> Dict:
    """Robots/second of the vectorized backend at large swarm sizes.

    Each cell drives a ``BatchSimulator`` (kernel mode, strided trace)
    with one active sender and reports build time, run time and
    robots/second.  ``compare_n`` additionally runs the *same* swarm on
    both backends, checks the final configurations are bit-identical,
    and reports the batch/scalar speedup — the number the order-of-
    magnitude claim in docs/PERFORMANCE.md rests on.

    Skips cleanly (no failure) on a numpy-free interpreter.
    """
    import repro.batch

    if not repro.batch.available():
        return {"skipped": True, "backend": "scalar", "reason": repro.batch.NUMPY_HINT}

    from repro.batch.engine import BatchSimulator
    from repro.model.simulator import Simulator
    from repro.model.trace import TracePolicy

    from benchmarks.support import batch_swarm

    # Keyed by size (not a list) so every cell's robots_per_sec
    # flattens into the metrics history as cells.n10000.robots_per_sec.
    cells_out: Dict[str, Dict] = {}
    for n in sizes:
        steps = 400 if n <= 1_000 else (200 if n <= 10_000 else 100)
        started = time.perf_counter()
        sim = BatchSimulator(batch_swarm(n), trace_policy=TracePolicy(stride=1_000))
        build_s = time.perf_counter() - started
        sim.protocol_of(0).send_bits(1, [1, 0, 1, 1])
        started = time.perf_counter()
        sim.run(steps)
        run_s = time.perf_counter() - started
        cells_out[f"n{n}"] = {
            "n": n,
            "mode": sim.mode,
            "steps": steps,
            "build_s": build_s,
            "run_s": run_s,
            "robots_per_sec": n * steps / run_s if run_s > 0 else float("inf"),
            "delivered": len(sim.protocol_of(1).received),
        }

    compare_steps = 30

    def timed(cls):
        sim = cls(batch_swarm(compare_n))
        sim.protocol_of(0).send_bits(1, [1, 0, 1])
        started = time.perf_counter()
        sim.run(compare_steps)
        return sim, time.perf_counter() - started

    scalar_sim, scalar_s = timed(Simulator)
    batch_sim, batch_s = timed(BatchSimulator)
    comparison = {
        "n": compare_n,
        "steps": compare_steps,
        "scalar_robots_per_sec": compare_n * compare_steps / scalar_s,
        "batch_robots_per_sec": compare_n * compare_steps / batch_s,
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
        "traces_identical": tuple(scalar_sim.positions) == tuple(batch_sim.positions)
        and scalar_sim.protocol_of(1).received == batch_sim.protocol_of(1).received,
    }
    return {"backend": "batch", "cells": cells_out, "comparison": comparison}


def event_sparse_probe(n: int = 10_000, events: int = 30_000) -> Dict:
    """Event-engine throughput at 1% duty (see bench_event_sparse).

    Pure python — unlike the batch probes there is nothing to skip;
    the events/sec series lands in the metrics history and the
    ``python -m repro.obs regress`` gate watches it.
    """
    from benchmarks.bench_event_sparse import sparse_probe

    return sparse_probe(n=n, events=events)


def serve_load_probe(sessions: int = 40, churn_sessions: int = 12) -> Dict:
    """Serving-layer load + churn at campaign-probe size (bench_serve).

    Pure python over the stdlib event loop.  The payload carries the
    service's live metrics snapshot plus the churn verdicts, so the
    history tracks sessions/sec, p99 step latency and the CRC-verified
    restore count; ``crc_restore_identity`` doubles as an invariant.
    The throughput run is request-traced, so the row also carries
    ``queue_wait_p99_ms`` (server-side queueing attributed by the
    tracer) and the ``slo_*`` attainment/burn metrics — the regress
    gate watches objectives, not just raw latencies, from this entry
    forward.
    """
    from benchmarks.bench_serve import serve_probe

    return serve_probe(sessions=sessions, churn_sessions=churn_sessions)


def git_commit() -> Optional[str]:
    """The repo's current commit hash, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=str(pathlib.Path(__file__).resolve().parent),
        )
    except Exception:  # pragma: no cover - git missing entirely
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def obs_probe(path: str, n: int = 8, steps: int = 24) -> Dict:
    """Record an instrumented run and prove the recorder is invisible.

    Runs the same seeded sync-granular scenario twice — bare, then with
    an :class:`~repro.obs.recorder.ObsRecorder` attached — and requires
    the two traces and delivered bit streams to be bit-identical.  The
    instrumented run is exported as ``repro-obs-v1`` JSONL at ``path``
    (the file ``python -m repro.obs report`` renders).
    """
    from repro.apps.harness import SwarmHarness, ring_positions
    from repro.obs.export import dump_run
    from repro.obs.recorder import ObsRecorder
    from repro.protocols.sync_granular import SyncGranularProtocol

    def run(recorder):
        harness = SwarmHarness(
            ring_positions(n, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        if recorder is not None:
            recorder.attach(harness.simulator)
        harness.simulator.protocol_of(0).send_bits(n // 2, [1, 0, 1, 1])
        harness.run(steps)
        if recorder is not None:
            recorder.detach(harness.simulator)
        return harness

    bare = run(None)
    recorder = ObsRecorder(
        meta={
            "protocol": "sync_granular",
            "scheduler": "synchronous",
            "n": n,
            "steps": steps,
            "source": "benchmarks/run_all.py --obs",
        }
    )
    instrumented = run(recorder)
    transparent = (
        bare.simulator.trace.initial_positions
        == instrumented.simulator.trace.initial_positions
        and bare.simulator.trace.steps == instrumented.simulator.trace.steps
        and [
            (e.src, e.dst, e.bit)
            for e in bare.simulator.protocol_of(n // 2).received
        ]
        == [
            (e.src, e.dst, e.bit)
            for e in instrumented.simulator.protocol_of(n // 2).received
        ]
    )
    obs_run = recorder.to_run()
    dump_run(obs_run, path)
    return {
        "path": path,
        "n": n,
        "steps": steps,
        "events": len(obs_run.events),
        "transparent": transparent,
        "metrics": obs_run.metrics,
    }


def bit_latency_probe(seeds: int = 1) -> Dict:
    """End-to-end bit latency histograms, per protocol x engine.

    Drives two synchronous matrix cells instrumented with the obs
    recorder — on the round engine *and* the event engine in
    round-emulation mode — and exports the recorder's
    ``bit_latency_instants`` histograms (observed encode -> implicit
    ack, labeled protocol x scheduler x engine) as a metric ``series``.
    :func:`registry_snapshot` merges the series into the run snapshot,
    so the history ingests them as
    ``bit_latency_instants{...}.count/.sum/.mean``.
    """
    from repro.obs.recorder import ObsRecorder
    from repro.verify.engine import drive
    from repro.verify.scenarios import CELLS, build_run

    series: List[Dict] = []
    samples = 0
    for key in (("sync_two", "synchronous"), ("async_n", "synchronous")):
        cell = CELLS[key]
        for engine in ("rounds", "events"):
            for seed in range(seeds):
                recorder = ObsRecorder(
                    meta={
                        "protocol": cell.protocol,
                        "scheduler": cell.scheduler,
                        "seed": seed,
                    }
                )
                run = build_run(cell, seed, quick=True, engine=engine)
                recorder.attach(run.sim)
                try:
                    drive(run)
                finally:
                    recorder.detach(run.sim)
                for entry in recorder.registry.collect():
                    if entry.get("name") == "bit_latency_instants":
                        series.append(entry)
                        samples += int(entry.get("count", 0))
    return {
        "cells": 2,
        "engines": 2,
        "histograms": len(series),
        "latency_samples": samples,
        "series": series,
    }


def registry_snapshot(probes: Dict, timings: Dict[str, float],
                      invariants: Dict[str, bool]) -> List[Dict]:
    """Fold the run's numbers into one MetricsRegistry snapshot.

    Every numeric probe leaf becomes a gauge labeled by its probe,
    every invariant verdict a 0/1 gauge — the canonical flat form the
    metrics history ingests (``results["metrics"]``, schema v4).  A
    probe may also return pre-labeled registry entries under a
    ``"series"`` key (e.g. the bit-latency histograms); those are
    merged into the snapshot verbatim, keeping their own labels.
    """
    from repro.obs.history import flatten_scalars
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    collected: List[Dict] = []
    for name, probe in probes.items():
        if isinstance(probe, dict):
            registry.absorb(flatten_scalars(probe), probe=name)
            for entry in probe.get("series") or ():
                if isinstance(entry, dict):
                    collected.append(dict(entry))
        registry.gauge("probe_elapsed_s", probe=name).set(timings.get(name, 0.0))
    registry.absorb(flatten_scalars(invariants), check="invariant")
    collected.extend(registry.collect())
    # Deterministic order regardless of which probe contributed what.
    collected.sort(
        key=lambda e: (
            str(e.get("name", "")),
            sorted((k, str(v)) for k, v in (e.get("labels") or {}).items()),
        )
    )
    return collected


def append_history(results: Dict, path: str):
    """Append this run's metrics to the longitudinal history file."""
    from repro.obs.history import HistoryStore, entry_from_results

    return HistoryStore(path).append(entry_from_results(results))


def sync_invariant_holds() -> bool:
    """The paper's sync-granular cost: exactly 2 instants per bit."""
    from benchmarks.bench_p1_scaling import sync_steps_per_bit

    return all(sync_steps_per_bit(n) == 2.0 for n in (4, 8))


def adversarial_transparency_probe(seeds: int = 2) -> Dict:
    """Caching transparency under *adversarial* schedules.

    The throughput probe only exercises the benign synchronous
    scheduler; this one sweeps the full ``repro.verify`` matrix —
    bounded-unfair, burst, crash, worst-case-stale and displacement
    adversaries — and requires every cell's caching on/off twin runs
    to stay bit-identical (plus every protocol invariant the cell
    declares).
    """
    from repro.verify import run_matrix as verify_matrix

    report = verify_matrix(seeds=range(seeds), quick=True, minimize=False)
    return {
        "seeds": seeds,
        "runs": len(report.results),
        "failures": len(report.failures),
        "ok": report.ok,
        "violations": [
            str(v) for r in report.failures for v in r.violations
        ][:10],
    }


#: probe registry: cell name -> zero-arg runner.  The lambdas resolve
#: the probe functions through module globals at call time, so tests
#: (and users) can monkeypatch ``run_all.throughput_probe`` etc. and
#: still route through the campaign engine.
PROBES: Dict[str, object] = {
    "sync_throughput_n64": lambda: throughput_probe(n=64, steps=40),
    "geometry_cache": lambda: geometry_cache_probe(),
    "adversarial_transparency": lambda: adversarial_transparency_probe(),
    "batch_scaling_n1k": lambda: batch_scaling_probe(sizes=(1_000,), compare_n=64),
    "batch_scaling_large": lambda: batch_scaling_probe(
        sizes=(10_000, 100_000), compare_n=256
    ),
    "event_sparse_n10k": lambda: event_sparse_probe(),
    "serve_load": lambda: serve_load_probe(),
    "bit_latency": lambda: bit_latency_probe(),
}

#: probe cell order: registration order, which the report replays.
_PROBE_ORDER = list(PROBES)

#: probe cells excluded from ``--quick`` (CI smoke stays fast; the
#: n=1k batch cell remains in quick so every backend is probed there).
_SLOW_PROBES = {"batch_scaling_large"}


def cells() -> List[str]:
    """The campaign cells this module exposes: the perf probes."""
    return sorted(PROBES)


def run_cell(name: str) -> Dict:
    """Execute one probe cell for the campaign engine."""
    if name not in PROBES:
        raise KeyError(f"no probe cell {name!r} (available: {sorted(PROBES)})")
    return PROBES[name]()  # type: ignore[operator]


def collect_probes(workers: int = 0,
                   store_dir: Optional[str] = None,
                   exclude: Optional[set] = None) -> Tuple[Dict, Dict[str, float]]:
    """Run every probe as a campaign; return ``(payloads, timings)``.

    ``payloads`` maps probe name to its result dict; a probe that
    *raises* is recorded as ``{"ok": False, "error": ...}`` — it must
    not take the driver (or the JSON report) down with it, but counts
    as a failure :func:`main` turns into a nonzero exit.  ``timings``
    maps probe name to its wall-clock seconds in the worker.
    ``exclude`` drops probe cells by name (the quick profile uses it
    to skip the large batch-scaling cells).
    """
    from repro.campaign.spec import probe_cells

    cells_to_run = [
        cell for cell in probe_cells()
        if not exclude or cell.params.get("cell") not in exclude
    ]
    probes: Dict = {}
    timings: Dict[str, float] = {}
    for outcome in _run_cells("run-all-probes", cells_to_run, workers, store_dir):
        name = str(outcome.cell.params["cell"])
        timings[name] = outcome.elapsed_s
        if outcome.status == "ok":
            probes[name] = outcome.payload
        else:
            probes[name] = {"ok": False, "error": outcome.error or outcome.status}
    # replay in registration order (cells() sorts for hashing stability)
    ordered = {n: probes[n] for n in _PROBE_ORDER if n in probes}
    ordered.update(probes)
    return ordered, timings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: perf probes + invariants only, no table matrix",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write machine-readable results (BENCH_results.json)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the table matrix (default: cpu count)",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run the table matrix in-process, one module at a time",
    )
    parser.add_argument(
        "--obs",
        metavar="PATH",
        default=None,
        help="record an instrumented run, write it as repro-obs-v1 "
             "JSONL, and check the recorder changed nothing",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="campaign worker processes for the perf probes (0 = inline)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persist the campaign result stores under DIR "
             "(default: throwaway; re-runs resume from a kept store)",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        default=DEFAULT_HISTORY,
        help="append this run's metrics to the longitudinal history "
             f"(default {DEFAULT_HISTORY}; see python -m repro.obs regress)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the metrics-history append entirely",
    )
    args = parser.parse_args(argv)
    started = time.perf_counter()

    import repro.batch

    results: Dict = {
        "schema": RESULTS_SCHEMA,
        "version": RESULTS_VERSION,
        "generated_by": "benchmarks/run_all.py",
        "git_commit": git_commit(),
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "workers": args.workers,
        # the active simulation backend for the batch probes: regress
        # baselines must never mix scalar-fallback and batch numbers.
        "backend": "batch" if repro.batch.available() else "scalar",
    }
    table_store = os.path.join(args.store, "tables") if args.store else None
    probe_store = os.path.join(args.store, "probes") if args.store else None

    failures = 0
    if not args.quick:
        matrix = run_matrix(args.jobs, args.sequential, store_dir=table_store)
        for entry in matrix:
            sys.stdout.write(entry["output"])
            if entry["ok"]:
                print(f"[{entry['name']}: ok in {entry['elapsed_s']:.1f}s]")
            else:  # pragma: no cover - reporting path
                failures += 1
                print(
                    f"[{entry['name']}: FAILED — {entry['error']}]",
                    file=sys.stderr,
                )
        results["benchmarks"] = [
            {k: entry[k] for k in ("name", "ok", "elapsed_s")} for entry in matrix
        ]

    probes, probe_timings = collect_probes(
        workers=args.workers,
        store_dir=probe_store,
        exclude=_SLOW_PROBES if args.quick else None,
    )
    results["probes_elapsed_s"] = probe_timings
    invariants = {
        "sync_granular_two_steps_per_bit": sync_invariant_holds(),
        "caching_trace_identical": bool(
            probes["sync_throughput_n64"].get("trace_identical", False)
        ),
        "caching_bits_identical": bool(
            probes["sync_throughput_n64"].get("bits_identical", False)
        ),
        "adversarial_transparency": bool(
            probes["adversarial_transparency"].get("ok", False)
        ),
    }
    if args.obs:
        try:
            obs = obs_probe(args.obs)
        except Exception as exc:
            obs = {"ok": False, "error": repr(exc)}
        results["obs"] = obs
        invariants["obs_transparency"] = bool(obs.get("transparent", False))
        if "error" in obs:
            failures += 1
            print(f"[obs probe: CRASHED — {obs['error']}]", file=sys.stderr)
        else:
            print(
                f"[obs: {obs['events']} events, "
                f"{len(obs['metrics'])} metric series -> {obs['path']}]"
            )

    results["probes"] = probes
    results["invariants"] = invariants

    for name, probe in probes.items():
        if "error" in probe:
            failures += 1
            print(f"[probe {name}: CRASHED — {probe['error']}]", file=sys.stderr)

    throughput = probes["sync_throughput_n64"]
    if "error" not in throughput:
        print(
            f"[probe sync_throughput n={throughput['n']}: "
            f"uncached {throughput['uncached_s']:.3f}s, "
            f"cached {throughput['cached_s']:.3f}s, "
            f"speedup {throughput['speedup']:.2f}x, "
            f"reuse {throughput['stats']['observation_reuse_rate']:.1%}]"
        )
    adversarial = probes["adversarial_transparency"]
    if "error" not in adversarial:
        print(
            f"[probe adversarial_transparency: {adversarial['runs']} runs, "
            f"{adversarial['failures']} failures]"
        )
    sparse = probes.get("event_sparse_n10k")
    if sparse is not None and "error" not in sparse:
        print(
            f"[probe event_sparse n={sparse['n']}: "
            f"{sparse['events_per_sec']:,.0f} events/s, "
            f"duty {sparse['duty']:.2%}, heap max {sparse['heap_depth_max']:.0f}]"
        )
    serve = probes.get("serve_load")
    if serve is not None and "error" not in serve:
        print(
            f"[probe serve_load: {serve['completed']} sessions "
            f"(peak {serve['peak_concurrent']} live), "
            f"{serve['sessions_per_sec']:.0f} sessions/s, "
            f"p99 {serve['step_p99_ms']:.1f}ms "
            f"(queue-wait p99 {serve.get('queue_wait_p99_ms', 0.0):.1f}ms), "
            f"{serve['evictions']} evictions / "
            f"{serve['crc_verified_restores']} CRC-verified restores, "
            f"slo {'OK' if serve.get('slo_ok') else 'VIOLATED'}]"
        )
        invariants["serve_crc_restore_identity"] = bool(
            serve.get("crc_restore_identity", False)
        )
    for name in ("batch_scaling_n1k", "batch_scaling_large"):
        probe = probes.get(name)
        if probe is None or "error" in probe:
            continue
        if probe.get("skipped"):
            print(f"[probe {name}: skipped — scalar fallback (no numpy)]")
            continue
        for cell in probe["cells"].values():
            print(
                f"[probe {name} n={cell['n']}: {cell['robots_per_sec']:,.0f} "
                f"robots/s over {cell['steps']} steps ({cell['mode']} mode)]"
            )
        comparison = probe["comparison"]
        print(
            f"[probe {name} scalar-vs-batch n={comparison['n']}: "
            f"{comparison['speedup']:.1f}x, "
            f"identical={comparison['traces_identical']}]"
        )
        invariants[f"{name}_traces_identical"] = bool(
            comparison["traces_identical"]
        )
    for name, ok in invariants.items():
        print(f"[invariant {name}: {'ok' if ok else 'VIOLATED'}]")
        if not ok:
            failures += 1

    results["elapsed_s"] = time.perf_counter() - started
    results["metrics"] = registry_snapshot(probes, probe_timings, invariants)
    if args.json:
        path = pathlib.Path(args.json)
        path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {path}]")

    if not args.no_history:
        try:
            entry = append_history(results, args.history)
        except Exception as exc:
            failures += 1
            print(f"[history append FAILED — {exc!r}]", file=sys.stderr)
        else:
            print(
                f"[history: entry #{entry.seq} "
                f"({len(entry.metrics)} metrics) -> {args.history}]"
            )

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
