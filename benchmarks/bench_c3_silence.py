"""Experiment C3 — the silence property of the synchronous protocols.

    "the protocols proposed with synchronous settings are clearly
    silent" — a robot moves only when it has a message to transmit.

Random configurations, one busy sender, everyone else idle; the audit
counts movements of idle robots (must be zero) — and contrasts with the
asynchronous protocol, which is provably NOT silent (Remark 4.3, and
the Section 5 open problem).
"""

from __future__ import annotations

from repro.analysis.metrics import silence_audit
from repro.apps.harness import SwarmHarness
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

import random

from repro.geometry.vec import Vec2


def scatter(count: int, seed: int):
    rng = random.Random(seed)
    pts = []
    while len(pts) < count:
        p = Vec2(rng.uniform(-20, 20), rng.uniform(-20, 20))
        if all(p.distance_to(q) > 2.0 for q in pts):
            pts.append(p)
    return pts


def run_sync_case(count: int, seed: int) -> int:
    h = SwarmHarness(
        scatter(count, seed),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
    )
    h.simulator.protocol_of(0).send_bits(1, [1, 0, 1])
    h.run(30)
    idle = list(range(1, count))
    return len(silence_audit(h.simulator.trace, idle))


def run_async_contrast(count: int = 4, seed: int = 0) -> int:
    h = SwarmHarness(
        scatter(count, seed),
        protocol_factory=lambda: AsyncNProtocol(naming="sec"),
        scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=seed),
        identified=False,
        frame_regime="chirality",
        sigma=4.0,
    )
    h.run(60)
    idle = list(range(count))
    return len(silence_audit(h.simulator.trace, idle))


def sweep():
    sync_rows = [(n, seed, run_sync_case(n, seed)) for n in (4, 8, 16) for seed in (0, 1)]
    async_movers = run_async_contrast()
    return sync_rows, async_movers


def test_c3_shape(benchmark):
    sync_rows, async_movers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, seed, movers in sync_rows:
        assert movers == 0, f"idle robot moved in sync run n={n} seed={seed}"
    # Contrast: in the asynchronous protocol *every* robot moves.
    assert async_movers == 4


def main() -> None:
    sync_rows, async_movers = sweep()
    print_table(
        "C3 / silence — idle robots that moved (synchronous protocols)",
        ["n", "seed", "idle movers (must be 0)"],
        sync_rows,
    )
    print_table(
        "C3 / silence — asynchronous contrast (Remark 4.3)",
        ["protocol", "robots that moved while idle"],
        [("Asyncn (n=4, 60 steps)", async_movers)],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
