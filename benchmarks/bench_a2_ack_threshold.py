"""Ablation A2 — is Lemma 4.1's "changed twice" really necessary?

The asynchronous protocols hold each leg until the peer is observed to
change **twice**.  This ablation runs the same workload with the
threshold lowered to 1 ("changed once") and raised to 3, across a bank
of fair-asynchronous schedules:

* threshold 1 loses or corrupts bits on a substantial fraction of
  schedules — a single observed change does *not* imply the peer saw
  the excursion, exactly as the Lemma's proof warns;
* threshold 2 (the paper's) is perfect across the whole bank;
* threshold 3 is also perfect, just slower — the Lemma is tight.
"""

from __future__ import annotations

from repro.apps.harness import SwarmHarness
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_two import AsyncTwoProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

SEEDS = range(40)
BITS = [1, 0, 1, 1, 0]
THRESHOLDS = (1, 2, 3)


def run_once(threshold: int, seed: int):
    """Returns (delivered_ok, steps)."""
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: AsyncTwoProtocol(ack_threshold=threshold),
        scheduler=FairAsynchronousScheduler(
            fairness_bound=6, activation_probability=0.3, seed=seed
        ),
        identified=False,
        sigma=10.0,
    )
    h.simulator.protocol_of(0).send_bits(1, BITS)
    h.pump(
        lambda hh: len(hh.simulator.protocol_of(1).received) >= len(BITS),
        max_steps=6000,
    )
    got = [e.bit for e in h.simulator.protocol_of(1).received]
    return got == BITS, h.simulator.time


def sweep():
    rows = []
    for threshold in THRESHOLDS:
        outcomes = [run_once(threshold, seed) for seed in SEEDS]
        failures = sum(1 for ok, _ in outcomes if not ok)
        mean_steps = sum(steps for _, steps in outcomes) / len(outcomes)
        rows.append((threshold, len(list(SEEDS)), failures, round(mean_steps, 1)))
    return rows


def test_a2_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_threshold = {t: (fails, steps) for t, _, fails, steps in rows}
    # "Once" is not an acknowledgement: a meaningful failure rate.
    assert by_threshold[1][0] > 0
    # The paper's "twice" is sufficient...
    assert by_threshold[2][0] == 0
    # ...and not improved upon by "three times", which only costs more.
    assert by_threshold[3][0] == 0
    assert by_threshold[3][1] > by_threshold[2][1]


def main() -> None:
    print_table(
        "A2 / Lemma 4.1 — ack threshold ablation (40 fair-async schedules, 5 bits)",
        ["ack threshold", "schedules", "failed deliveries", "mean steps"],
        sweep(),
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
