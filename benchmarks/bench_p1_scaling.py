"""Experiment P1 — scaling and substrate performance (ours).

Not a paper artefact: engineering numbers for the reproduction itself.

* steps-per-bit vs swarm size per protocol family (sync granular is
  flat at 2; async grows with n);
* wall-clock cost of the geometric substrate (Voronoi diagram, SEC,
  relative naming) at growing n — the quantities that bound how large
  a swarm the simulator handles comfortably;
* robots/second of the vectorized batch backend (``repro.batch``) at
  n=1k/10k/100k — swarm sizes the scalar engine cannot reach (cells
  skip cleanly without numpy).
"""

from __future__ import annotations

import time

import repro.batch
from repro.apps.harness import SwarmHarness, ring_positions
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.voronoi import voronoi_diagram
from repro.model.scheduler import FairAsynchronousScheduler
from repro.naming.sec_naming import relative_labels
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

# scatter() is grid-accelerated (same points per seed as the old O(n²)
# rejection sampler) so the large-n substrate benchmarks stay feasible.
from benchmarks.support import print_table, scatter, table_cells


def sync_steps_per_bit(n: int) -> float:
    h = SwarmHarness(
        ring_positions(n, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
    )
    bits = [1, 0, 1, 0]
    h.simulator.protocol_of(0).send_bits(n // 2, bits)

    def done(hh):
        return len(hh.simulator.protocol_of(n // 2).received) >= len(bits)

    assert h.pump(done, max_steps=200)
    return h.simulator.time / len(bits)


def async_steps_per_bit(n: int) -> float:
    h = SwarmHarness(
        ring_positions(n, radius=10.0, jitter=0.07),
        protocol_factory=lambda: AsyncNProtocol(naming="sec"),
        scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=1),
        identified=False,
        frame_regime="chirality",
        sigma=4.0,
    )
    bits = [1, 0]
    h.simulator.protocol_of(0).send_bits(n - 1, bits)

    def done(hh):
        return len(hh.simulator.protocol_of(n - 1).received) >= len(bits)

    assert h.pump(done, max_steps=400_000)
    return h.simulator.time / len(bits)


def protocol_scaling_rows():
    rows = []
    for n in (4, 8, 16):
        rows.append((n, sync_steps_per_bit(n), round(async_steps_per_bit(n), 1)))
    return rows


#: the batch-backend scaling cells (robots/second at SoA swarm sizes).
BATCH_SIZES = (1_000, 10_000, 100_000)


def batch_steps_for(n: int) -> int:
    """Step budget per batch cell, scaled to keep wall clock bounded."""
    return 400 if n <= 1_000 else (200 if n <= 10_000 else 100)


def batch_scaling_rows(sizes=BATCH_SIZES):
    """(n, mode, steps, build_s, run_s, robots/sec) per batch cell.

    Empty on a numpy-free interpreter — the table prints a skip note
    instead of crashing, mirroring ``repro.batch``'s graceful
    degradation everywhere else.
    """
    if not repro.batch.available():
        return []
    from repro.batch.engine import BatchSimulator
    from repro.model.trace import TracePolicy

    from benchmarks.support import batch_swarm

    rows = []
    for n in sizes:
        steps = batch_steps_for(n)
        started = time.perf_counter()
        sim = BatchSimulator(batch_swarm(n), trace_policy=TracePolicy(stride=1_000))
        build_s = time.perf_counter() - started
        sim.protocol_of(0).send_bits(1, [1, 0, 1, 1])
        started = time.perf_counter()
        sim.run(steps)
        run_s = time.perf_counter() - started
        rows.append(
            (n, sim.mode, steps, round(build_s, 2), round(run_s, 2),
             int(n * steps / run_s) if run_s > 0 else 0)
        )
    return rows


# --- substrate micro-benchmarks (pytest-benchmark timings) -----------

def test_p1_protocol_scaling(benchmark):
    rows = benchmark.pedantic(protocol_scaling_rows, rounds=1, iterations=1)
    sync = [r[1] for r in rows]
    asyn = [r[2] for r in rows]
    # Sync cost is flat (2 steps/bit); async grows with n.
    assert max(sync) == min(sync) == 2.0
    assert asyn[-1] > asyn[0]


def test_p1_voronoi_speed(benchmark):
    pts = scatter(64, seed=3)
    diagram = benchmark(voronoi_diagram, pts)
    assert len(diagram) == 64


def test_p1_sec_speed(benchmark):
    pts = scatter(256, seed=4)
    circle = benchmark(smallest_enclosing_circle, pts)
    assert circle.radius > 0.0


def test_p1_relative_naming_speed(benchmark):
    pts = scatter(64, seed=5)
    labels = benchmark(relative_labels, pts, 0)
    assert sorted(labels.values()) == list(range(64))


def test_p1_batch_backend_scaling(benchmark):
    import pytest

    if not repro.batch.available():
        pytest.skip("batch backend needs numpy (install the [batch] extra)")
    rows = benchmark.pedantic(
        lambda: batch_scaling_rows(sizes=(1_000,)), rounds=1, iterations=1
    )
    (n, mode, steps, _build_s, _run_s, robots_per_sec) = rows[0]
    assert n == 1_000 and mode == "kernel" and steps == 400
    assert robots_per_sec > 0


def test_p1_simulator_throughput(benchmark):
    def run():
        h = SwarmHarness(
            ring_positions(16, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
        )
        h.simulator.protocol_of(0).send_bits(8, [1, 0] * 8)
        h.run(40)
        return h

    h = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(h.simulator.protocol_of(8).received) == 16


def main() -> None:
    print_table(
        "P1 — steps per delivered bit vs swarm size",
        ["n", "sync granular", "async (sec naming)"],
        protocol_scaling_rows(),
    )
    batch_rows = batch_scaling_rows()
    if batch_rows:
        print_table(
            "P1 — batch backend robots/second (vectorized SoA engine)",
            ["n", "mode", "steps", "build s", "run s", "robots/s"],
            batch_rows,
        )
    else:
        print("\n== P1 — batch backend robots/second: skipped (no numpy) ==")


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
