"""Ablation A1 — bounded direction resolution and discrete worlds (§5).

The paper's discrete-plane discussion: robots "are not able to identify
all of possible 2n directions [...] and are limited to recognize only a
certain number of directions", which is what the log_k addressing
fixes.  Three columns:

* the ``2n``-slice scheme under a resolution of ``D`` directions —
  binds only while ``2n <= D``;
* the ``2k+1``-slice scheme at the same resolution — works for every
  ``n`` (slice count independent of the swarm);
* the same scheme on an actual square lattice (8 realisable
  directions), the physical realisation of the resolution bound.
"""

from __future__ import annotations

from repro.apps.harness import SwarmHarness, ring_positions
from repro.discrete.lattice import SquareLattice
from repro.discrete.lattice_protocol import LatticeLogKProtocol
from repro.discrete.simulator import LatticeSimulator
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_logk import SyncLogKProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

RESOLUTION = 8  # distinguishable directions (a square lattice's worth)
SIZES = (3, 4, 6, 9, 12)


def try_full_slicing(n: int) -> str:
    try:
        h = SwarmHarness(
            ring_positions(n, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(max_directions=RESOLUTION),
            sigma=4.0,
        )
    except ProtocolError:
        return "unusable (2n > D)"
    h.simulator.protocol_of(0).send_bits(n - 1, [1, 0])
    h.run(8)
    got = [e.bit for e in h.simulator.protocol_of(n - 1).received]
    return f"ok, {h.simulator.time} steps" if got == [1, 0] else "garbled"


def try_logk(n: int) -> str:
    h = SwarmHarness(
        ring_positions(n, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncLogKProtocol(k=3, max_directions=RESOLUTION),
        sigma=4.0,
    )
    h.simulator.protocol_of(0).send_bits(n - 1, [1, 0])

    def done(hh):
        return len(hh.simulator.protocol_of(n - 1).received) >= 2

    assert h.pump(done, max_steps=200)
    return f"ok, {h.simulator.time} steps"


def try_lattice(n: int) -> str:
    lattice = SquareLattice(pitch=1.0)
    side = 12.0
    positions = [
        Vec2(side * (i % 4), side * (i // 4)) for i in range(n)
    ]
    robots = [
        Robot(
            position=p,
            protocol=LatticeLogKProtocol(k=3, lattice=lattice),
            sigma=6.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    sim = LatticeSimulator(robots, lattice)
    robots[0].protocol.send_bits(n - 1, [1, 0])
    for _ in range(200):
        sim.step()
        if len(robots[n - 1].protocol.received) >= 2:
            break
    got = [e.bit for e in robots[n - 1].protocol.received]
    return f"ok, {sim.time} steps" if got == [1, 0] else "garbled"


def sweep():
    return [(n, try_full_slicing(n), try_logk(n), try_lattice(n)) for n in SIZES]


def test_a1_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, full, logk, lattice in rows:
        if 2 * n <= RESOLUTION:
            assert full.startswith("ok")
        else:
            assert full.startswith("unusable")
        assert logk.startswith("ok")
        assert lattice.startswith("ok")


def main() -> None:
    print_table(
        f"A1 / §5 — communication at a resolution of {RESOLUTION} directions",
        ["n", f"2n slices @D={RESOLUTION}", "2k+1 slices (k=3)", "square lattice (k=3)"],
        sweep(),
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
