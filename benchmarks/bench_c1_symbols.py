"""Experiment C1 — the Section 3.1 multi-symbol coding remark.

    "the total distance 2 sigma [...] can be divided by the number of
    possible bytes [...] to reduce the number of moves"

Sweeps the alphabet size B over {2, 4, 16, 256} for a fixed message and
measures moves and steps.  Shape claim: moves shrink by log2(B).
"""

from __future__ import annotations

from repro.apps.harness import SwarmHarness
from repro.coding.bitstream import encode_message
from repro.geometry.vec import Vec2
from repro.protocols.sync_two import SyncTwoProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

ALPHABETS = (2, 4, 16, 256)
MESSAGE = b"stigmergic robots chat by moving"


def run_alphabet(alphabet: int) -> dict:
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(8.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(alphabet_size=alphabet),
        identified=False,
        sigma=8.0,
    )
    bits = encode_message(MESSAGE)
    h.simulator.protocol_of(0).send_bits(1, bits)

    def done(hh):
        return len(hh.simulator.protocol_of(1).received) >= len(bits)

    assert h.pump(done, max_steps=4 * len(bits) + 8)
    got = [e.bit for e in h.simulator.protocol_of(1).received]
    assert got[: len(bits)] == bits
    moves = len(h.simulator.trace.movements_of(0))
    return {
        "B": alphabet,
        "bits": len(bits),
        "moves": moves,
        "steps": h.simulator.time,
        "distance": h.simulator.trace.distance_travelled(0),
    }


def sweep():
    return [run_alphabet(b) for b in ALPHABETS]


def test_c1_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_b = {r["B"]: r for r in rows}
    base = by_b[2]["moves"]
    # Moves divide by log2(B) (within rounding of the last symbol).
    assert abs(by_b[4]["moves"] - base / 2) <= 4
    assert abs(by_b[16]["moves"] - base / 4) <= 4
    assert abs(by_b[256]["moves"] - base / 8) <= 4


def main() -> None:
    rows = sweep()
    base = rows[0]["moves"]
    print_table(
        f"C1 / §3.1 remark — alphabet size sweep, message = {MESSAGE!r}",
        ["B", "bits", "moves", "moves reduction", "steps", "distance"],
        [
            (
                r["B"],
                r["bits"],
                r["moves"],
                f"x{base / r['moves']:.2f}",
                r["steps"],
                round(r["distance"], 2),
            )
            for r in rows
        ],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
