"""Experiment P2 — aggregate medium throughput (ours).

Unlike a shared radio channel, the movement medium has perfect spatial
reuse: every robot owns its granular and can signal simultaneously.
Saturating all robots with traffic, the aggregate delivered throughput
should grow *linearly* with the swarm — ``n/2`` bits per instant for
the 2-instants-per-bit synchronous scheme.

This is an engineering property of the reproduction with a real
implication for the paper's programme: the medium does not become the
bottleneck as swarms grow, observation (decoding everyone) does.

The batch backend rows push the same saturated workload to swarm
sizes the scalar engine cannot reach, reporting delivered bits *and*
robots/second (they skip cleanly without numpy).
"""

from __future__ import annotations

import time

import repro.batch
from repro.apps.harness import SwarmHarness, ring_positions
from repro.protocols.sync_granular import SyncGranularProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

SIZES = (4, 8, 16, 32)
BITS_PER_SENDER = 20
STEPS = 2 * BITS_PER_SENDER + 2

#: batch-backend saturated sizes.  Saturation means *every* robot
#: sends, so every robot overhears every granular: the per-step
#: bookkeeping is inherently O(n²) and these cells stay modest —
#: the large-n robots/second story lives in bench_p1_scaling.
BATCH_SIZES = (64, 256)


def run_saturated(count: int, backend: str = "scalar") -> dict:
    h = SwarmHarness(
        ring_positions(count, radius=12.0, jitter=0.05),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
        backend=backend,
    )
    for i in range(count):
        h.simulator.protocol_of(i).send_bits((i + 1) % count, [i & 1] * BITS_PER_SENDER)
    started = time.perf_counter()
    h.run(STEPS)
    run_s = time.perf_counter() - started
    delivered = sum(
        len(h.simulator.protocol_of(i).received) for i in range(count)
    )
    return {
        "n": count,
        "backend": backend,
        "delivered": delivered,
        "steps": h.simulator.time,
        "throughput": delivered / h.simulator.time,
        "robots_per_sec": int(count * STEPS / run_s) if run_s > 0 else 0,
    }


def sweep():
    return [run_saturated(count) for count in SIZES]


def batch_sweep(sizes=BATCH_SIZES):
    """Saturated rows on the batch backend; [] without numpy."""
    if not repro.batch.available():
        return []
    return [run_saturated(count, backend="batch") for count in sizes]


def test_p2_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        # Everyone's full payload arrives within the 2-steps/bit window.
        assert row["delivered"] == row["n"] * BITS_PER_SENDER
        # Aggregate throughput is n/2 bits per instant (up to the
        # 2-instant tail of the window).
        assert row["throughput"] >= 0.9 * row["n"] / 2.0
    # Linear scaling: doubling n doubles throughput.
    by_n = {r["n"]: r["throughput"] for r in rows}
    assert by_n[32] / by_n[4] > 6.0


def test_p2_batch_backend_shape(benchmark):
    import pytest

    if not repro.batch.available():
        pytest.skip("batch backend needs numpy (install the [batch] extra)")
    rows = benchmark.pedantic(lambda: batch_sweep(sizes=(64,)), rounds=1, iterations=1)
    (row,) = rows
    # The vectorized engine delivers the same saturated payload with
    # the same linear-throughput shape as the scalar medium.
    assert row["backend"] == "batch"
    assert row["delivered"] == row["n"] * BITS_PER_SENDER
    assert row["throughput"] >= 0.9 * row["n"] / 2.0
    scalar = run_saturated(64)
    assert row["delivered"] == scalar["delivered"]
    assert row["steps"] == scalar["steps"]


def main() -> None:
    print_table(
        "P2 — aggregate throughput under full saturation (all robots sending)",
        ["n", "bits delivered", "steps", "bits/instant", "n/2 reference"],
        [
            (r["n"], r["delivered"], r["steps"], round(r["throughput"], 2), r["n"] / 2.0)
            for r in sweep()
        ],
    )
    batch_rows = batch_sweep()
    if batch_rows:
        print_table(
            "P2 — saturated throughput on the batch backend",
            ["n", "bits delivered", "bits/instant", "n/2 reference", "robots/s"],
            [
                (r["n"], r["delivered"], round(r["throughput"], 2),
                 r["n"] / 2.0, r["robots_per_sec"])
                for r in batch_rows
            ],
        )
    else:
        print("\n== P2 — batch backend saturation: skipped (no numpy) ==")


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
