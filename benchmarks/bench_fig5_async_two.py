"""Experiment F5 — Figure 5: asynchronous pair, implicit acknowledgements.

Regenerates the figure's exchange (r sends "001", r' sends "0") under a
sweep of scheduler fairness bounds, measuring delivery latency in
instants.  The shape claim: messages always arrive, and latency grows
with scheduler unfairness.
"""

from __future__ import annotations

from repro.apps.harness import SwarmHarness
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_two import AsyncTwoProtocol

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells

FAIRNESS_BOUNDS = (1, 2, 4, 8)
SEEDS = (0, 1, 2)


def run_exchange(bound: int, seed: int) -> int:
    """One Figure 5 exchange; returns the completion instant."""
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: AsyncTwoProtocol(),
        scheduler=FairAsynchronousScheduler(fairness_bound=bound, seed=seed),
        identified=False,
        sigma=10.0,
    )
    h.simulator.protocol_of(0).send_bits(1, [0, 0, 1])
    h.simulator.protocol_of(1).send_bits(0, [0])

    def done(hh):
        return (
            len(hh.simulator.protocol_of(1).received) >= 3
            and len(hh.simulator.protocol_of(0).received) >= 1
        )

    assert h.pump(done, max_steps=60_000), "figure 5 exchange lost bits"
    assert [e.bit for e in h.simulator.protocol_of(1).received] == [0, 0, 1]
    assert [e.bit for e in h.simulator.protocol_of(0).received] == [0]
    return h.simulator.time


def sweep():
    rows = []
    for bound in FAIRNESS_BOUNDS:
        latencies = [run_exchange(bound, seed) for seed in SEEDS]
        rows.append((bound, min(latencies), sum(latencies) / len(latencies), max(latencies)))
    return rows


def test_fig5_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Delivery under every bound (the assertions inside run_exchange),
    # and a monotone-ish latency trend: the most adversarial bound is
    # slower than the synchronous-like bound 1.
    mean_by_bound = {bound: mean for bound, _, mean, _ in rows}
    assert mean_by_bound[8] > mean_by_bound[1]


def main() -> None:
    print_table(
        "F5 / Figure 5 — async pair exchange ('001' / '0') vs fairness bound",
        ["fairness bound k", "min steps", "mean steps", "max steps"],
        sweep(),
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
