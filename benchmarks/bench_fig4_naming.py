"""Experiment F4 — Figure 4: relative naming from SEC + horizon line.

Regenerates a 12-robot instance with radius ties (like the figure's
robots sharing a radius), prints the labelling relative to robot r, and
verifies that every observer reconstructs it identically under private
rotations/scales (chirality only).
"""

from __future__ import annotations

from repro.apps.harness import ring_positions
from repro.geometry.frames import make_frames
from repro.geometry.vec import Vec2
from repro.naming.sec_naming import relative_labels

# Support running as a standalone script (python benchmarks/bench_x.py).
if __package__ in (None, ""):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.support import print_table, table_cells


def build_configuration():
    pts = ring_positions(10, radius=10.0, jitter=0.06)
    direction = pts[0].normalized()
    # Two extra robots on robot 0's radius (the figure's tie case).
    return pts + [direction * 4.0, direction * 7.0]


def run_fig4(observers: int = 8):
    pts = build_configuration()
    labels = relative_labels(pts, 0)
    agreements = 0
    for frame in make_frames(observers, "chirality", seed=11):
        view = [frame.to_local(p, Vec2(1.0, -2.0)) for p in pts]
        if relative_labels(view, 0) == labels:
            agreements += 1
    return pts, labels, agreements, observers


def test_fig4_shape(benchmark):
    pts, labels, agreements, observers = benchmark.pedantic(
        run_fig4, rounds=3, iterations=1
    )
    assert sorted(labels.values()) == list(range(12))
    assert agreements == observers  # every observer agrees
    # Radius ties ordered outward from O (robots 10, 11 then 0).
    assert labels[10] < labels[11] < labels[0]


def main() -> None:
    pts, labels, agreements, observers = run_fig4()
    rows = sorted(((label, index) for index, label in labels.items()))
    print_table(
        "F4 / Figure 4 — labelling relative to robot 0 (clockwise from H_r)",
        ["label", "robot (tracking index)"],
        rows,
    )
    print_table(
        "F4 / Figure 4 — observer agreement",
        ["observers with private frames", "reconstructions identical"],
        [(observers, agreements)],
    )


# The campaign engine's import-based entry points (no exec).
cells, run_cell = table_cells(main=main)


if __name__ == "__main__":
    main()
