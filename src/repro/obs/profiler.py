"""The deterministic span profiler: hotspot tables from recorded runs.

Two span families feed it:

* **phase spans** — the timed simulator phases an instrumented run
  records (``schedule`` / ``compute`` / ``compute.observe`` /
  ``compute.decide`` / ``move`` / ``record``).  The phase stream is
  flat and disjoint — each ``phase`` event closes the previous span —
  so a phase's recorded seconds are its **self time** by
  construction; dotted names roll up into their parent's **total
  time** (``compute`` total = compute self + ``compute.*``).
* **bit spans** — each transmitted bit's encode-started → receipt
  interval in *model* time (instants), aggregated per flow: the
  protocol-level hotspot is the flow that spends the most instants
  in flight.

Everything is a pure function of the event stream: under the
recorder's injectable clock two identical runs produce byte-identical
hotspot tables (the property ``tests/obs/test_profiler.py`` pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import PHASE, Event
from repro.obs.export import ObsRun
from repro.obs.spans import bit_spans

__all__ = [
    "PhaseStat",
    "FlowStat",
    "phase_hotspots",
    "flow_hotspots",
    "render_hotspots",
]


@dataclass(frozen=True)
class PhaseStat:
    """One phase's aggregated profile row."""

    name: str
    calls: int
    self_seconds: float
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        """Mean self time per call (0.0 when never called)."""
        return self.self_seconds / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class FlowStat:
    """One flow's aggregated bit-transmission profile row."""

    src: int
    dst: int
    bits: int
    delivered: int
    total_instants: float

    @property
    def mean_instants(self) -> float:
        """Mean instants per *delivered* bit (0.0 when none landed)."""
        return self.total_instants / self.delivered if self.delivered else 0.0


def phase_hotspots(
    events: Iterable[Event], top: Optional[int] = None
) -> List[PhaseStat]:
    """Phase rows ranked by self time (descending; name breaks ties).

    Self time is what the phase's own spans recorded; total time adds
    every dotted descendant (``compute.*`` into ``compute``), so the
    table answers both "where do the seconds go" (self) and "how
    expensive is this stage end to end" (total).
    """
    calls: Dict[str, int] = {}
    self_s: Dict[str, float] = {}
    for event in events:
        if event.kind != PHASE:
            continue
        name = str(event.get("phase", "?"))
        calls[name] = calls.get(name, 0) + 1
        self_s[name] = self_s.get(name, 0.0) + float(
            event.get("seconds", 0.0)  # type: ignore[arg-type]
        )
    stats: List[PhaseStat] = []
    for name in self_s:
        descendants = sum(
            seconds
            for other, seconds in self_s.items()
            if other.startswith(name + ".")
        )
        stats.append(
            PhaseStat(
                name=name,
                calls=calls[name],
                self_seconds=self_s[name],
                total_seconds=self_s[name] + descendants,
            )
        )
    stats.sort(key=lambda s: (-s.self_seconds, s.name))
    return stats[:top] if top is not None else stats


def flow_hotspots(
    events: Iterable[Event], top: Optional[int] = None
) -> List[FlowStat]:
    """Flow rows ranked by total in-flight instants (descending)."""
    per_flow: Dict[Tuple[int, int], List] = {}
    for span in bit_spans(events):
        flow = (int(span.attrs["src"]), int(span.attrs["dst"]))
        per_flow.setdefault(flow, []).append(span)
    stats: List[FlowStat] = []
    for (src, dst), spans in per_flow.items():
        delivered = [s for s in spans if s.end is not None]
        stats.append(
            FlowStat(
                src=src,
                dst=dst,
                bits=len(spans),
                delivered=len(delivered),
                total_instants=sum(s.end - s.start for s in delivered),
            )
        )
    stats.sort(key=lambda s: (-s.total_instants, s.src, s.dst))
    return stats[:top] if top is not None else stats


def _labels_of(run: ObsRun) -> str:
    protocol = run.meta.get("protocol", "?")
    scheduler = run.meta.get("scheduler", "?")
    return f"{protocol} x {scheduler}"


def render_hotspots(
    runs: Sequence[ObsRun], top: Optional[int] = 10
) -> str:
    """The hotspot tables, one section per protocol x scheduler.

    Runs sharing the same ``protocol``/``scheduler`` metadata are
    merged into one section (their event streams concatenate); the
    section order is the sorted label order, so the output is
    deterministic regardless of argument order.
    """
    grouped: Dict[str, List[ObsRun]] = {}
    for run in runs:
        grouped.setdefault(_labels_of(run), []).append(run)
    sections: List[str] = []
    for label in sorted(grouped):
        events: List[Event] = []
        for run in grouped[label]:
            events.extend(run.events)
        lines = [f"hotspots [{label}]"]
        phases = phase_hotspots(events, top=top)
        if phases:
            grand = sum(p.self_seconds for p in phases) or 1.0
            lines.append(
                f"  {'phase':<18s} {'calls':>7s} {'self_s':>12s} "
                f"{'total_s':>12s} {'share':>7s}"
            )
            for stat in phases:
                lines.append(
                    f"  {stat.name:<18s} {stat.calls:>7d} "
                    f"{stat.self_seconds:>12.6f} "
                    f"{stat.total_seconds:>12.6f} "
                    f"{stat.self_seconds / grand:>7.1%}"
                )
        else:
            lines.append("  (no phase timing recorded)")
        flows = flow_hotspots(events, top=top)
        if flows:
            lines.append(
                f"  {'flow':<18s} {'bits':>7s} {'delivered':>12s} "
                f"{'instants':>12s} {'mean':>7s}"
            )
            for stat in flows:
                lines.append(
                    f"  {f'r{stat.src}->r{stat.dst}':<18s} {stat.bits:>7d} "
                    f"{stat.delivered:>12d} {stat.total_instants:>12.1f} "
                    f"{stat.mean_instants:>7.2f}"
                )
        else:
            lines.append("  (no bit traffic recorded)")
        sections.append("\n".join(lines))
    if not sections:
        return "hotspots: (no runs)"
    return "\n\n".join(sections)
