"""``python -m repro.obs`` — inspect a recorded run.

Examples::

    python -m repro.obs report run.jsonl        # every view
    python -m repro.obs timeline run.jsonl      # activation timeline only
    python -m repro.obs gantt run.jsonl         # bit-transmission Gantt
    python -m repro.obs metrics run.jsonl       # metrics tables
    python -m repro.obs profile run.jsonl       # wall-time per phase
    python -m repro.obs demo demo.jsonl         # record a 2-robot
                                                # sync_two run, then
                                                # inspect it

Exit status: 0 on success, 1 when the run file is missing or garbled,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.obs.export import ObsRun, dump_run, load_run
from repro.obs.report import (
    render_gantt,
    render_metrics,
    render_profile,
    render_report,
    render_timeline,
)

_VIEWS = {
    "report": render_report,
    "timeline": render_timeline,
    "gantt": render_gantt,
    "metrics": lambda run, width=None: render_metrics(run),
    "profile": lambda run, width=None: render_profile(run),
}


def record_demo(path: str, steps: int = 12, payload: Optional[List[int]] = None) -> str:
    """Record the canonical 2-robot sync_two run; returns the path.

    This is the CI smoke recipe: two robots, one flow, a short
    payload, synchronous schedule — enough to exercise every event
    kind except faults.
    """
    from repro.apps.harness import SwarmHarness
    from repro.geometry.vec import Vec2
    from repro.obs.recorder import ObsRecorder
    from repro.protocols.sync_two import SyncTwoProtocol

    bits = payload if payload is not None else [1, 0, 1]
    harness = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(),
        identified=False,
        sigma=6.0,
    )
    recorder = ObsRecorder(
        meta={"protocol": "sync_two", "scheduler": "synchronous", "demo": True}
    )
    recorder.attach(harness.simulator)
    harness.simulator.protocol_of(0).send_bits(1, bits)
    harness.run(steps)
    recorder.detach(harness.simulator)
    return dump_run(recorder.to_run(), path)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect an exported observability run (repro-obs-v1 JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("report", "render every view of a run"),
        ("timeline", "render the activation timeline"),
        ("gantt", "render the per-flow bit-transmission Gantt"),
        ("metrics", "render the metrics tables"),
        ("profile", "render the wall-time-per-phase profile"),
    ):
        view = sub.add_parser(name, help=help_text)
        view.add_argument("run", help="path to an exported run (JSONL)")
        view.add_argument(
            "--width", type=int, default=None,
            help="maximum timeline columns (default 72; wide runs are strided)",
        )
    demo = sub.add_parser(
        "demo", help="record a 2-robot sync_two run and write it as JSONL"
    )
    demo.add_argument("out", help="path to write the recorded run to")
    demo.add_argument("--steps", type=int, default=12, help="instants to run")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _parser().parse_args(argv)
    if args.command == "demo":
        path = record_demo(args.out, steps=args.steps)
        print(f"[recorded 2-robot sync_two run -> {path}]")
        return 0
    try:
        run: ObsRun = load_run(args.run)
    except FileNotFoundError:
        print(f"error: no such run file: {args.run}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {args.run}: {exc}", file=sys.stderr)
        return 1
    print(_VIEWS[args.command](run, width=args.width))
    return 0


if __name__ == "__main__":
    sys.exit(main())
