"""``python -m repro.obs`` — inspect runs and their history.

Examples::

    python -m repro.obs report run.jsonl        # every view
    python -m repro.obs timeline run.jsonl      # activation timeline only
    python -m repro.obs gantt run.jsonl         # bit-transmission Gantt
    python -m repro.obs metrics run.jsonl       # metrics tables
    python -m repro.obs timeline run.jsonl --format json   # machine form
    python -m repro.obs profile run.jsonl       # wall-time per phase
    python -m repro.obs hotspots run.jsonl      # self/total-time table
    python -m repro.obs causal run.jsonl        # happens-before DAG
    python -m repro.obs causal run.jsonl --critical-path
                                                # latency attribution
    python -m repro.obs causal run.jsonl --dot  # graphviz form
    python -m repro.obs watch run.jsonl         # live per-flow latency
                                                # percentiles (tails the
                                                # file as it grows)
    python -m repro.obs top --port 7642         # live service dashboard
                                                # (requests, spans, SLOs
                                                # of a running server)
    python -m repro.obs diff a.jsonl b.jsonl    # what changed, and the
                                                # first diverging event
    python -m repro.obs diff 3 4 --history BENCH_history.jsonl
    python -m repro.obs history                 # the metrics history
    python -m repro.obs regress                 # gate on regressions
    python -m repro.obs regress --report-only   # chart, never gate
    python -m repro.obs demo demo.jsonl         # record a 2-robot
                                                # sync_two run, then
                                                # inspect it

Run files may be gzipped (``run.jsonl.gz``); the loader decides by
suffix.  Exit status: 0 on success, 1 when a run or history file is
missing or garbled (a one-line diagnostic, never a traceback), 2 on
usage errors, 3 when ``regress`` (not ``--report-only``) or ``diff
--gate`` found a difference worth failing on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.obs.causal import (
    build_causal,
    causal_to_dot,
    causal_to_json,
    render_causal,
    render_critical_path,
)
from repro.obs.diff import diff_history_entries, diff_runs, render_diff
from repro.obs.export import ObsRun, dump_run, load_run
from repro.obs.history import (
    HistoryStore,
    RegressPolicy,
    detect,
    render_regression_line,
    render_regressions,
)
from repro.obs.profiler import render_hotspots
from repro.obs.report import (
    gantt_to_json,
    metrics_to_json,
    render_gantt,
    render_metrics,
    render_profile,
    render_report,
    render_timeline,
    timeline_to_json,
)
from repro.obs.stream import watch_file

_VIEWS = {
    "report": render_report,
    "timeline": render_timeline,
    "gantt": render_gantt,
    "metrics": lambda run, width=None: render_metrics(run),
    "profile": lambda run, width=None: render_profile(run),
}

#: the machine-readable twins behind ``--format json``.
_JSON_VIEWS = {
    "timeline": timeline_to_json,
    "gantt": gantt_to_json,
    "metrics": metrics_to_json,
}

#: default location of the longitudinal metrics history.
DEFAULT_HISTORY = "BENCH_history.jsonl"


class _CliError(Exception):
    """A user-facing failure: printed as one line, exit status 1."""


def _load(path: str) -> ObsRun:
    """Load a run file, or raise a one-line :class:`_CliError`."""
    try:
        return load_run(path)
    except FileNotFoundError:
        raise _CliError(f"no such run file: {path}") from None
    except ReproError as exc:
        raise _CliError(f"{path}: {exc}") from exc
    except OSError as exc:
        # IsADirectoryError, PermissionError, BadGzipFile, ...
        raise _CliError(f"{path}: {exc}") from exc


def _history_store(path: str, must_exist: bool = True) -> HistoryStore:
    store = HistoryStore(path)
    if must_exist and not store.exists():
        raise _CliError(f"no such history file: {path}")
    return store


def _history_entries(path: str):
    try:
        return _history_store(path).entries()
    except ReproError as exc:
        raise _CliError(str(exc)) from exc
    except OSError as exc:
        raise _CliError(f"{path}: {exc}") from exc


def record_demo(path: str, steps: int = 12, payload: Optional[List[int]] = None) -> str:
    """Record the canonical 2-robot sync_two run; returns the path.

    This is the CI smoke recipe: two robots, one flow, a short
    payload, synchronous schedule — enough to exercise every event
    kind except faults.
    """
    from repro.apps.harness import SwarmHarness
    from repro.geometry.vec import Vec2
    from repro.obs.recorder import ObsRecorder
    from repro.protocols.sync_two import SyncTwoProtocol

    bits = payload if payload is not None else [1, 0, 1]
    harness = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(),
        identified=False,
        sigma=6.0,
    )
    recorder = ObsRecorder(
        meta={"protocol": "sync_two", "scheduler": "synchronous", "demo": True}
    )
    recorder.attach(harness.simulator)
    harness.simulator.protocol_of(0).send_bits(1, bits)
    harness.run(steps)
    recorder.detach(harness.simulator)
    return dump_run(recorder.to_run(), path)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_view(args: argparse.Namespace) -> int:
    run = _load(args.run)
    if getattr(args, "format", "ascii") == "json":
        print(json.dumps(_JSON_VIEWS[args.command](run), indent=2))
        return 0
    print(_VIEWS[args.command](run, width=args.width))
    return 0


def _cmd_causal(args: argparse.Namespace) -> int:
    trace = build_causal(_load(args.run))
    if args.json:
        print(json.dumps(causal_to_json(trace), indent=2))
    elif args.dot:
        print(causal_to_dot(trace))
    elif args.critical_path:
        print(render_critical_path(trace))
    else:
        print(render_causal(trace))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    if not os.path.exists(args.run):
        raise _CliError(f"no such run file: {args.run}")
    try:
        watch_file(
            args.run,
            interval=args.interval,
            iterations=args.iterations,
            window=args.window,
            once=args.once,
        )
    except KeyboardInterrupt:
        pass  # a tail loop's normal exit
    except OSError as exc:
        raise _CliError(f"{args.run}: {exc}") from exc
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over a running service's telemetry op."""
    import asyncio
    import time as _time

    from repro.obs.live import render_top
    from repro.serve.net import request  # lazy: serve is optional here

    frame = 0
    while True:
        try:
            reply = asyncio.run(
                request({"op": "telemetry"}, host=args.host, port=args.port)
            )
        except (ConnectionError, OSError) as exc:
            raise _CliError(
                f"no service at {args.host}:{args.port} ({exc})"
            ) from exc
        if not reply.get("ok"):
            raise _CliError(
                f"telemetry request failed: {reply.get('message', reply)}"
            )
        frame += 1
        if not args.once and frame > 1:
            print()
        print(f"-- top frame {frame} @ {args.host}:{args.port} --")
        print(render_top(reply))
        if args.once or (args.iterations and frame >= args.iterations):
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    path = record_demo(args.out, steps=args.steps)
    print(f"[recorded 2-robot sync_two run -> {path}]")
    return 0


def _cmd_hotspots(args: argparse.Namespace) -> int:
    runs = [_load(path) for path in args.runs]
    print(render_hotspots(runs, top=args.top or None))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.history is not None:
        entries = {e.seq: e for e in _history_entries(args.history)}
        try:
            seq_a, seq_b = int(args.a), int(args.b)
        except ValueError:
            raise _CliError(
                "with --history, A and B are entry seq numbers "
                f"(got {args.a!r}, {args.b!r})"
            ) from None
        for seq in (seq_a, seq_b):
            if seq not in entries:
                raise _CliError(
                    f"no history entry #{seq} in {args.history} "
                    f"(have {sorted(entries)})"
                )
        diff = diff_history_entries(entries[seq_a], entries[seq_b])
        label_a, label_b = f"entry #{seq_a}", f"entry #{seq_b}"
    else:
        diff = diff_runs(_load(args.a), _load(args.b))
        label_a, label_b = args.a, args.b
    print(render_diff(diff, label_a=label_a, label_b=label_b))
    if args.gate and not diff.identical:
        return 3
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    store = _history_store(args.history)
    entries = _history_entries(args.history)
    if args.metric:
        series = store.series(args.metric)
        if not series:
            raise _CliError(
                f"no metric {args.metric!r} anywhere in {args.history}"
            )
        print(f"history of {args.metric}:")
        for seq, value in series[-args.last:] if args.last else series:
            print(f"  #{seq:<6d} {value:.6g}")
        return 0
    shown = entries[-args.last:] if args.last else entries
    print(f"history: {len(entries)} entries in {args.history}")
    for entry in shown:
        commit = (entry.git_commit or "-")[:12]
        print(
            f"  #{entry.seq:<6d} {entry.source:<9s} {entry.run_id:<18s} "
            f"commit {commit:<12s} {len(entry.metrics)} metrics"
        )
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    entries = _history_entries(args.history)
    policy = RegressPolicy(
        window=args.window,
        min_samples=args.min_samples,
        mad_k=args.mad_k,
        rel_tolerance=args.rel_tolerance,
        abs_tolerance=args.abs_tolerance,
        metrics=tuple(args.metric) if args.metric else None,
    )
    report = detect(entries, policy)
    print(render_regressions(report))
    if args.report_only or report.ok:
        return 0
    # The exit-3 path also gets a one-line, grep-able diagnostic on
    # stderr naming each offender and the band it had to stay inside.
    print(render_regression_line(report, policy), file=sys.stderr)
    return 3


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Inspect exported observability runs (repro-obs-v1 JSONL, "
            "optionally gzipped) and the longitudinal metrics history."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("report", "render every view of a run"),
        ("timeline", "render the activation timeline"),
        ("gantt", "render the per-flow bit-transmission Gantt"),
        ("metrics", "render the metrics tables"),
        ("profile", "render the wall-time-per-phase profile"),
    ):
        view = sub.add_parser(name, help=help_text)
        view.add_argument("run", help="path to an exported run (JSONL, or .gz)")
        view.add_argument(
            "--width", type=int, default=None,
            help="maximum timeline columns (default 72; wide runs are strided)",
        )
        if name in _JSON_VIEWS:
            view.add_argument(
                "--format", choices=("ascii", "json"), default="ascii",
                help="output format (default ascii)",
            )
        view.set_defaults(func=_cmd_view)

    causal = sub.add_parser(
        "causal",
        help="happens-before DAG: flows, critical paths, latency attribution",
    )
    causal.add_argument("run", help="path to an exported run (JSONL, or .gz)")
    mode = causal.add_mutually_exclusive_group()
    mode.add_argument(
        "--critical-path", action="store_true",
        help="per-flow critical path with 100%% latency attribution",
    )
    mode.add_argument(
        "--dot", action="store_true", help="graphviz dot of every flow's DAG"
    )
    mode.add_argument(
        "--json", action="store_true", help="full machine form (repro-causal-v1)"
    )
    causal.set_defaults(func=_cmd_causal)

    watch = sub.add_parser(
        "watch",
        help="tail a growing trace, printing rolling per-flow latency "
             "percentiles",
    )
    watch.add_argument("run", help="trace being appended to (JSONL; .gz => one frame)")
    watch.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between frames (default 2)",
    )
    watch.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N frames (default 0 = until interrupted)",
    )
    watch.add_argument(
        "--window", type=int, default=256,
        help="rolling latency window per flow (default 256)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="read the whole file, print one frame, exit",
    )
    watch.set_defaults(func=_cmd_watch)

    top = sub.add_parser(
        "top",
        help="live dashboard over a running service (requests, spans, SLOs)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7642)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between frames (default 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N frames (default 0 = until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    top.set_defaults(func=_cmd_top)

    hotspots = sub.add_parser(
        "hotspots",
        help="self/total-time hotspot tables, per protocol x scheduler",
    )
    hotspots.add_argument(
        "runs", nargs="+", help="one or more exported runs (JSONL, or .gz)"
    )
    hotspots.add_argument(
        "--top", type=int, default=10,
        help="rows per table (default 10; 0 = all)",
    )
    hotspots.set_defaults(func=_cmd_hotspots)

    diff = sub.add_parser(
        "diff", help="compare two runs (or two history entries)"
    )
    diff.add_argument("a", help="run file A (or entry seq with --history)")
    diff.add_argument("b", help="run file B (or entry seq with --history)")
    diff.add_argument(
        "--history", metavar="PATH", default=None,
        help="diff two entries of this history file instead of run files",
    )
    diff.add_argument(
        "--gate", action="store_true",
        help="exit 3 when the two sides differ at all",
    )
    diff.set_defaults(func=_cmd_diff)

    history = sub.add_parser(
        "history", help="list the metrics history (or one metric's series)"
    )
    history.add_argument(
        "--history", metavar="PATH", default=DEFAULT_HISTORY,
        help=f"history file (default {DEFAULT_HISTORY})",
    )
    history.add_argument(
        "--metric", default=None, help="show this one metric over time"
    )
    history.add_argument(
        "--last", type=int, default=0, help="only the most recent N entries"
    )
    history.set_defaults(func=_cmd_history)

    regress = sub.add_parser(
        "regress", help="judge the latest history entry against its baseline"
    )
    regress.add_argument(
        "--history", metavar="PATH", default=DEFAULT_HISTORY,
        help=f"history file (default {DEFAULT_HISTORY})",
    )
    regress.add_argument(
        "--report-only", action="store_true",
        help="always exit 0 (chart without gating)",
    )
    regress.add_argument(
        "--window", type=int, default=10, help="baseline window (entries)"
    )
    regress.add_argument(
        "--min-samples", type=int, default=3,
        help="skip metrics with fewer baseline points than this",
    )
    regress.add_argument(
        "--mad-k", type=float, default=4.0,
        help="noise band half-width, in scaled MADs",
    )
    regress.add_argument(
        "--rel-tolerance", type=float, default=0.10,
        help="minimum relative deviation to flag (0.10 = 10%%)",
    )
    regress.add_argument(
        "--abs-tolerance", type=float, default=0.0,
        help="minimum absolute deviation to flag",
    )
    regress.add_argument(
        "--metric", action="append", default=None,
        help="only check this metric (repeatable)",
    )
    regress.set_defaults(func=_cmd_regress)

    demo = sub.add_parser(
        "demo", help="record a 2-robot sync_two run and write it as JSONL"
    )
    demo.add_argument("out", help="path to write the recorded run to")
    demo.add_argument("--steps", type=int, default=12, help="instants to run")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _parser().parse_args(argv)
    try:
        return args.func(args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe (| head, a pager) — not an error.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
