"""Longitudinal observability: metrics history across runs.

A single run's numbers die with the run — ``BENCH_results.json`` is
overwritten, a campaign store is keyed by cell hash with no time axis.
This subpackage gives every measurement a *history*:

* :mod:`repro.obs.history.store` — an append-only, git-commit-stamped
  JSONL history (``BENCH_history.jsonl``) with a derived SQLite index,
  following the campaign ``ResultStore`` journal/fsync discipline.
* :mod:`repro.obs.history.ingest` — adapters that turn
  ``benchmarks/run_all.py --json`` payloads, campaign result stores,
  and :class:`~repro.obs.registry.MetricsRegistry` snapshots into
  history entries with one flat ``metric -> value`` vocabulary.
* :mod:`repro.obs.history.regress` — per-metric rolling
  median-plus-MAD baselines with direction-of-goodness, exposed as
  ``python -m repro.obs regress`` in report-only and gating modes.
"""

from repro.obs.history.ingest import (
    entry_from_campaign,
    entry_from_registry,
    entry_from_results,
    flatten_scalars,
    metrics_from_snapshot,
)
from repro.obs.history.regress import (
    Finding,
    RegressPolicy,
    RegressReport,
    detect,
    direction_of,
    render_regression_line,
    render_regressions,
)
from repro.obs.history.store import (
    HISTORY_SCHEMA,
    HISTORY_VERSION,
    HistoryEntry,
    HistoryStore,
)

__all__ = [
    "HISTORY_SCHEMA",
    "HISTORY_VERSION",
    "HistoryEntry",
    "HistoryStore",
    "entry_from_campaign",
    "entry_from_registry",
    "entry_from_results",
    "flatten_scalars",
    "metrics_from_snapshot",
    "Finding",
    "RegressPolicy",
    "RegressReport",
    "detect",
    "direction_of",
    "render_regression_line",
    "render_regressions",
]
