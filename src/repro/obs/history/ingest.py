"""Adapters: every measurement source becomes one history vocabulary.

Three producers feed the history:

* ``benchmarks/run_all.py --json`` payloads (the bench driver);
* campaign :class:`~repro.campaign.store.ResultStore` directories
  (sharded experiment sweeps);
* raw :class:`~repro.obs.registry.MetricsRegistry` snapshots (any
  instrumented run).

All three land in the same flat ``metric name -> number`` mapping so
the regression detector and the differ never care where a number came
from.  Labeled registry series use the ``name{key=value,...}``
convention — deterministic (labels sorted), parse-free (the name is
the identity), and grep-friendly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.obs.history.store import HistoryEntry

__all__ = [
    "flatten_scalars",
    "metrics_from_snapshot",
    "entry_from_results",
    "entry_from_registry",
    "entry_from_campaign",
]


def flatten_scalars(
    doc: Mapping[str, object], prefix: str = ""
) -> Dict[str, float]:
    """Numeric/boolean leaves of a nested dict, with dotted keys.

    Strings, lists, and None are skipped — the history carries
    *measurements*, not payload prose.  Booleans become 0/1 so
    invariant verdicts are chartable and gateable.
    """
    out: Dict[str, float] = {}
    for key, value in doc.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            out[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, Mapping):
            out.update(flatten_scalars(value, prefix=f"{name}."))
    return out


def _labeled_name(name: str, labels: Optional[Mapping[str, object]]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def metrics_from_snapshot(
    snapshot: Iterable[Mapping[str, object]]
) -> Dict[str, float]:
    """A ``MetricsRegistry.collect()`` snapshot as flat history metrics.

    Counters and gauges contribute their value under
    ``name{labels}``; histograms contribute ``.count``, ``.sum`` and
    ``.mean`` (the mean is recomputed exactly from sum/count).
    """
    out: Dict[str, float] = {}
    for entry in snapshot:
        name = _labeled_name(str(entry.get("name", "?")), entry.get("labels"))
        if entry.get("type") == "histogram":
            count = float(entry.get("count", 0))  # type: ignore[arg-type]
            total = float(entry.get("sum", 0.0))  # type: ignore[arg-type]
            out[f"{name}.count"] = count
            out[f"{name}.sum"] = total
            out[f"{name}.mean"] = total / count if count else 0.0
        else:
            value = entry.get("value", 0)
            if isinstance(value, bool):
                out[name] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                out[name] = float(value)
    return out


def entry_from_results(
    results: Mapping[str, object], run_id: Optional[str] = None
) -> HistoryEntry:
    """A history entry from a ``run_all.py --json`` payload.

    Prefers the payload's embedded registry snapshot
    (``results["metrics"]``, schema v4+); older payloads fall back to
    flattening the probe/invariant blocks directly, so pre-history
    ``BENCH_results.json`` files can be backfilled.
    """
    metrics: Dict[str, float] = {}
    snapshot = results.get("metrics")
    if isinstance(snapshot, list):
        metrics.update(metrics_from_snapshot(snapshot))
    else:
        for block, prefix in (
            ("probes", "probe."),
            ("invariants", "invariant."),
            ("probes_elapsed_s", "probe_elapsed_s."),
        ):
            value = results.get(block)
            if isinstance(value, Mapping):
                metrics.update(flatten_scalars(value, prefix=prefix))
        elapsed = results.get("elapsed_s")
        if isinstance(elapsed, (int, float)):
            metrics["elapsed_s"] = float(elapsed)
    mode = results.get("mode", "full")
    return HistoryEntry(
        source="run_all",
        run_id=run_id or f"run_all-{mode}",
        metrics=metrics,
        meta={
            key: results[key]
            # "backend" (v4+) records which simulation backend produced
            # the batch probes, so baselines never mix scalar-fallback
            # and vectorized numbers.
            for key in ("schema", "version", "mode", "python", "workers", "backend")
            if key in results
        },
        git_commit=results.get("git_commit"),  # type: ignore[arg-type]
    )


def entry_from_registry(
    registry,
    run_id: str,
    meta: Optional[Mapping[str, object]] = None,
    git_commit: Optional[str] = None,
) -> HistoryEntry:
    """A history entry from a live :class:`MetricsRegistry`."""
    return HistoryEntry(
        source="registry",
        run_id=run_id,
        metrics=metrics_from_snapshot(registry.collect()),
        meta=dict(meta or {}),
        git_commit=git_commit,
    )


def _cell_label(kind: str, params: Mapping[str, object]) -> str:
    inner = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{kind}{{{inner}}}" if inner else kind


def entry_from_campaign(store) -> HistoryEntry:
    """A history entry from a finished campaign result store.

    Aggregates (cell counts, statuses, total wall clock) plus one
    ``cell.<kind>{params}.elapsed_s`` series per cell keyed by the
    cell's *parameters* — stable across re-runs and hash changes,
    unlike the content hash the store files are named by.
    """
    header = store.read_header()
    timings = store.cell_timings()
    metrics: Dict[str, float] = {}
    total = ok = failed = payload_ok = attempts = 0
    for record in store.iter_results():
        total += 1
        attempts += record.attempts
        if record.status == "ok":
            ok += 1
        else:
            failed += 1
        if record.payload_ok:
            payload_ok += 1
        elapsed = timings.get(record.cell_id)
        if elapsed is not None:
            label = _cell_label(record.kind, record.params)
            metrics[f"cell.{label}.elapsed_s"] = elapsed
    metrics.update(
        {
            "cells_total": float(total),
            "cells_ok": float(ok),
            "cells_failed": float(failed),
            "cells_payload_ok": float(payload_ok),
            "attempts_total": float(attempts),
            "elapsed_s": sum(timings.values()),
        }
    )
    return HistoryEntry(
        source="campaign",
        run_id=str(header.get("name", "?")),
        metrics=metrics,
        meta={
            "spec_hash": header.get("spec_hash"),
            "store": str(store.root),
        },
        git_commit=header.get("git_commit"),  # type: ignore[arg-type]
    )
