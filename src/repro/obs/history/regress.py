"""Statistically gated regression detection over the metrics history.

The detector judges the *latest* history entry against a rolling
baseline built from the entries before it:

* **Baseline** — per-metric median plus MAD (median absolute
  deviation) over a configurable window.  Median/MAD rather than
  mean/stddev so one historical outlier cannot poison the baseline.
* **Direction of goodness** — ``cached_s`` going *up* is a
  regression, ``speedup`` going *down* is; metrics with no known
  direction regress in either direction.  The classification is by
  name convention (see :func:`direction_of`) and can be overridden.
* **Gates** — a finding requires all three: the deviation clears the
  MAD noise band (``mad_k`` scaled MADs; a zero-MAD baseline means
  any movement clears it), the relative threshold, and the absolute
  threshold.  A metric with fewer than ``min_samples`` baseline
  points is skipped, never flagged — new metrics get a grace period.

``python -m repro.obs regress`` wraps this: report-only mode always
exits 0 so CI can chart without gating, gating mode exits 3 naming
every offending metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.history.store import HistoryEntry

__all__ = [
    "RegressPolicy",
    "Finding",
    "RegressReport",
    "direction_of",
    "median",
    "mad",
    "baseline",
    "detect",
    "render_regressions",
    "render_regression_line",
]

#: MAD -> sigma-equivalent scale for normally distributed noise.
_MAD_SCALE = 1.4826

#: name fragments whose presence means "lower is better".
_LOWER_TOKENS = (
    "seconds", "elapsed", "latency", "misses", "failures", "failed",
    "violations", "retries", "timeouts", "staleness",
)
#: name fragments whose presence means "higher is better".
_HIGHER_TOKENS = (
    "speedup", "per_sec", "hit_rate", "reuse", "throughput", "ok",
    "delivered", "hits",
)


def direction_of(name: str) -> str:
    """``"lower"``, ``"higher"``, or ``"either"`` — which way is good.

    Works on bare and labeled names (``cached_s{probe=...}``); the
    label block is ignored for classification.
    """
    base = name.split("{", 1)[0].lower()
    last = base.rsplit(".", 1)[-1]
    if last.endswith("_s") or last == "s" or last in ("sum", "mean"):
        return "lower"
    for token in _HIGHER_TOKENS:
        if token in base:
            return "higher"
    for token in _LOWER_TOKENS:
        if token in base:
            return "lower"
    return "either"


def median(values: Sequence[float]) -> float:
    """The sample median (mean of the middle two for even counts)."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of an empty sample")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def baseline(values: Sequence[float]) -> Tuple[float, float]:
    """``(median, mad)`` of a baseline window."""
    med = median(values)
    return med, mad(values, med)


@dataclass(frozen=True)
class RegressPolicy:
    """What counts as a regression.

    Attributes:
        window: baseline entries considered (most recent first).
        min_samples: baseline points below which a metric is skipped.
        mad_k: noise band half-width in scaled MADs.
        rel_tolerance: minimum relative deviation (0.10 = 10%).
        abs_tolerance: minimum absolute deviation.
        metrics: restrict checking to these exact names (None = all).
        directions: per-metric direction overrides
            (``{"name": "lower"|"higher"|"either"}``).
    """

    window: int = 10
    min_samples: int = 3
    mad_k: float = 4.0
    rel_tolerance: float = 0.10
    abs_tolerance: float = 0.0
    metrics: Optional[Tuple[str, ...]] = None
    directions: Dict[str, str] = field(default_factory=dict)

    def direction(self, name: str) -> str:
        """The effective direction of goodness for ``name``."""
        return self.directions.get(name, direction_of(name))


@dataclass(frozen=True)
class Finding:
    """One metric that regressed past every gate."""

    metric: str
    value: float
    baseline_median: float
    baseline_mad: float
    samples: int
    direction: str

    @property
    def delta(self) -> float:
        """Signed deviation from the baseline median."""
        return self.value - self.baseline_median

    @property
    def rel_delta(self) -> float:
        """Relative deviation (inf on a zero baseline)."""
        if self.baseline_median == 0:
            return float("inf")
        return self.delta / abs(self.baseline_median)

    def __str__(self) -> str:
        arrow = "+" if self.delta >= 0 else ""
        rel = (
            f"{arrow}{self.rel_delta:.1%}"
            if self.baseline_median
            else "from zero"
        )
        return (
            f"{self.metric}: {self.value:.6g} vs baseline median "
            f"{self.baseline_median:.6g} ({rel}, n={self.samples}, "
            f"{self.direction} is better)"
        )


@dataclass
class RegressReport:
    """The verdict over one candidate entry."""

    candidate: Optional[HistoryEntry]
    baseline_seqs: List[int]
    findings: List[Finding]
    checked: int = 0
    skipped: int = 0

    @property
    def ok(self) -> bool:
        """True when no metric regressed."""
        return not self.findings


def _check_metric(
    name: str,
    history: Sequence[float],
    value: float,
    policy: RegressPolicy,
) -> Optional[Finding]:
    med, raw_mad = baseline(history)
    direction = policy.direction(name)
    delta = value - med
    if direction == "lower":
        badness = delta
    elif direction == "higher":
        badness = -delta
    else:
        badness = abs(delta)
    if badness <= 0:
        return None
    noise_band = policy.mad_k * _MAD_SCALE * raw_mad
    if badness <= noise_band:
        return None
    rel = badness / abs(med) if med else float("inf")
    if rel <= policy.rel_tolerance or badness <= policy.abs_tolerance:
        return None
    return Finding(
        metric=name,
        value=value,
        baseline_median=med,
        baseline_mad=raw_mad,
        samples=len(history),
        direction=direction,
    )


def detect(
    entries: Sequence[HistoryEntry],
    policy: Optional[RegressPolicy] = None,
) -> RegressReport:
    """Judge the last entry of ``entries`` against the ones before it."""
    policy = policy or RegressPolicy()
    if not entries:
        return RegressReport(candidate=None, baseline_seqs=[], findings=[])
    candidate = entries[-1]
    window = entries[max(0, len(entries) - 1 - policy.window):-1]
    report = RegressReport(
        candidate=candidate,
        baseline_seqs=[e.seq or 0 for e in window],
        findings=[],
    )
    for name in sorted(candidate.metrics):
        if policy.metrics is not None and name not in policy.metrics:
            continue
        history = [
            float(e.metrics[name]) for e in window if name in e.metrics
        ]
        if len(history) < policy.min_samples:
            report.skipped += 1
            continue
        report.checked += 1
        finding = _check_metric(
            name, history, float(candidate.metrics[name]), policy
        )
        if finding is not None:
            report.findings.append(finding)
    # Worst offenders first; name breaks ties deterministically.
    report.findings.sort(key=lambda f: (-abs(f.rel_delta), f.metric))
    return report


def render_regressions(report: RegressReport) -> str:
    """The ASCII verdict ``python -m repro.obs regress`` prints."""
    if report.candidate is None:
        return "regressions: (empty history — nothing to judge)"
    head = (
        f"regression check: entry #{report.candidate.seq} "
        f"({report.candidate.run_id}"
        + (
            f", commit {str(report.candidate.git_commit)[:12]}"
            if report.candidate.git_commit
            else ""
        )
        + f") vs baseline of {len(report.baseline_seqs)} entries"
    )
    lines = [
        head,
        f"  metrics checked: {report.checked}, "
        f"skipped (insufficient history): {report.skipped}",
    ]
    if report.ok:
        lines.append("  no regressions")
    else:
        lines.append(f"  REGRESSIONS ({len(report.findings)}):")
        for finding in report.findings:
            lines.append(f"    - {finding}")
    return "\n".join(lines)


def render_regression_line(
    report: RegressReport, policy: Optional[RegressPolicy] = None
) -> str:
    """One grep-able line naming every offender with its accepted band.

    This is what the CLI prints to stderr alongside exit status 3, so a
    CI log scraper (or a human skimming red builds) sees the verdict
    without parsing the full chart: each offending metric, the value it
    landed on, and the median +/- k*MAD band it had to stay inside.
    """
    if report.ok or report.candidate is None:
        return "regress: ok"
    policy = policy or RegressPolicy()
    parts = []
    for finding in report.findings:
        band = policy.mad_k * _MAD_SCALE * finding.baseline_mad
        lo = finding.baseline_median - band
        hi = finding.baseline_median + band
        parts.append(
            f"{finding.metric}={finding.value:.6g} "
            f"(median {finding.baseline_median:.6g}, "
            f"band [{lo:.6g}, {hi:.6g}])"
        )
    return (
        f"regress: {len(report.findings)} metric(s) out of bounds: "
        + "; ".join(parts)
    )
