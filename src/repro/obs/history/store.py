"""The append-only metrics history store — ``BENCH_history.jsonl``.

One file per machine (or per CI pipeline), one JSON object per line,
each line a complete, self-describing :class:`HistoryEntry`: a
monotonically increasing ``seq``, a wall-clock stamp, the git commit
the numbers were measured at, a free-form ``meta`` block, and a flat
``metric name -> number`` mapping.  Appends follow the campaign
journal discipline — written, flushed, ``fsync``'d — so a crash can
truncate at most the line being written, never corrupt earlier ones.

A derived SQLite index (``BENCH_history.db`` next to the JSONL) makes
ad-hoc queries cheap; like the campaign store's ``index.db`` it is a
pure derivation, rebuilt on demand and safe to delete.  The JSONL file
is the truth.
"""

from __future__ import annotations

import gzip
import json
import os
import pathlib
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TraceFormatError

__all__ = ["HISTORY_SCHEMA", "HISTORY_VERSION", "HistoryEntry", "HistoryStore"]

#: schema tag of one history line; bump the version when a
#: consumer-visible key changes shape.
HISTORY_SCHEMA = "repro-bench-history"
HISTORY_VERSION = 1


@dataclass
class HistoryEntry:
    """One measurement epoch: who measured what, when, at which commit.

    ``metrics`` is deliberately flat (``name -> number``): the
    regression detector, the differ, and the SQLite index all want a
    single vocabulary, not nested per-probe documents.  Label-carrying
    names use the ``name{key=value,...}`` convention of
    :func:`~repro.obs.history.ingest.metrics_from_snapshot`.
    """

    source: str
    run_id: str
    metrics: Dict[str, float]
    meta: Dict[str, object] = field(default_factory=dict)
    git_commit: Optional[str] = None
    recorded_at: Optional[float] = None
    seq: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        """The deterministic on-disk form of this entry."""
        return {
            "schema": HISTORY_SCHEMA,
            "version": HISTORY_VERSION,
            "seq": self.seq,
            "recorded_at": self.recorded_at,
            "git_commit": self.git_commit,
            "source": self.source,
            "run_id": self.run_id,
            "meta": dict(self.meta),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "HistoryEntry":
        """Parse one history line (inverse of :meth:`to_json`)."""
        if doc.get("schema") != HISTORY_SCHEMA:
            raise TraceFormatError(
                f"not a history entry (schema={doc.get('schema')!r}, "
                f"expected {HISTORY_SCHEMA!r})"
            )
        if doc.get("version") != HISTORY_VERSION:
            raise TraceFormatError(
                f"unsupported history version {doc.get('version')!r} "
                f"(this reader handles {HISTORY_VERSION})"
            )
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            raise TraceFormatError("history entry has no metrics object")
        seq = doc.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise TraceFormatError(f"history entry has no integer seq: {seq!r}")
        return cls(
            source=str(doc.get("source", "?")),
            run_id=str(doc.get("run_id", "?")),
            metrics={str(k): v for k, v in metrics.items()},
            meta=dict(doc.get("meta") or {}),  # type: ignore[arg-type]
            git_commit=doc.get("git_commit"),  # type: ignore[arg-type]
            recorded_at=doc.get("recorded_at"),  # type: ignore[arg-type]
            seq=seq,
        )


class HistoryStore:
    """The append-only history file plus its derived SQLite index."""

    def __init__(self, path: str) -> None:
        self.path = pathlib.Path(path)
        self.index_path = self.path.with_suffix(".db")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Is there any history yet?"""
        return self.path.exists()

    def entries(self) -> List[HistoryEntry]:
        """Every entry, oldest first.

        Raises:
            TraceFormatError: on a garbled line, with its line number
                (the store never guesses around corruption).
        """
        try:
            if self.path.suffix == ".gz":
                with gzip.open(self.path, "rt", encoding="utf-8") as handle:
                    text = handle.read()
            else:
                text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        out: List[HistoryEntry] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{self.path}: line {lineno}: not valid JSON "
                    f"({exc.msg} at column {exc.colno})"
                ) from exc
            if not isinstance(doc, dict):
                raise TraceFormatError(
                    f"{self.path}: line {lineno}: expected a JSON object"
                )
            try:
                out.append(HistoryEntry.from_json(doc))
            except TraceFormatError as exc:
                raise TraceFormatError(
                    f"{self.path}: line {lineno}: {exc}"
                ) from exc
        return out

    def last(self, n: int = 1) -> List[HistoryEntry]:
        """The most recent ``n`` entries, oldest of them first."""
        return self.entries()[-n:]

    def series(self, metric: str) -> List[Tuple[int, float]]:
        """``(seq, value)`` for every entry that carries ``metric``."""
        out: List[Tuple[int, float]] = []
        for entry in self.entries():
            if metric in entry.metrics:
                out.append((entry.seq or 0, float(entry.metrics[metric])))
        return out

    def metric_names(self) -> List[str]:
        """Every metric name seen anywhere in the history, sorted."""
        names = set()
        for entry in self.entries():
            names.update(entry.metrics)
        return sorted(names)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, entry: HistoryEntry) -> HistoryEntry:
        """Append one entry; assigns ``seq``/``recorded_at`` in place.

        The line is flushed and fsync'd before returning (journal
        discipline) — once :meth:`append` returns, the entry survives
        a crash.
        """
        existing = self.entries()
        entry.seq = (existing[-1].seq or len(existing)) + 1 if existing else 1
        if entry.recorded_at is None:
            entry.recorded_at = time.time()
        if self.path.parent and not self.path.parent.is_dir():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry.to_json(), sort_keys=True) + "\n"
        if self.path.suffix == ".gz":
            # Each append is its own deterministic gzip member (mtime
            # pinned, no filename) — concatenated members read back as
            # one stream, preserving the journal discipline.
            with open(self.path, "ab") as raw:
                with gzip.GzipFile(
                    fileobj=raw, mode="ab", filename="", mtime=0
                ) as packed:
                    packed.write(line.encode("utf-8"))
                raw.flush()
                os.fsync(raw.fileno())
        else:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        return entry

    # ------------------------------------------------------------------
    # SQLite index (derived)
    # ------------------------------------------------------------------
    def build_index(self) -> pathlib.Path:
        """(Re)build the SQLite index over the JSONL; returns its path.

        Two tables: ``entries(seq, recorded_at, git_commit, source,
        run_id, meta)`` and ``metrics(seq, name, value)`` — enough for
        "this metric over time" and "every metric at this commit"
        without parsing JSON in the query.
        """
        tmp = self.index_path.with_suffix(".db.tmp")
        if tmp.exists():
            tmp.unlink()
        conn = sqlite3.connect(tmp)
        try:
            conn.execute(
                """
                CREATE TABLE entries (
                    seq INTEGER PRIMARY KEY,
                    recorded_at REAL,
                    git_commit TEXT,
                    source TEXT NOT NULL,
                    run_id TEXT NOT NULL,
                    meta TEXT NOT NULL
                )
                """
            )
            conn.execute(
                """
                CREATE TABLE metrics (
                    seq INTEGER NOT NULL,
                    name TEXT NOT NULL,
                    value REAL NOT NULL,
                    PRIMARY KEY (seq, name)
                )
                """
            )
            for entry in self.entries():
                conn.execute(
                    "INSERT OR REPLACE INTO entries VALUES (?,?,?,?,?,?)",
                    (
                        entry.seq,
                        entry.recorded_at,
                        entry.git_commit,
                        entry.source,
                        entry.run_id,
                        json.dumps(entry.meta, sort_keys=True),
                    ),
                )
                for name, value in entry.metrics.items():
                    conn.execute(
                        "INSERT OR REPLACE INTO metrics VALUES (?,?,?)",
                        (entry.seq, name, float(value)),
                    )
            conn.commit()
        finally:
            conn.close()
        os.replace(tmp, self.index_path)
        return self.index_path

    def query_index(self, sql: str, *args: object) -> List[tuple]:
        """Run a read-only query against a freshly built index."""
        self.build_index()
        conn = sqlite3.connect(self.index_path)
        try:
            return list(conn.execute(sql, args))
        finally:
            conn.close()
