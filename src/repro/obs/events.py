"""The structured event model of the observability layer.

Every observable fact about a run — an instant's activation set, a
scheduler decision, a displacement fault, one leg of a bit's life, a
monitor firing, a timed simulator phase — becomes one :class:`Event`:
a ``kind`` tag, the instant ``time`` it belongs to, and a flat
JSON-able attribute mapping.  Events are what the recorder collects,
what the JSONL export writes one-per-line, and what the report views
and the span builders consume.

Bit lifecycle
-------------

The paper's protocols "speak" a bit over several instants; the
lifecycle kinds trace each leg:

``bit-encode-started``
    the sender popped the bit off its outgoing queue and began
    encoding it into movement (the Compute that chose the excursion).
``bit-moved``
    the sender's encoding movement was computed — the excursion (or
    excursion leg) that makes the bit visible to observers.
``bit-receipt``
    the addressee decoded the bit (it entered ``Protocol.received``).
``bit-overheard``
    a third party decoded the bit in passing (the paper's "every robot
    is able to know all the messages sent in the system").
``bit-ack``
    the sender advanced to its next queued bit on the same flow — the
    implicit acknowledgement of Lemma 4.1 (or the synchronous rhythm)
    has been consumed, so the previous bit's transmission is complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import TraceFormatError

__all__ = [
    "Event",
    "STEP",
    "SCHEDULE",
    "DISPLACEMENT",
    "MONITOR",
    "PHASE",
    "BIT_ENCODE_STARTED",
    "BIT_MOVED",
    "BIT_RECEIPT",
    "BIT_OVERHEARD",
    "BIT_ACK",
    "BIT_KINDS",
    "EVENT_KINDS",
]

# -- event kinds (stable identifiers: the export schema keys on them) --
STEP = "step"                          #: one simulated instant
SCHEDULE = "schedule"                  #: the scheduler's activation decision
DISPLACEMENT = "displacement"          #: an out-of-band transient fault
MONITOR = "monitor"                    #: an invariant monitor fired
PHASE = "phase"                        #: a timed simulator phase (profiling)
BIT_ENCODE_STARTED = "bit-encode-started"
BIT_MOVED = "bit-moved"
BIT_RECEIPT = "bit-receipt"
BIT_OVERHEARD = "bit-overheard"
BIT_ACK = "bit-ack"

#: the bit-lifecycle kinds, in lifecycle order
BIT_KINDS = (BIT_ENCODE_STARTED, BIT_MOVED, BIT_RECEIPT, BIT_OVERHEARD, BIT_ACK)

#: every kind the v1 schema admits
EVENT_KINDS = frozenset(
    (STEP, SCHEDULE, DISPLACEMENT, MONITOR, PHASE) + BIT_KINDS
)


@dataclass(frozen=True)
class Event:
    """One observable fact about a run.

    Attributes:
        kind: one of the module's kind constants.
        time: the instant the event belongs to (-1 for events outside
            any instant, e.g. end-of-run monitor verdicts).
        attrs: flat JSON-able payload; keys depend on the kind (see
            :mod:`repro.obs.export` for the schema).
    """

    kind: str
    time: int
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """The export form: ``kind``/``t`` plus the flat attributes."""
        record: Dict[str, object] = {"kind": self.kind, "t": self.time}
        for key, value in self.attrs.items():
            if key in ("kind", "t"):
                raise TraceFormatError(
                    f"event attribute {key!r} collides with an envelope field"
                )
            record[key] = value
        return record

    @classmethod
    def from_json(cls, record: Mapping[str, object]) -> "Event":
        """Rebuild an event from its export form.

        Raises:
            TraceFormatError: when the record is not a valid v1 event.
        """
        if not isinstance(record, Mapping):
            raise TraceFormatError(f"event record is not an object: {record!r}")
        kind = record.get("kind")
        if kind not in EVENT_KINDS:
            raise TraceFormatError(f"unknown event kind {kind!r}")
        time = record.get("t")
        if not isinstance(time, int) or isinstance(time, bool):
            raise TraceFormatError(f"event of kind {kind!r} has no instant: {record!r}")
        attrs = {k: v for k, v in record.items() if k not in ("kind", "t")}
        return cls(kind=str(kind), time=time, attrs=attrs)

    def get(self, key: str, default: Optional[object] = None) -> object:
        """Attribute lookup with a default (sugar for report code)."""
        return self.attrs.get(key, default)
