"""ASCII views over a recorded run — what ``python -m repro.obs`` prints.

Four views, composable into one report:

* :func:`render_timeline` — the activation timeline: one row per
  robot, one column per instant (``#`` active, ``.`` idle, ``D`` the
  instant a displacement fault hit the robot).
* :func:`render_gantt` — the per-flow bit-transmission Gantt: one row
  per transmitted bit, from encode-start (``E``) through the encoding
  movement (``m``) to receipt (``R``), with the ack tick (``a``).
* :func:`render_metrics` — the metrics registry tables.
* :func:`render_profile` — the wall-time-per-simulator-phase profile
  of an instrumented run.

Everything is plain monospaced text, deterministic for a given run
file, and bounded in width (wide runs are downsampled column-wise, and
say so — no silent truncation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.events import BIT_ACK, BIT_MOVED, DISPLACEMENT, MONITOR, STEP
from repro.obs.export import ObsRun
from repro.obs.spans import bit_spans, phase_totals

__all__ = [
    "render_timeline",
    "render_gantt",
    "render_metrics",
    "render_profile",
    "render_report",
    "timeline_to_json",
    "gantt_to_json",
    "metrics_to_json",
]

_DEFAULT_WIDTH = 72


def _axis(t_max: int, width: int) -> List[int]:
    """The column instants, strided down until they fit in ``width``."""
    stride = 1
    while (t_max + stride) // stride > width:
        stride *= 2
    return list(range(0, t_max + 1, stride))


def render_timeline(run: ObsRun, width: Optional[int] = None) -> str:
    """The activation timeline (see module docstring)."""
    width = width or _DEFAULT_WIDTH
    steps = run.of_kind(STEP)
    if not steps:
        return "activation timeline: (no steps recorded)"
    t_max = steps[-1].time
    active_at: Dict[int, set] = {
        s.time: set(s.get("active", ()))  # type: ignore[arg-type]
        for s in steps
    }
    displaced_at: Dict[int, set] = {}
    for event in run.of_kind(DISPLACEMENT):
        displaced_at.setdefault(event.time, set()).add(int(event.get("robot", -1)))
    columns = _axis(t_max, width)
    stride = columns[1] - columns[0] if len(columns) > 1 else 1
    count = run.count or 1 + max(
        (max(a) for a in active_at.values() if a), default=0
    )
    lines = [
        "activation timeline "
        f"(t=0..{t_max}"
        + (f", every {stride}th instant" if stride > 1 else "")
        + "; '#' active, '.' idle, 'D' displaced)"
    ]
    tick_line = "      " + "".join(
        "|" if (t // stride) % 10 == 0 else " " for t in columns
    )
    lines.append(tick_line)
    for robot in range(count):
        cells = []
        for t in columns:
            if robot in displaced_at.get(t, ()):
                cells.append("D")
            elif robot in active_at.get(t, ()):
                cells.append("#")
            elif t in active_at:
                cells.append(".")
            else:
                cells.append(" ")
        lines.append(f"  r{robot:<3d} " + "".join(cells))
    lines.append(
        "      t=0"
        + " " * max(0, len(columns) - 8)
        + f"t={columns[-1]}"
    )
    return "\n".join(lines)


def render_gantt(run: ObsRun, width: Optional[int] = None) -> str:
    """The per-robot bit-transmission Gantt view."""
    width = width or _DEFAULT_WIDTH
    spans = bit_spans(run.events)
    if not spans:
        return "bit lifecycle: (no bit traffic recorded)"
    steps = run.of_kind(STEP)
    t_max = steps[-1].time if steps else int(
        max((s.end or s.start) for s in spans)
    )
    columns = _axis(t_max, width)
    stride = columns[1] - columns[0] if len(columns) > 1 else 1

    # Index the point events so the bars carry their milestones.
    moved: Dict[Tuple[int, int], List[int]] = {}
    acks: Dict[Tuple[int, int, int], int] = {}
    for event in run.events:
        if event.kind == BIT_MOVED:
            flow = (int(event.get("src", -1)), int(event.get("dst", -1)))
            moved.setdefault(flow, []).append(event.time)
        elif event.kind == BIT_ACK:
            key = (
                int(event.get("src", -1)),
                int(event.get("dst", -1)),
                int(event.get("seq", -1)),
            )
            acks[key] = event.time

    lines = [
        "bit lifecycle (E encode-started, m encoding move, R receipt, "
        "a ack; '-' in flight)"
    ]
    for span in spans:
        src = int(span.attrs["src"])
        dst = int(span.attrs["dst"])
        seq = int(span.attrs["seq"])
        start = int(span.start)
        end = None if span.end is None else int(span.end)
        ack_t = acks.get((src, dst, seq))
        cells = []
        for t in columns:
            hi = t + stride - 1  # the instants this column covers
            if end is not None and t <= end <= hi:
                cells.append("R")
            elif t <= start <= hi:
                cells.append("E")
            elif ack_t is not None and t <= ack_t <= hi:
                cells.append("a")
            elif any(
                t <= mt <= hi and start <= mt <= (end if end is not None else t_max)
                for mt in moved.get((src, dst), ())
            ):
                cells.append("m")
            elif start < t and (end is None or t < end):
                cells.append("-")
            else:
                cells.append(" ")
        status = "" if span.attrs.get("delivered") else "  (never delivered)"
        label = f"  r{src}->r{dst} bit{seq}={span.attrs.get('bit')}"
        lines.append(f"{label:<20s}" + "".join(cells) + status)
    monitor_events = run.of_kind(MONITOR)
    if monitor_events:
        lines.append("")
        lines.append("monitor firings:")
        for event in monitor_events:
            when = f"t={event.time}" if event.time >= 0 else "end"
            lines.append(
                f"  [{event.get('invariant')} @ {when}] {event.get('message')}"
            )
    return "\n".join(lines)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_metrics(run: ObsRun) -> str:
    """The metrics registry tables."""
    if not run.metrics:
        return "metrics: (none recorded)"
    lines = ["metrics:"]
    name_width = max(len(str(entry.get("name", ""))) for entry in run.metrics)
    for entry in run.metrics:
        name = str(entry.get("name", "?"))
        labels = entry.get("labels") or {}
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        kind = entry.get("type")
        if kind == "histogram":
            count = entry.get("count", 0)
            total = entry.get("sum", 0.0)
            mean = (total / count) if count else 0.0  # type: ignore[operator]
            value = (
                f"count={count} sum={_format_value(total)} "
                f"mean={_format_value(mean)}"
            )
        else:
            value = _format_value(entry.get("value", 0))
        lines.append(f"  {name:<{name_width}s} {label_text:<28s} {value}")
    return "\n".join(lines)


def render_profile(run: ObsRun) -> str:
    """Wall time per simulator phase, from the injected clock."""
    totals = phase_totals(run.events)
    if not totals:
        return "hot-path profile: (run was not recorded with phase timing)"
    grand = sum(total for _, total in totals.values()) or 1.0
    lines = ["hot-path profile (wall time per simulator phase):"]
    order = ("schedule", "compute", "move", "record")
    names = [n for n in order if n in totals] + sorted(
        n for n in totals if n not in order
    )
    for name in names:
        count, total = totals[name]
        share = total / grand
        mean = total / count if count else 0.0
        bar = "#" * int(round(share * 30))
        lines.append(
            f"  {name:<10s} {total:>12.6f}s  {share:>6.1%}  "
            f"mean {mean:.3e}s  {bar}"
        )
    lines.append(f"  {'total':<10s} {grand:>12.6f}s")
    return "\n".join(lines)


def timeline_to_json(run: ObsRun) -> Dict[str, object]:
    """The activation timeline as a JSON-ready dict (``--format json``).

    One entry per recorded instant with the active set, plus the
    displacement faults — the same facts the ASCII view draws, with no
    column downsampling.
    """
    steps = run.of_kind(STEP)
    return {
        "view": "timeline",
        "robots": run.count,
        "instants": [
            {"t": s.time, "active": sorted(s.get("active", ()))}  # type: ignore[arg-type]
            for s in steps
        ],
        "displacements": [
            {"t": e.time, "robot": int(e.get("robot", -1))}
            for e in run.of_kind(DISPLACEMENT)
        ],
    }


def gantt_to_json(run: ObsRun) -> Dict[str, object]:
    """The bit-lifecycle view as a JSON-ready dict (``--format json``)."""
    moved: Dict[Tuple[int, int], List[int]] = {}
    acks: Dict[Tuple[int, int, int], int] = {}
    for event in run.events:
        if event.kind == BIT_MOVED:
            flow = (int(event.get("src", -1)), int(event.get("dst", -1)))
            moved.setdefault(flow, []).append(event.time)
        elif event.kind == BIT_ACK:
            key = (
                int(event.get("src", -1)),
                int(event.get("dst", -1)),
                int(event.get("seq", -1)),
            )
            acks[key] = event.time
    bits: List[Dict[str, object]] = []
    for span in bit_spans(run.events):
        src = int(span.attrs["src"])
        dst = int(span.attrs["dst"])
        seq = int(span.attrs["seq"])
        start = int(span.start)
        end = None if span.end is None else int(span.end)
        bits.append(
            {
                "src": src,
                "dst": dst,
                "seq": seq,
                "bit": span.attrs.get("bit"),
                "start": start,
                "end": end,
                "delivered": bool(span.attrs.get("delivered")),
                "moves": [
                    t
                    for t in moved.get((src, dst), ())
                    if start <= t and (end is None or t <= end)
                ],
                "ack": acks.get((src, dst, seq)),
            }
        )
    return {
        "view": "gantt",
        "bits": bits,
        "monitors": [
            {
                "t": e.time,
                "invariant": e.get("invariant"),
                "message": e.get("message"),
            }
            for e in run.of_kind(MONITOR)
        ],
    }


def metrics_to_json(run: ObsRun) -> Dict[str, object]:
    """The metrics registry snapshot as a JSON-ready dict."""
    return {"view": "metrics", "metrics": [dict(m) for m in run.metrics]}


def _render_header(run: ObsRun) -> str:
    meta = dict(run.meta)
    meta.pop("initial", None)
    pairs = " ".join(f"{k}={meta[k]}" for k in sorted(meta))
    return f"obs run: {pairs}\n  events={len(run.events)} instants={run.total_instants}"


def render_report(run: ObsRun, width: Optional[int] = None) -> str:
    """All views, in reading order."""
    sections = [
        _render_header(run),
        render_timeline(run, width=width),
        render_gantt(run, width=width),
        render_metrics(run),
        render_profile(run),
    ]
    return "\n\n".join(sections) + "\n"
