"""The serving-tier observability plane: request tracing + exposition.

Post-mortem traces (:mod:`repro.obs.export`) and the causal DAG
(:mod:`repro.obs.causal`) answer "what happened inside the swarm?";
this module answers the operator's question — *what is the service
doing to my request, right now?* — with four pieces:

* :class:`RequestTrace` / :class:`RequestSpan` — one trace per client
  request, carrying a trace id, the op/app/session it belongs to, and
  named spans (``queue-wait``, ``restore``, ``dispatch``,
  ``execute``) whose durations telescope to the request's
  client-observed latency, the same attribution discipline
  :mod:`repro.obs.causal` enforces for bit flights.  A trace carries
  its session id, so it joins the causal DAG of a recorded session
  (``ObsRecorder(meta={"session": sid})``) on that key.
* :class:`TraceRing` — a bounded ring of completed traces (drop-oldest
  with a drop counter, the :class:`~repro.obs.stream.StreamingSink`
  discipline): the post-mortem buffer ``telemetry`` serves.
* :class:`WindowAggregator` — rolling nearest-rank p50/p90/p99 per
  ``op x app`` (and per span name), the live twin of
  :class:`~repro.obs.stream.FlowLatencyTracker`.
* :class:`RequestTracer` — the facade the serving layer drives:
  ``start`` / ``finish`` feed the ring, the windows, the
  :class:`~repro.obs.slo.SLOTracker` and the metrics registry
  (``serve_requests_total{op,app,outcome}``,
  ``serve_request_latency_s{op,app}``,
  ``serve_span_seconds{span}``).

Plus the exposition surface: :func:`to_prometheus` renders any
:class:`~repro.obs.registry.MetricsRegistry` in Prometheus text
format (validated by :func:`validate_exposition` — the CI scrape
gate), and :func:`render_top` draws one frame of the
``python -m repro.obs top`` terminal dashboard from a ``telemetry``
reply.

The whole plane honours the obs layer's zero-dispatch contract:
constructing a :class:`~repro.serve.manager.SessionManager` without a
tracer leaves every hook ``None`` and :func:`dispatch_count` frozen —
enforced by ``tests/serve/test_tracing.py``.
"""

from __future__ import annotations

import itertools
import time as _time
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOTracker, default_serve_slos
from repro.obs.stream import _percentile

__all__ = [
    "RequestSpan",
    "RequestTrace",
    "RequestTracer",
    "TraceRing",
    "WindowAggregator",
    "dispatch_count",
    "render_top",
    "to_prometheus",
    "validate_exposition",
]

#: request-latency histogram buckets (seconds) — the manager's
#: step-latency ladder, reused so the two stay comparable.
REQUEST_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: process-wide count of request-tracer dispatches; stays frozen while
#: no tracer is wired in (the zero-overhead-when-disabled witness,
#: mirroring :func:`repro.obs.recorder.dispatch_count`).
_dispatches = 0


def dispatch_count() -> int:
    """How many tracer dispatches happened in this process so far."""
    return _dispatches


def _bump() -> None:
    global _dispatches
    _dispatches += 1


# ----------------------------------------------------------------------
# Traces and spans
# ----------------------------------------------------------------------

class RequestSpan:
    """One named, timed leg of a request (durations, not wall clocks)."""

    __slots__ = ("name", "start", "end")

    def __init__(self, name: str, start: float, end: float) -> None:
        self.name = name
        self.start = start
        self.end = end

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_json(self) -> Dict[str, object]:
        """The JSON form of this span (for the telemetry payload)."""
        return {"span": self.name, "start": self.start, "end": self.end,
                "seconds": self.seconds}

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"RequestSpan({self.name!r}, {self.seconds:.6f}s)"


class RequestTrace:
    """One client request, from admission to future resolution.

    Spans are *attribution*, not literal intervals: their durations
    are chosen to telescope, so ``sum(span.seconds)`` accounts for the
    trace's end-to-end latency the way the causal DAG's edge
    categories account for a bit flight's.
    """

    __slots__ = ("trace_id", "op", "app", "sid", "started", "ended",
                 "error", "spans")

    def __init__(
        self,
        trace_id: str,
        op: str,
        app: Optional[str] = None,
        sid: Optional[str] = None,
        started: Optional[float] = None,
    ) -> None:
        self.trace_id = trace_id
        self.op = op
        self.app = app
        self.sid = sid
        self.started = _time.perf_counter() if started is None else started
        self.ended: Optional[float] = None
        self.error: Optional[str] = None
        self.spans: List[RequestSpan] = []

    def add_span(self, name: str, start: float, end: float) -> None:
        """Record one attributed leg (clamped to non-negative)."""
        self.spans.append(RequestSpan(name, start, max(start, end)))

    @property
    def seconds(self) -> float:
        """End-to-end latency (0.0 while still open)."""
        if self.ended is None:
            return 0.0
        return self.ended - self.started

    def span_seconds(self) -> Dict[str, float]:
        """Total attributed seconds per span name."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0.0) + span.seconds
        return out

    def coverage(self) -> float:
        """Fraction of end-to-end latency the spans account for."""
        total = self.seconds
        if total <= 0.0:
            return 1.0 if not self.spans else 0.0
        return sum(span.seconds for span in self.spans) / total

    def to_json(self) -> Dict[str, object]:
        """The JSON form of this trace (id, spans, latency, error)."""
        doc: Dict[str, object] = {
            "trace": self.trace_id,
            "op": self.op,
            "app": self.app,
            "sid": self.sid,
            "seconds": self.seconds,
            "spans": [span.to_json() for span in self.spans],
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc


class TraceRing:
    """A bounded drop-oldest ring of completed request traces."""

    def __init__(self, maxlen: int = 2048) -> None:
        if maxlen <= 0:
            raise ObservabilityError("trace ring capacity must be positive")
        self._maxlen = maxlen
        self._ring: Deque[RequestTrace] = deque(maxlen=maxlen)
        self._dropped = 0
        self._added = 0

    def add(self, trace: RequestTrace) -> None:
        """Retain one completed trace (dropping the oldest when full)."""
        if len(self._ring) == self._maxlen:
            self._dropped += 1
        self._ring.append(trace)
        self._added += 1

    def find(self, trace_id: str) -> Optional[RequestTrace]:
        """The newest retained trace with this id, or None."""
        for trace in reversed(self._ring):
            if trace.trace_id == trace_id:
                return trace
        return None

    def traces(self) -> List[RequestTrace]:
        """Every retained trace, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def added(self) -> int:
        return self._added

    def __len__(self) -> int:
        return len(self._ring)


# ----------------------------------------------------------------------
# Rolling windows
# ----------------------------------------------------------------------

class WindowAggregator:
    """Rolling per-key latency percentiles + error counts.

    Keys are ``(op, app)`` pairs (the request windows) or bare span
    names (the span windows) — anything hashable and sortable works.
    """

    def __init__(self, window: int = 512) -> None:
        if window <= 0:
            raise ObservabilityError("aggregator window must be positive")
        self._window = window
        self._latencies: Dict[Tuple[str, str], Deque[float]] = {}
        self._count: Dict[Tuple[str, str], int] = {}
        self._errors: Dict[Tuple[str, str], int] = {}

    def observe(self, op: str, app: str, seconds: float,
                error: bool = False) -> None:
        """Fold one observation into its key's rolling window."""
        key = (op, app)
        window = self._latencies.get(key)
        if window is None:
            window = self._latencies[key] = deque(maxlen=self._window)
        window.append(seconds)
        self._count[key] = self._count.get(key, 0) + 1
        if error:
            self._errors[key] = self._errors.get(key, 0) + 1

    def percentile(self, op: str, app: str, q: float) -> float:
        """Nearest-rank percentile of one key's window (0.0 if empty)."""
        return _percentile(sorted(self._latencies.get((op, app), ())), q)

    def snapshot(self) -> List[Dict[str, object]]:
        """One row per key: counts plus rolling p50/p90/p99 (seconds)."""
        rows: List[Dict[str, object]] = []
        for key in sorted(self._latencies):
            sample = sorted(self._latencies[key])
            rows.append(
                {
                    "op": key[0],
                    "app": key[1],
                    "count": self._count.get(key, 0),
                    "errors": self._errors.get(key, 0),
                    "window": len(sample),
                    "p50": _percentile(sample, 50),
                    "p90": _percentile(sample, 90),
                    "p99": _percentile(sample, 99),
                }
            )
        return rows


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------

class RequestTracer:
    """The serving layer's request-scoped tracing facade.

    One per service process, wired into the
    :class:`~repro.serve.manager.SessionManager` (``tracer=`` knob).
    Everything it owns is bounded: the trace ring drops oldest, the
    windows roll, the SLO verdict deques roll — a tracer can run for
    months without growing.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        ring_size: int = 2048,
        window: int = 512,
        slos=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ring = TraceRing(ring_size)
        self.requests = WindowAggregator(window)
        self.spans = WindowAggregator(window)
        self.slo = SLOTracker(default_serve_slos() if slos is None else slos)
        self._ids = itertools.count(1)

    def next_id(self) -> str:
        """A fresh service-generated trace id."""
        return f"r{next(self._ids):08d}"

    def start(
        self,
        op: str,
        app: Optional[str] = None,
        sid: Optional[str] = None,
        trace_id: Optional[str] = None,
        started: Optional[float] = None,
    ) -> RequestTrace:
        """Open a trace; the caller keeps it and hands it to finish."""
        _bump()
        return RequestTrace(
            trace_id if trace_id else self.next_id(),
            op, app=app, sid=sid, started=started,
        )

    def finish(
        self,
        trace: RequestTrace,
        error: Optional[str] = None,
        ended: Optional[float] = None,
    ) -> RequestTrace:
        """Close a trace: ring it, window it, judge it, count it."""
        _bump()
        trace.ended = _time.perf_counter() if ended is None else ended
        trace.error = error
        app = trace.app or "?"
        seconds = trace.seconds
        self.ring.add(trace)
        self.requests.observe(trace.op, app, seconds, error=error is not None)
        for span in trace.spans:
            self.spans.observe(span.name, "*", span.seconds)
        self.slo.observe(trace.op, seconds, error=error is not None)
        outcome = "error" if error is not None else "ok"
        self.registry.counter(
            "serve_requests_total", op=trace.op, app=app, outcome=outcome
        ).inc()
        self.registry.histogram(
            "serve_request_latency_s",
            buckets=REQUEST_LATENCY_BOUNDS,
            op=trace.op,
            app=app,
        ).observe(seconds)
        for name, total in trace.span_seconds().items():
            self.registry.histogram(
                "serve_span_seconds",
                buckets=REQUEST_LATENCY_BOUNDS,
                span=name,
            ).observe(total)
        return trace

    def span_percentile(self, span: str, q: float) -> float:
        """Rolling percentile of one span's window (seconds)."""
        return self.spans.percentile(span, "*", q)

    def telemetry(self) -> Dict[str, object]:
        """The live dashboard payload (the ``telemetry`` wire op)."""
        return {
            "requests": self.requests.snapshot(),
            "spans": self.spans.snapshot(),
            "slos": self.slo.status(),
            "ring": {
                "retained": len(self.ring),
                "added": self.ring.added,
                "dropped": self.ring.dropped,
            },
        }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_TYPE_NAMES = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sanitize(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        ok = ch.isascii() and (ch.isalpha() or ch == "_" or ch == ":"
                               or (ch.isdigit() and i > 0))
        out.append(ch if ok else "_")
    return "".join(out)


def _labels_text(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(str(k))}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items(), key=lambda kv: str(kv[0]))
    )
    return "{" + inner + "}"


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in Prometheus text exposition format (0.0.4).

    Counters and gauges become one sample each; histograms become the
    conventional cumulative ``_bucket{le=...}`` ladder (closed by
    ``le="+Inf"``) plus ``_sum`` and ``_count``.  Series sharing a
    name share one ``# TYPE`` header; output order is the registry's
    deterministic order, so two identical runs scrape identically.
    """
    lines: List[str] = []
    typed: set = set()
    for name, label_key, instrument in registry.series():
        metric = _sanitize(name)
        labels = dict(label_key)
        snap = instrument.snapshot()
        kind = str(snap["type"])
        if metric not in typed:
            lines.append(f"# TYPE {metric} {_TYPE_NAMES[kind]}")
            typed.add(metric)
        if kind == "histogram":
            cumulative = 0
            for bound, count in zip(snap["bounds"], snap["counts"]):  # type: ignore[arg-type]
                cumulative += count
                bucket_labels = dict(labels, le=repr(float(bound)))
                lines.append(
                    f"{metric}_bucket{_labels_text(bucket_labels)} {cumulative}"
                )
            cumulative += int(snap["overflow"])  # type: ignore[arg-type]
            lines.append(
                f"{metric}_bucket{_labels_text(dict(labels, le='+Inf'))} "
                f"{cumulative}"
            )
            lines.append(
                f"{metric}_sum{_labels_text(labels)} "
                f"{_format_value(snap['sum'])}"
            )
            lines.append(
                f"{metric}_count{_labels_text(labels)} {snap['count']}"
            )
        else:
            lines.append(
                f"{metric}{_labels_text(labels)} {_format_value(snap['value'])}"
            )
    return "\n".join(lines) + "\n"


#: one sample line: name, optional {labels}, value, optional timestamp.
import re as _re

_SAMPLE_RE = _re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[^{}]*\})?"                       # optional label set
    r" -?(\d+(\.\d+)?([eE][+-]?\d+)?|Inf|NaN)"  # value
    r"( -?\d+)?$"                          # optional timestamp
)
_LABEL_RE = _re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$'
)


def validate_exposition(text: str) -> int:
    """Check Prometheus text-format validity; returns the sample count.

    Raises:
        ObservabilityError: naming the first offending line — the CI
            scrape step fails loudly instead of uploading garbage.
    """
    samples = 0
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] not in ("TYPE", "HELP"):
                raise ObservabilityError(
                    f"exposition line {lineno}: unknown comment form {line!r}"
                )
            if len(parts) >= 2 and parts[1] == "TYPE" and (
                len(parts) != 4
                or parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped")
            ):
                raise ObservabilityError(
                    f"exposition line {lineno}: malformed TYPE {line!r}"
                )
            continue
        if not _SAMPLE_RE.match(line):
            raise ObservabilityError(
                f"exposition line {lineno}: malformed sample {line!r}"
            )
        brace = line.find("{")
        if brace >= 0:
            inner = line[brace + 1 : line.rindex("}")]
            for pair in filter(None, inner.split(",")):
                if not _LABEL_RE.match(pair):
                    raise ObservabilityError(
                        f"exposition line {lineno}: malformed label {pair!r}"
                    )
        samples += 1
    if samples == 0:
        raise ObservabilityError("exposition carries no samples")
    return samples


# ----------------------------------------------------------------------
# The top dashboard
# ----------------------------------------------------------------------

def _ms(value: object) -> str:
    return f"{1e3 * float(value):8.2f}"  # type: ignore[arg-type]


def render_top(frame: Mapping[str, object]) -> str:
    """One frame of ``python -m repro.obs top`` from a telemetry reply.

    ``frame`` is the ``telemetry`` wire payload: service ``stats``,
    the ``health`` verdict, rolling request/span windows and SLO rows.
    """
    stats = frame.get("stats") or {}
    health = frame.get("health") or {}
    lines: List[str] = []
    status = str(health.get("status", "?"))
    lines.append(
        f"service: {status.upper():<9s} "
        f"open {stats.get('open', 0)} (live {stats.get('live', 0)}, "
        f"evicted {stats.get('evicted', 0)})  "
        f"queue {stats.get('queue_depth', 0)}  "
        f"workers {stats.get('workers', '?')}  "
        f"accepting {stats.get('accepting', '?')}"
    )
    lines.append(
        f"totals:  created {stats.get('created', 0)}  "
        f"closed {stats.get('closed', 0)}  "
        f"instants {stats.get('instants', 0)}  "
        f"evictions {stats.get('evictions', 0)}  "
        f"restores {stats.get('restores', 0)}  "
        f"rejections {stats.get('rejections', 0)}"
    )
    requests = frame.get("requests") or []
    lines.append("")
    if requests:
        lines.append(
            f"{'op':<12s} {'app':<16s} {'count':>7s} {'err':>5s} "
            f"{'p50 ms':>8s} {'p90 ms':>8s} {'p99 ms':>8s}"
        )
        for row in requests:
            lines.append(
                f"{str(row['op']):<12s} {str(row['app']):<16s} "
                f"{row['count']:>7} {row['errors']:>5} "
                f"{_ms(row['p50'])} {_ms(row['p90'])} {_ms(row['p99'])}"
            )
    else:
        lines.append("(no requests in the window yet)")
    spans = frame.get("spans") or []
    if spans:
        lines.append("")
        lines.append(
            f"{'span':<12s} {'count':>7s} "
            f"{'p50 ms':>8s} {'p90 ms':>8s} {'p99 ms':>8s}"
        )
        for row in spans:
            lines.append(
                f"{str(row['op']):<12s} {row['count']:>7} "
                f"{_ms(row['p50'])} {_ms(row['p90'])} {_ms(row['p99'])}"
            )
    slos = frame.get("slos") or []
    if slos:
        lines.append("")
        lines.append(
            f"{'slo':<16s} {'objective':<28s} {'attained':>9s} "
            f"{'burn':>7s}  verdict"
        )
        for row in slos:
            lines.append(
                f"{str(row['name']):<16s} {str(row['objective']):<28s} "
                f"{100.0 * float(row['attainment']):>8.3f}% "  # type: ignore[arg-type]
                f"{float(row['burn']):>7.2f}  "  # type: ignore[arg-type]
                f"{'ok' if row['ok'] else 'VIOLATED'}"
            )
    ring = frame.get("ring") or {}
    if ring:
        lines.append("")
        lines.append(
            f"trace ring: {ring.get('retained', 0)} retained / "
            f"{ring.get('added', 0)} added / {ring.get('dropped', 0)} dropped"
        )
    return "\n".join(lines)
