"""Unified observability: structured run tracing, metrics, inspection.

The paper's robots communicate by *motion* — the only evidence that a
bit was spoken or heard is buried in a geometric trace.  This
subpackage makes runs observable without changing them:

* :mod:`repro.obs.events` / :mod:`repro.obs.spans` — the structured
  event and span model (activation cycles, scheduler decisions,
  displacement faults, the bit lifecycle, monitor firings).
* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  deterministic-bucket histograms, labeled per protocol x scheduler;
  supersedes the ad-hoc :class:`~repro.perf.counters.PerfStats` block
  (which now delegates here).
* :class:`~repro.obs.recorder.ObsRecorder` — attaches to a simulator
  and records everything; **bit-transparent** (an instrumented run
  produces a byte-identical trace) and **zero-overhead when
  disabled** (no recorder => no dispatches; see
  :func:`~repro.obs.recorder.dispatch_count`).
* :mod:`repro.obs.export` — versioned JSONL export (``repro-obs-v1``)
  with exact round-trips and line-numbered
  :class:`~repro.errors.TraceFormatError` diagnostics.
* ``python -m repro.obs`` — render the activation timeline, the bit
  Gantt, metrics tables and the hot-path profile from an exported run
  (see :mod:`repro.obs.report`).
* :mod:`repro.obs.history` — the *longitudinal* layer: an append-only
  git-commit-stamped metrics history (``BENCH_history.jsonl``),
  ingest adapters for bench results / campaign stores / registry
  snapshots, and median+MAD regression gating
  (``python -m repro.obs regress``).
* :mod:`repro.obs.profiler` — deterministic self/total-time hotspot
  tables over phase and bit spans (``python -m repro.obs hotspots``).
* :mod:`repro.obs.diff` — run and history-entry diffing with
  first-divergence localization (``python -m repro.obs diff``).
* :mod:`repro.obs.causal` — happens-before DAGs from vector-clock
  stamped traces, per-flow critical paths with 100% latency
  attribution, and causality invariants (``python -m repro.obs
  causal``; swept by ``python -m repro.verify --causal-oracle``).
* :mod:`repro.obs.stream` — the live tap: a bounded
  :class:`~repro.obs.stream.StreamingSink` the recorder tees into and
  rolling per-flow latency percentiles (``python -m repro.obs watch``).
* :mod:`repro.obs.live` / :mod:`repro.obs.slo` — the serving-tier
  plane: request-scoped traces with telescoping spans
  (:class:`~repro.obs.live.RequestTracer`), Prometheus text
  exposition, SLO attainment/error-budget burn, and the
  ``python -m repro.obs top`` terminal dashboard.
"""

from repro.obs.causal import (
    CausalTrace,
    build_causal,
    causal_to_dot,
    causal_to_json,
    check_invariants,
    critical_path,
    load_causal,
    render_causal,
    render_critical_path,
)
from repro.obs.diff import RunDiff, diff_history_entries, diff_runs, render_diff
from repro.obs.events import Event
from repro.obs.export import ObsRun, dump_run, load_run, run_from_jsonl, run_to_jsonl
from repro.obs.live import (
    RequestTrace,
    RequestTracer,
    TraceRing,
    WindowAggregator,
    render_top,
    to_prometheus,
    validate_exposition,
)
from repro.obs.recorder import ObsRecorder, dispatch_count
from repro.obs.slo import SLO, SLOTracker, default_serve_slos, slos_from_json
from repro.obs.stream import FlowLatencyTracker, StreamingSink, watch_file
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.history import (
    HistoryEntry,
    HistoryStore,
    RegressPolicy,
    detect,
    entry_from_campaign,
    entry_from_registry,
    entry_from_results,
    render_regressions,
)
from repro.obs.profiler import flow_hotspots, phase_hotspots, render_hotspots
from repro.obs.report import render_report
from repro.obs.spans import Span, activation_spans, bit_spans, phase_totals

__all__ = [
    "Event",
    "Span",
    "ObsRun",
    "ObsRecorder",
    "HistoryEntry",
    "HistoryStore",
    "RegressPolicy",
    "RunDiff",
    "detect",
    "diff_runs",
    "diff_history_entries",
    "entry_from_campaign",
    "entry_from_registry",
    "entry_from_results",
    "render_regressions",
    "render_hotspots",
    "render_diff",
    "phase_hotspots",
    "flow_hotspots",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "default_registry",
    "set_default_registry",
    "dispatch_count",
    "activation_spans",
    "bit_spans",
    "phase_totals",
    "run_to_jsonl",
    "run_from_jsonl",
    "dump_run",
    "load_run",
    "render_report",
    "CausalTrace",
    "build_causal",
    "load_causal",
    "critical_path",
    "check_invariants",
    "render_causal",
    "render_critical_path",
    "causal_to_json",
    "causal_to_dot",
    "StreamingSink",
    "FlowLatencyTracker",
    "watch_file",
    "RequestTrace",
    "RequestTracer",
    "TraceRing",
    "WindowAggregator",
    "render_top",
    "to_prometheus",
    "validate_exposition",
    "SLO",
    "SLOTracker",
    "default_serve_slos",
    "slos_from_json",
]
