"""Deterministic JSONL export of recorded runs — schema ``repro-obs-v1``.

Layout (one JSON object per line, like ``analysis/trace_io``):

* **header** — ``{"format": "repro-obs-v1", "version": 1,
  "meta": {...}}``.  ``meta`` always carries ``count`` and
  ``initial`` (the initial configuration); the recorder adds protocol,
  scheduler, seed and anything else the run builder knew.
* **event lines** — one per recorded :class:`~repro.obs.events.Event`,
  in recording order: ``{"kind": ..., "t": ..., ...attrs}``.
* **metrics trailer** — ``{"kind": "metrics", "series": [...]}`` with
  the registry's deterministic :meth:`~repro.obs.registry.
  MetricsRegistry.collect` snapshot.

The export round-trips exactly (events and metrics compare equal after
``load``), and the parser raises :class:`~repro.errors.
TraceFormatError` with a line number on truncated or garbled input —
never a bare ``KeyError``.  Paths ending in ``.gz`` are transparently
gzip-compressed on write and decompressed on read (deterministically:
the gzip mtime field is pinned, so identical runs stay byte-identical
even compressed).
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import TraceFormatError
from repro.obs.events import Event

__all__ = ["FORMAT", "VERSION", "ObsRun", "run_to_jsonl", "run_from_jsonl",
           "dump_run", "load_run"]

FORMAT = "repro-obs-v1"
VERSION = 1


@dataclass
class ObsRun:
    """One recorded run: metadata, the event stream, and metrics.

    This is the loaded/loadable form — what the recorder freezes into,
    what the export writes, and what the CLI report renders.
    """

    meta: Dict[str, object] = field(default_factory=dict)
    events: List[Event] = field(default_factory=list)
    metrics: List[Dict[str, object]] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of robots (0 when the recording never saw the swarm)."""
        value = self.meta.get("count", 0)
        return int(value) if isinstance(value, (int, float)) else 0

    def of_kind(self, kind: str) -> List[Event]:
        """Every event of one kind, in recording order."""
        return [e for e in self.events if e.kind == kind]

    @property
    def steps(self) -> List[Event]:
        """The per-instant step events."""
        return self.of_kind("step")

    @property
    def total_instants(self) -> int:
        """Instants covered by the recording."""
        steps = self.steps
        return (steps[-1].time + 1) if steps else 0


def run_to_jsonl(run: ObsRun) -> str:
    """Serialise a run to JSON-lines text (deterministic)."""
    lines: List[str] = [
        json.dumps(
            {"format": FORMAT, "version": VERSION, "meta": run.meta},
            sort_keys=True,
        )
    ]
    for event in run.events:
        lines.append(json.dumps(event.to_json(), sort_keys=True))
    lines.append(json.dumps({"kind": "metrics", "series": run.metrics}, sort_keys=True))
    return "\n".join(lines) + "\n"


def _records(text: str) -> Iterator[tuple]:
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {lineno}: not valid JSON ({exc.msg} at column {exc.colno})"
            ) from exc
        if not isinstance(record, dict):
            raise TraceFormatError(
                f"line {lineno}: expected a JSON object, got {type(record).__name__}"
            )
        yield lineno, record


def run_from_jsonl(text: str) -> ObsRun:
    """Parse a run back from JSON-lines text.

    Raises:
        TraceFormatError: on an empty document, wrong/unknown header,
            garbled line, or missing metrics trailer fields — always
            with the offending line number.
    """
    records = _records(text)
    try:
        lineno, header = next(records)
    except StopIteration:
        raise TraceFormatError("empty obs document") from None
    if header.get("format") != FORMAT:
        raise TraceFormatError(
            f"line {lineno}: unknown obs format {header.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    version = header.get("version")
    if version != VERSION:
        raise TraceFormatError(
            f"line {lineno}: unsupported schema version {version!r} "
            f"(this reader handles {VERSION})"
        )
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise TraceFormatError(f"line {lineno}: header has no meta object")

    run = ObsRun(meta=meta)
    saw_metrics = False
    for lineno, record in records:
        if saw_metrics:
            raise TraceFormatError(
                f"line {lineno}: content after the metrics trailer"
            )
        if record.get("kind") == "metrics":
            series = record.get("series")
            if not isinstance(series, list):
                raise TraceFormatError(
                    f"line {lineno}: metrics trailer has no series list"
                )
            run.metrics = series
            saw_metrics = True
            continue
        try:
            run.events.append(Event.from_json(record))
        except TraceFormatError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    return run


def _open_text(path: str, mode: str):
    """Open ``path`` for text I/O, transparently gzipped for ``*.gz``.

    Large-n traces are multi-megabyte; a ``run.jsonl.gz`` path makes
    both :func:`dump_run` and :func:`load_run` stream through gzip.
    Writes pin ``mtime=0`` and omit the embedded-filename header field
    so identical runs produce byte-identical compressed files whatever
    they are called (the same determinism contract the plain JSONL
    export keeps).
    """
    if str(path).endswith(".gz"):
        binary_mode = "wb" if "w" in mode else "rb"
        raw = open(path, binary_mode)
        binary = gzip.GzipFile(
            filename="", fileobj=raw, mode=binary_mode, mtime=0
        )
        # GzipFile only closes files it opened itself; handing the raw
        # file over via myfileobj makes close() cascade to it.
        binary.myfileobj = raw
        return io.TextIOWrapper(binary, encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def dump_run(run: ObsRun, path: str) -> str:
    """Write a run to ``path`` (gzipped when it ends in ``.gz``);
    returns the path."""
    with _open_text(path, "w") as handle:
        handle.write(run_to_jsonl(run))
    return path


def load_run(path: str) -> ObsRun:
    """Read a run previously written by :func:`dump_run` (plain or
    gzipped, decided by the ``.gz`` suffix)."""
    with _open_text(path, "r") as handle:
        return run_from_jsonl(handle.read())


def build_report(run: ObsRun, width: Optional[int] = None) -> str:
    """The full ASCII run report (all CLI views concatenated)."""
    from repro.obs.report import render_report

    return render_report(run, width=width)
