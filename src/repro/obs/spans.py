"""Spans: intervals derived from the event stream.

The SSM model packs a robot's whole Look–Compute–Move cycle into one
computation step ``(t_j, t_{j+1})``; the simulator executes the three
sub-phases atomically.  For *rendering and reasoning* it is still
useful to see them as intervals — RoboCast-style per-cycle analysis —
so this module derives them deterministically from the recorded
events:

* **activation spans**: every active robot at instant ``t`` gets
  Look / Compute / Move spans at the conventional thirds of
  ``(t, t+1)``.  The thirds are a rendering convention, not a timing
  claim: the model is atomic within the instant.
* **bit spans**: one span per transmitted bit, from its
  ``bit-encode-started`` event to its ``bit-receipt`` (open-ended when
  the bit was never delivered) — the rows of the CLI's Gantt view.
* **phase spans**: the wall-clock profile of the simulator loop, built
  from the ``phase`` timing events of an instrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.events import (
    BIT_ENCODE_STARTED,
    BIT_RECEIPT,
    PHASE,
    STEP,
    Event,
)

__all__ = ["Span", "activation_spans", "bit_spans", "phase_totals"]

#: Look/Compute/Move rendering convention: thirds of the instant.
_CYCLE = (("look", 0.0, 1.0 / 3.0), ("compute", 1.0 / 3.0, 2.0 / 3.0),
          ("move", 2.0 / 3.0, 1.0))


@dataclass(frozen=True)
class Span:
    """A named interval, optionally owned by one robot.

    ``start``/``end`` are in *instant* units for model-time spans
    (activation cycles, bit lifetimes) and in *seconds* for wall-clock
    phase spans.  ``end`` is None for spans that never closed (a bit
    that was lost, a phase cut off mid-run).
    """

    name: str
    start: float
    end: Optional[float]
    robot: Optional[int] = None
    attrs: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Span length, or None while open."""
        return None if self.end is None else self.end - self.start


def activation_spans(events: Iterable[Event]) -> List[Span]:
    """Look/Compute/Move spans for every activation in the stream."""
    spans: List[Span] = []
    for event in events:
        if event.kind != STEP:
            continue
        active = event.get("active", ())
        for robot in active:  # type: ignore[union-attr]
            for name, lo, hi in _CYCLE:
                spans.append(
                    Span(
                        name=name,
                        start=event.time + lo,
                        end=event.time + hi,
                        robot=int(robot),
                    )
                )
    return spans


def bit_spans(events: Iterable[Event]) -> List[Span]:
    """One span per transmitted bit: encode-started -> receipt.

    Bits are paired per flow in queue order — the k-th encode start of
    flow ``(src, dst)`` matches the k-th receipt of that flow, which is
    exactly the in-order delivery the receipt invariant guarantees.
    A bit with no matching receipt yields an open span (lost, or the
    recording stopped first).
    """
    starts: Dict[Tuple[int, int], List[Event]] = {}
    receipts: Dict[Tuple[int, int], List[Event]] = {}
    for event in events:
        if event.kind == BIT_ENCODE_STARTED:
            flow = (int(event.get("src", -1)), int(event.get("dst", -1)))
            starts.setdefault(flow, []).append(event)
        elif event.kind == BIT_RECEIPT:
            flow = (int(event.get("src", -1)), int(event.get("dst", -1)))
            receipts.setdefault(flow, []).append(event)
    spans: List[Span] = []
    for flow in sorted(starts):
        src, dst = flow
        got = receipts.get(flow, [])
        for k, start in enumerate(starts[flow]):
            receipt = got[k] if k < len(got) else None
            spans.append(
                Span(
                    name=f"{src}->{dst}#{k}",
                    start=float(start.time),
                    end=None if receipt is None else float(receipt.time),
                    robot=src,
                    attrs={
                        "src": src,
                        "dst": dst,
                        "seq": k,
                        "bit": start.get("bit"),
                        "delivered": receipt is not None,
                    },
                )
            )
    return spans


def phase_totals(events: Iterable[Event]) -> Dict[str, Tuple[int, float]]:
    """Wall-clock profile: phase name -> (samples, total seconds).

    Built from the ``phase`` events an instrumented run records via
    the recorder's injected monotonic clock; deterministic whenever
    the clock is.
    """
    totals: Dict[str, Tuple[int, float]] = {}
    for event in events:
        if event.kind != PHASE:
            continue
        name = str(event.get("phase", "?"))
        seconds = float(event.get("seconds", 0.0))  # type: ignore[arg-type]
        count, total = totals.get(name, (0, 0.0))
        totals[name] = (count + 1, total + seconds)
    return totals
