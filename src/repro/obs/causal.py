"""Happens-before graphs and bit-latency attribution.

The paper's protocols speak a bit over several instants of motion, so
the real cost of a message is a *causal chain*:

    encode-started → moved (excursion legs) → [look] → receipt → ack

This module reconstructs that chain per bit-flow from a recorded trace
(an in-memory :class:`~repro.obs.export.ObsRun` or a ``repro-obs-v1``
JSONL file, including ``.jsonl.gz``), computes per-flow end-to-end
latency, and extracts the critical path with per-edge attribution:

* ``sender-compute``    — encode decision to the first encoding move
* ``scheduler-gap``     — between consecutive excursion legs
* ``observation-delay`` — last relevant move to the decoding Look
* ``decode``            — the decoding Look to the receipt
* ``ack-wait``          — receipt to the implicit acknowledgement
* ``sender-turnaround`` — ack consumed to the next bit's encode
* ``overhear``          — move to a third party's decode

Edge durations are wall-clock differences between endpoint stamps, so
every complete path telescopes: the critical path's edge durations sum
*exactly* to the flow's end-to-end latency — attribution is always
100% of the measured cost, never an estimate.

Vector-clock stamps (``vc`` attrs written by
:class:`~repro.obs.recorder.ObsRecorder`) let :func:`check_invariants`
verify the happens-before relation independently of wall time:
receipts happen after encodes, acks after receipts, the DAG is acyclic
and every overheard bit is downstream of an encoding move.  Traces
recorded before stamping existed still build (the vc checks are simply
skipped), so old archives remain analyzable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .events import (
    BIT_ACK,
    BIT_ENCODE_STARTED,
    BIT_KINDS,
    BIT_MOVED,
    BIT_OVERHEARD,
    BIT_RECEIPT,
    DISPLACEMENT,
    Event,
)
from .export import ObsRun, load_run

__all__ = [
    "CausalNode",
    "CausalEdge",
    "BitFlight",
    "FlowGraph",
    "CausalTrace",
    "CriticalPath",
    "vc_leq",
    "vc_less",
    "build_causal",
    "load_causal",
    "critical_path",
    "is_artifact_flow",
    "check_invariants",
    "render_causal",
    "render_critical_path",
    "causal_to_json",
    "causal_to_dot",
]

LOOK = "look"  # synthetic node kind for the decoding Look


def _vc_map(vc: Sequence[Sequence[int]]) -> Dict[int, int]:
    return {int(r): int(c) for r, c in vc}


def vc_leq(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> bool:
    """``a`` happens-before-or-equals ``b`` (componentwise ≤)."""
    bm = _vc_map(b)
    return all(bm.get(int(r), 0) >= int(c) for r, c in a)


def vc_less(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> bool:
    """``a`` strictly happens-before ``b``."""
    return vc_leq(a, b) and not vc_leq(b, a)


@dataclass(frozen=True)
class CausalNode:
    """One stamped point on a bit's causal chain."""

    id: str
    kind: str
    flow: Tuple[int, int]
    seq: int
    robot: Optional[int]
    time: int
    wall: float
    vc: Optional[List[List[int]]]
    order: float

    def to_json(self) -> Dict[str, object]:
        """Serialize for the ``repro-causal-v1`` document (sparse keys)."""
        record: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "flow": list(self.flow),
            "seq": self.seq,
            "t": self.time,
            "wall": self.wall,
        }
        if self.robot is not None:
            record["robot"] = self.robot
        if self.vc is not None:
            record["vc"] = self.vc
        return record


@dataclass(frozen=True)
class CausalEdge:
    """A happens-before edge with its latency attribution category."""

    src: str
    dst: str
    category: str
    duration: float

    def to_json(self) -> Dict[str, object]:
        """Serialize for the ``repro-causal-v1`` document."""
        return {
            "src": self.src,
            "dst": self.dst,
            "category": self.category,
            "duration": self.duration,
        }


@dataclass
class BitFlight:
    """One bit's life on a flow: encode → moves → receipt → ack."""

    seq: int
    encode: Optional[CausalNode] = None
    moves: List[CausalNode] = field(default_factory=list)
    look: Optional[CausalNode] = None
    receipt: Optional[CausalNode] = None
    ack: Optional[CausalNode] = None
    overheard: List[CausalNode] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return self.receipt is not None

    @property
    def latency(self) -> Optional[float]:
        """Wall-clock encode→ack (falls back to receipt, then last move)."""
        if self.encode is None:
            return None
        end = self.ack or self.receipt or (self.moves[-1] if self.moves else None)
        if end is None:
            return None
        return end.wall - self.encode.wall


@dataclass
class FlowGraph:
    """The happens-before DAG of one sender→addressee flow."""

    flow: Tuple[int, int]
    flights: List[BitFlight] = field(default_factory=list)
    nodes: Dict[str, CausalNode] = field(default_factory=dict)
    edges: List[CausalEdge] = field(default_factory=list)
    anomalies: List[str] = field(default_factory=list)

    @property
    def bits_sent(self) -> int:
        return sum(1 for f in self.flights if f.encode is not None)

    @property
    def bits_delivered(self) -> int:
        return sum(1 for f in self.flights if f.delivered)

    @property
    def bits_acked(self) -> int:
        return sum(1 for f in self.flights if f.ack is not None)


@dataclass
class CausalTrace:
    """Every flow's causal graph plus the run metadata it came from."""

    meta: Dict[str, object] = field(default_factory=dict)
    flows: Dict[Tuple[int, int], FlowGraph] = field(default_factory=dict)
    #: recorded displacement faults, as ``(time, robot)`` pairs — the
    #: evidence that lets :func:`is_artifact_flow` excuse phantom bits
    #: a teleportation masqueraded into existence.
    displacements: List[Tuple[int, int]] = field(default_factory=list)

    def flow(self, src: int, dst: int) -> Optional[FlowGraph]:
        """The ``src -> dst`` flow graph, or ``None`` if never seen."""
        return self.flows.get((src, dst))


@dataclass
class CriticalPath:
    """The dominant chain through one flow's DAG."""

    flow: Tuple[int, int]
    nodes: List[CausalNode]
    edges: List[CausalEdge]

    @property
    def total(self) -> float:
        return sum(edge.duration for edge in self.edges)

    def attribution(self) -> Dict[str, float]:
        """Per-category duration totals along the path."""
        totals: Dict[str, float] = {}
        for edge in self.edges:
            totals[edge.category] = totals.get(edge.category, 0.0) + edge.duration
        return totals


class _FlowBuilder:
    def __init__(self, flow: Tuple[int, int]) -> None:
        self.graph = FlowGraph(flow=flow)
        self._receipt_seq = 0
        self._overheard_seq: Dict[int, int] = {}

    def _flight(self, seq: int) -> BitFlight:
        flights = self.graph.flights
        while len(flights) <= seq:
            flights.append(BitFlight(seq=len(flights)))
        return flights[seq]

    def _latest_seq(self) -> int:
        return max(len(self.graph.flights) - 1, 0)

    def add(self, event: Event, order: int) -> None:
        flow = self.graph.flow
        kind = event.kind
        wall = event.get("wall")
        wall = float(wall) if isinstance(wall, (int, float)) else float(event.time)
        vc = event.get("vc")
        vc = [list(map(int, pair)) for pair in vc] if isinstance(vc, list) else None
        robot = event.get("by")
        robot = int(robot) if isinstance(robot, int) else None
        seq = event.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            seq = int(seq)
        elif kind == BIT_OVERHEARD:
            seq = self._latest_seq()
        elif kind == BIT_RECEIPT:
            seq = self._receipt_seq
        else:
            seq = self._latest_seq()
        flight = self._flight(seq)

        suffix = ""
        if kind == BIT_MOVED:
            suffix = f"#{len(flight.moves)}"
        elif kind == BIT_OVERHEARD:
            suffix = f"@{robot}" if robot is not None else f"#{len(flight.overheard)}"
        node = CausalNode(
            id=f"{kind}:{flow[0]}->{flow[1]}:{seq}{suffix}",
            kind=kind,
            flow=flow,
            seq=seq,
            robot=robot,
            time=event.time,
            wall=wall,
            vc=vc,
            order=float(order),
        )
        self.graph.nodes[node.id] = node

        if kind == BIT_ENCODE_STARTED:
            if flight.encode is not None:
                self.graph.anomalies.append(
                    f"duplicate encode for bit {seq} on flow {flow[0]}->{flow[1]}"
                )
            flight.encode = node
        elif kind == BIT_MOVED:
            flight.moves.append(node)
        elif kind == BIT_RECEIPT:
            self._receipt_seq = seq + 1
            if flight.receipt is not None:
                self.graph.anomalies.append(
                    f"duplicate receipt for bit {seq} on flow {flow[0]}->{flow[1]}"
                )
            flight.receipt = node
            look_wall = event.get("look_wall")
            if isinstance(look_wall, (int, float)):
                look = CausalNode(
                    id=f"{LOOK}:{flow[0]}->{flow[1]}:{seq}",
                    kind=LOOK,
                    flow=flow,
                    seq=seq,
                    robot=robot,
                    time=event.time,
                    wall=float(look_wall),
                    vc=None,
                    order=float(order) - 0.5,
                )
                flight.look = look
        elif kind == BIT_ACK:
            if flight.ack is not None:
                self.graph.anomalies.append(
                    f"duplicate ack for bit {seq} on flow {flow[0]}->{flow[1]}"
                )
            flight.ack = node
        elif kind == BIT_OVERHEARD:
            flight.overheard.append(node)

    def _move_before(self, flight: BitFlight, node: CausalNode) -> Optional[CausalNode]:
        parent = None
        for move in flight.moves:
            if move.order < node.order and move.wall <= node.wall:
                parent = move
        return parent

    def _edge(self, src: CausalNode, dst: CausalNode, category: str) -> None:
        self.graph.edges.append(
            CausalEdge(src=src.id, dst=dst.id, category=category,
                       duration=dst.wall - src.wall)
        )

    def finish(self) -> FlowGraph:
        flow = self.graph.flow
        for flight in self.graph.flights:
            if flight.encode is not None and flight.moves:
                self._edge(flight.encode, flight.moves[0], "sender-compute")
            for prev, move in zip(flight.moves, flight.moves[1:]):
                self._edge(prev, move, "scheduler-gap")
            receipt = flight.receipt
            if receipt is not None:
                parent = self._move_before(flight, receipt)
                if parent is None:
                    self.graph.anomalies.append(
                        f"receipt of bit {flight.seq} on flow "
                        f"{flow[0]}->{flow[1]} has no preceding move"
                    )
                else:
                    look = flight.look
                    if look is not None and parent.wall <= look.wall <= receipt.wall:
                        self.graph.nodes[look.id] = look
                        self._edge(parent, look, "observation-delay")
                        self._edge(look, receipt, "decode")
                    else:
                        flight.look = None
                        self._edge(parent, receipt, "observation-delay")
            ack = flight.ack
            if ack is not None:
                if receipt is None:
                    self.graph.anomalies.append(
                        f"ack of bit {flight.seq} on flow "
                        f"{flow[0]}->{flow[1]} without a receipt"
                    )
                elif receipt.order < ack.order:
                    self._edge(receipt, ack, "ack-wait")
                else:
                    self.graph.anomalies.append(
                        f"ack of bit {flight.seq} on flow "
                        f"{flow[0]}->{flow[1]} precedes its receipt"
                    )
            for overheard in flight.overheard:
                parent = self._move_before(flight, overheard)
                if parent is None:
                    self.graph.anomalies.append(
                        f"overheard bit {flight.seq} on flow "
                        f"{flow[0]}->{flow[1]} by robot {overheard.robot} "
                        f"has no preceding move"
                    )
                else:
                    self._edge(parent, overheard, "overhear")
        for prev, flight in zip(self.graph.flights, self.graph.flights[1:]):
            if prev.ack is not None and flight.encode is not None:
                self._edge(prev.ack, flight.encode, "sender-turnaround")
        return self.graph


def build_causal(run: ObsRun) -> CausalTrace:
    """Reconstruct the happens-before DAG of every bit-flow in a run."""
    builders: Dict[Tuple[int, int], _FlowBuilder] = {}
    trace = CausalTrace(meta=dict(run.meta))
    for order, event in enumerate(run.events):
        if event.kind == DISPLACEMENT:
            robot = event.get("robot")
            if isinstance(robot, int):
                trace.displacements.append((event.time, int(robot)))
            continue
        if event.kind not in BIT_KINDS:
            continue
        src = event.get("src")
        dst = event.get("dst")
        if not isinstance(src, int) or not isinstance(dst, int):
            continue
        flow = (int(src), int(dst))
        builder = builders.get(flow)
        if builder is None:
            builder = builders[flow] = _FlowBuilder(flow)
        builder.add(event, order)
    for flow in sorted(builders):
        trace.flows[flow] = builders[flow].finish()
    return trace


def load_causal(path: str) -> CausalTrace:
    """Build the causal trace straight from a ``repro-obs-v1`` file.

    Accepts plain ``.jsonl`` and gzip-compressed ``.jsonl.gz`` traces;
    malformed lines raise :class:`~repro.errors.TraceFormatError` with
    the 1-based line number, exactly like :func:`repro.obs.load_run`.
    """
    return build_causal(load_run(path))


def critical_path(graph: FlowGraph) -> CriticalPath:
    """The longest-duration chain through one flow's DAG.

    Because every edge's duration is the wall difference of its
    endpoints, the returned path's edge durations telescope to exactly
    ``last.wall - first.wall`` — the flow's end-to-end latency over
    the spanned flights.
    """
    outgoing: Dict[str, List[CausalEdge]] = {}
    for edge in graph.edges:
        outgoing.setdefault(edge.src, []).append(edge)
    nodes = sorted(graph.nodes.values(), key=lambda n: n.order, reverse=True)
    # best[node] = (duration, hops, edges-from-node)
    best: Dict[str, Tuple[float, int, List[CausalEdge]]] = {}
    for node in nodes:
        choice: Tuple[float, int, List[CausalEdge]] = (0.0, 0, [])
        for edge in outgoing.get(node.id, ()):  # dst always later in order
            tail = best.get(edge.dst, (0.0, 0, []))
            candidate = (edge.duration + tail[0], 1 + tail[1], [edge] + tail[2])
            if (candidate[0], candidate[1]) > (choice[0], choice[1]):
                choice = candidate
        best[node.id] = choice
    start_id = None
    start_best: Tuple[float, int] = (float("-inf"), 0)
    for node in reversed(nodes):  # forward order: earliest start wins ties
        duration, hops, _ = best[node.id]
        if (duration, hops) > start_best:
            start_best = (duration, hops)
            start_id = node.id
    if start_id is None:
        return CriticalPath(flow=graph.flow, nodes=[], edges=[])
    edges = best[start_id][2]
    path_nodes = [graph.nodes[start_id]]
    for edge in edges:
        path_nodes.append(graph.nodes[edge.dst])
    return CriticalPath(flow=graph.flow, nodes=path_nodes, edges=edges)


def is_artifact_flow(trace: CausalTrace, flow: Tuple[int, int]) -> bool:
    """Is this flow a decode artifact rather than a real channel?

    An adversary can conjure "bits" no sender ever encoded: a
    transient displacement teleports a robot and observers decode the
    jump as an encoding movement, and a crashed robot under the
    flocking drift overlay stops drifting and reads as speaking — to
    itself (``src == dst``; the protocol stack never builds a
    self-flow).  Such flows carry receipts and overhears but no encode
    and no move; their causal chain starts at the *fault*, not at an
    encode, so :func:`check_invariants` reports them as artifacts
    rather than phantom-bit causality violations.

    A flow qualifies only when it has **no** encode and no move on any
    flight (one real encode makes every phantom check apply again),
    and either is a self-flow or its nominal sender suffered a
    recorded displacement no later than the flow's first decode.
    """
    graph = trace.flows.get(flow)
    if graph is None:
        return False
    if any(f.encode is not None or f.moves for f in graph.flights):
        return False
    if not any(f.receipt is not None or f.overheard for f in graph.flights):
        return False
    if flow[0] == flow[1]:
        return True
    decode_times = [
        node.time
        for f in graph.flights
        for node in ([f.receipt] if f.receipt else []) + f.overheard
    ]
    first_decode = min(decode_times)
    return any(
        robot == flow[0] and time <= first_decode
        for time, robot in trace.displacements
    )


def check_invariants(trace: CausalTrace, strict_acks: bool = False) -> List[str]:
    """Causality violations across every flow (empty list = clean).

    Checks, per flow:

    * every receipt happens-after its bit's encode (event order, and
      strict vector-clock precedence when both events carry stamps);
    * the happens-before DAG has no cycles;
    * every overheard decode is downstream of an encoding move;
    * when ``strict_acks`` (flows whose protocol gates the sender's
      advance on the implicit acknowledgement of Lemma 4.1 — not the
      log-K digit-block rhythm — and whose scenario guarantees
      receipts), every ack happens-after its bit's receipt.

    Anomalies found while building the graph (orphan receipts, acks
    without receipts, …) are folded in; ack-ordering anomalies only
    count under ``strict_acks`` because a rhythm-based sender may
    legitimately advance before the addressee commits the decode.
    Flows that :func:`is_artifact_flow` recognizes as fault-conjured
    (displacement phantoms, crash self-flows) are skipped entirely —
    their chain starts at the adversary's injection, not an encode.
    """
    violations: List[str] = []
    for flow, graph in trace.flows.items():
        if is_artifact_flow(trace, flow):
            continue
        label = f"{flow[0]}->{flow[1]}"
        for anomaly in graph.anomalies:
            if ("ack" in anomaly) and not strict_acks:
                continue
            violations.append(f"flow {label}: {anomaly}")
        for flight in graph.flights:
            encode, receipt, ack = flight.encode, flight.receipt, flight.ack
            if receipt is not None:
                if encode is None:
                    violations.append(
                        f"flow {label}: bit {flight.seq} received but never encoded"
                    )
                else:
                    if receipt.order <= encode.order:
                        violations.append(
                            f"flow {label}: receipt of bit {flight.seq} "
                            f"does not happen-after its encode"
                        )
                    if (encode.vc is not None and receipt.vc is not None
                            and not vc_less(encode.vc, receipt.vc)):
                        violations.append(
                            f"flow {label}: receipt of bit {flight.seq} is not "
                            f"vector-clock after its encode"
                        )
            if strict_acks and ack is not None and receipt is not None:
                if ack.order <= receipt.order:
                    violations.append(
                        f"flow {label}: ack of bit {flight.seq} "
                        f"does not happen-after its receipt"
                    )
                if (receipt.vc is not None and ack.vc is not None
                        and not vc_leq(receipt.vc, ack.vc)):
                    violations.append(
                        f"flow {label}: ack of bit {flight.seq} is not "
                        f"vector-clock after its receipt"
                    )
            for overheard in flight.overheard:
                if not flight.moves:
                    continue  # already reported as an anomaly
                stamped = [m for m in flight.moves if m.vc is not None]
                if (overheard.vc is not None and stamped
                        and not any(vc_less(m.vc, overheard.vc) for m in stamped)):
                    violations.append(
                        f"flow {label}: overheard bit {flight.seq} by robot "
                        f"{overheard.robot} is not downstream of any move"
                    )
        cycle = _find_cycle(graph)
        if cycle is not None:
            violations.append(f"flow {label}: causal cycle through {cycle}")
    return violations


def _find_cycle(graph: FlowGraph) -> Optional[str]:
    outgoing: Dict[str, List[str]] = {}
    for edge in graph.edges:
        outgoing.setdefault(edge.src, []).append(edge.dst)
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    for root in graph.nodes:
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[str, Iterable[str]]] = [(root, iter(outgoing.get(root, ())))]
        color[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = color.get(child, WHITE)
                if state == GREY:
                    return child
                if state == WHITE:
                    color[child] = GREY
                    stack.append((child, iter(outgoing.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


# ---------------------------------------------------------------------------
# Renderers


def render_causal(trace: CausalTrace) -> str:
    """Human summary: per-flow flights, delivery, and latency."""
    lines = ["causal trace"]
    meta_bits = [
        f"{key}={trace.meta[key]}"
        for key in ("protocol", "scheduler", "engine", "seed")
        if key in trace.meta
    ]
    if meta_bits:
        lines.append("  " + "  ".join(meta_bits))
    if not trace.flows:
        lines.append("  (no bit-lifecycle events in trace)")
        return "\n".join(lines)
    for flow, graph in trace.flows.items():
        artifact = " (decode artifact)" if is_artifact_flow(trace, flow) else ""
        lines.append(
            f"flow {flow[0]}->{flow[1]}: {graph.bits_sent} sent, "
            f"{graph.bits_delivered} delivered, {graph.bits_acked} acked, "
            f"{len(graph.nodes)} nodes, {len(graph.edges)} edges{artifact}"
        )
        for flight in graph.flights:
            latency = flight.latency
            latency_text = f"{latency:g}" if latency is not None else "?"
            lines.append(
                f"  bit {flight.seq}: {len(flight.moves)} legs, "
                f"{'delivered' if flight.delivered else 'in flight'}"
                f"{', acked' if flight.ack else ''}, latency {latency_text}"
            )
        for anomaly in graph.anomalies:
            lines.append(f"  ! {anomaly}")
    return "\n".join(lines)


def render_critical_path(trace: CausalTrace) -> str:
    """Per-flow critical path with 100% latency attribution."""
    lines: List[str] = []
    if not trace.flows:
        return "(no bit-lifecycle events in trace)"
    for flow, graph in trace.flows.items():
        path = critical_path(graph)
        lines.append(
            f"flow {flow[0]}->{flow[1]} critical path: "
            f"{len(path.edges)} edges, total latency {path.total:g}"
        )
        for edge in path.edges:
            lines.append(
                f"  {edge.src} -> {edge.dst}  [{edge.category}]  +{edge.duration:g}"
            )
        totals = path.attribution()
        if path.total > 0:
            lines.append("  attribution:")
            for category in sorted(totals, key=lambda c: -totals[c]):
                share = 100.0 * totals[category] / path.total
                lines.append(
                    f"    {category:<18} {totals[category]:>8g}  {share:5.1f}%"
                )
            lines.append(
                f"    {'total':<18} {path.total:>8g}  100.0%"
            )
    return "\n".join(lines)


def causal_to_json(trace: CausalTrace) -> Dict[str, object]:
    """Machine form: flows with nodes, edges, flights, critical paths."""
    flows = []
    for flow, graph in trace.flows.items():
        path = critical_path(graph)
        flows.append(
            {
                "flow": list(flow),
                "artifact": is_artifact_flow(trace, flow),
                "bits_sent": graph.bits_sent,
                "bits_delivered": graph.bits_delivered,
                "bits_acked": graph.bits_acked,
                "nodes": [n.to_json() for n in sorted(
                    graph.nodes.values(), key=lambda n: n.order)],
                "edges": [e.to_json() for e in graph.edges],
                "flights": [
                    {
                        "seq": f.seq,
                        "legs": len(f.moves),
                        "delivered": f.delivered,
                        "acked": f.ack is not None,
                        "latency": f.latency,
                    }
                    for f in graph.flights
                ],
                "critical_path": {
                    "total": path.total,
                    "edges": [e.to_json() for e in path.edges],
                    "attribution": path.attribution(),
                },
                "anomalies": list(graph.anomalies),
            }
        )
    return {
        "format": "repro-causal-v1",
        "meta": dict(trace.meta),
        "displacements": [list(pair) for pair in trace.displacements],
        "flows": flows,
    }


def causal_to_dot(trace: CausalTrace) -> str:
    """Graphviz dot of every flow's happens-before DAG."""
    lines = ["digraph causal {", "  rankdir=LR;", "  node [shape=box];"]
    for index, (flow, graph) in enumerate(trace.flows.items()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="flow {flow[0]}->{flow[1]}";')
        for node in sorted(graph.nodes.values(), key=lambda n: n.order):
            label = f"{node.kind}\\nseq={node.seq} wall={node.wall:g}"
            lines.append(f'    "{node.id}" [label="{label}"];')
        for edge in graph.edges:
            lines.append(
                f'    "{edge.src}" -> "{edge.dst}" '
                f'[label="{edge.category} +{edge.duration:g}"];'
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
