"""Run diffing: what changed between two recorded runs.

``python -m repro.obs diff A B`` compares two ``repro-obs-v1`` traces
(or, with ``--history``, two history entries) along three axes:

* **event counts** — per-kind totals, the coarse shape of the run;
* **metrics** — every series present in either run, with the signed
  delta and a direction-of-goodness annotation (so a reader knows at
  a glance whether ``cached_s +0.2`` is bad);
* **first divergence** — the earliest event index at which the two
  streams disagree, reported with both events and the JSONL line
  number (header is line 1, so event ``i`` is line ``i + 2``) — the
  forensic entry point when two "identical" seeded runs are not.

Two traces of the same seeded run diff clean: zero deltas, no
divergence.  Everything here is a pure function of the inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.export import ObsRun
from repro.obs.history.regress import direction_of
from repro.obs.history.store import HistoryEntry
from repro.obs.history.ingest import metrics_from_snapshot

__all__ = [
    "MetricDelta",
    "Divergence",
    "RunDiff",
    "diff_runs",
    "diff_history_entries",
    "render_diff",
]


@dataclass(frozen=True)
class MetricDelta:
    """One metric that differs (or exists on only one side)."""

    name: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        """``b - a``, or None when one side is missing."""
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def direction(self) -> str:
        """Direction of goodness for this metric's name."""
        return direction_of(self.name)

    @property
    def verdict(self) -> str:
        """``better`` / ``worse`` / ``changed`` — reading the delta
        through the direction of goodness."""
        if self.delta is None:
            return "only in A" if self.b is None else "only in B"
        direction = self.direction
        if direction == "either" or self.delta == 0:
            return "changed"
        improved = (self.delta < 0) == (direction == "lower")
        return "better" if improved else "worse"


@dataclass(frozen=True)
class Divergence:
    """The first point at which two event streams disagree."""

    index: int
    event_a: Optional[Dict[str, object]]
    event_b: Optional[Dict[str, object]]

    @property
    def line(self) -> int:
        """The JSONL line number of the diverging event (header = 1)."""
        return self.index + 2

    @property
    def reason(self) -> str:
        """One-phrase cause: ended early, kind flip, or payload."""
        if self.event_a is None:
            return "run A ended here"
        if self.event_b is None:
            return "run B ended here"
        if self.event_a.get("kind") != self.event_b.get("kind"):
            return (
                f"kind {self.event_a.get('kind')!r} vs "
                f"{self.event_b.get('kind')!r}"
            )
        return "same kind, different payload"


@dataclass
class RunDiff:
    """Everything that differs between two runs."""

    meta_a: Dict[str, object] = field(default_factory=dict)
    meta_b: Dict[str, object] = field(default_factory=dict)
    event_counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    metric_deltas: List[MetricDelta] = field(default_factory=list)
    divergence: Optional[Divergence] = None
    events_total: Tuple[int, int] = (0, 0)

    @property
    def identical(self) -> bool:
        """No metric deltas, no event divergence, equal counts."""
        return (
            self.divergence is None
            and not self.metric_deltas
            and all(a == b for a, b in self.event_counts.values())
        )


def _metric_deltas(
    metrics_a: Dict[str, float], metrics_b: Dict[str, float]
) -> List[MetricDelta]:
    deltas: List[MetricDelta] = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        a = metrics_a.get(name)
        b = metrics_b.get(name)
        if a != b:
            deltas.append(MetricDelta(name=name, a=a, b=b))
    return deltas


def diff_runs(run_a: ObsRun, run_b: ObsRun) -> RunDiff:
    """Compare two loaded runs (see module docstring)."""
    counts: Dict[str, Tuple[int, int]] = {}
    kinds = sorted(
        {e.kind for e in run_a.events} | {e.kind for e in run_b.events}
    )
    for kind in kinds:
        counts[kind] = (
            sum(1 for e in run_a.events if e.kind == kind),
            sum(1 for e in run_b.events if e.kind == kind),
        )
    divergence: Optional[Divergence] = None
    for index in range(max(len(run_a.events), len(run_b.events))):
        a = run_a.events[index].to_json() if index < len(run_a.events) else None
        b = run_b.events[index].to_json() if index < len(run_b.events) else None
        if a != b:
            divergence = Divergence(index=index, event_a=a, event_b=b)
            break
    return RunDiff(
        meta_a=dict(run_a.meta),
        meta_b=dict(run_b.meta),
        event_counts=counts,
        metric_deltas=_metric_deltas(
            metrics_from_snapshot(run_a.metrics),
            metrics_from_snapshot(run_b.metrics),
        ),
        divergence=divergence,
        events_total=(len(run_a.events), len(run_b.events)),
    )


def diff_history_entries(a: HistoryEntry, b: HistoryEntry) -> RunDiff:
    """Compare two history entries (metrics only — no event streams)."""
    return RunDiff(
        meta_a={"seq": a.seq, "run_id": a.run_id, "git_commit": a.git_commit},
        meta_b={"seq": b.seq, "run_id": b.run_id, "git_commit": b.git_commit},
        metric_deltas=_metric_deltas(
            {k: float(v) for k, v in a.metrics.items()},
            {k: float(v) for k, v in b.metrics.items()},
        ),
    )


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6g}"


def render_diff(diff: RunDiff, label_a: str = "A", label_b: str = "B") -> str:
    """The ASCII diff report ``python -m repro.obs diff`` prints."""
    lines = [f"run diff: A={label_a}  B={label_b}"]
    meta_keys = sorted(
        k
        for k in set(diff.meta_a) | set(diff.meta_b)
        if k != "initial" and diff.meta_a.get(k) != diff.meta_b.get(k)
    )
    if meta_keys:
        lines.append("  meta:")
        for key in meta_keys:
            lines.append(
                f"    {key}: {diff.meta_a.get(key)!r} -> "
                f"{diff.meta_b.get(key)!r}"
            )
    if diff.identical:
        lines.append(
            f"  identical: {diff.events_total[0]} events, "
            f"zero metric deltas"
        )
        return "\n".join(lines)
    changed_counts = {
        kind: (a, b) for kind, (a, b) in diff.event_counts.items() if a != b
    }
    if changed_counts:
        lines.append("  event counts:")
        for kind in sorted(changed_counts):
            a, b = changed_counts[kind]
            lines.append(f"    {kind:<22s} {a:>8d} -> {b:<8d} ({b - a:+d})")
    if diff.metric_deltas:
        lines.append(f"  metric deltas ({len(diff.metric_deltas)}):")
        for delta in diff.metric_deltas:
            note = delta.verdict
            if delta.direction != "either" and delta.delta is not None:
                note += f", {delta.direction} is better"
            lines.append(
                f"    {delta.name}: {_fmt(delta.a)} -> {_fmt(delta.b)}"
                f"  [{note}]"
            )
    if diff.divergence is not None:
        d = diff.divergence
        lines.append(
            f"  first divergence: event #{d.index} (JSONL line {d.line}) "
            f"— {d.reason}"
        )
        lines.append(f"    A: {json.dumps(d.event_a, sort_keys=True)}")
        lines.append(f"    B: {json.dumps(d.event_b, sort_keys=True)}")
    return "\n".join(lines)
