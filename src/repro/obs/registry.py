"""The metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` holds every numeric series of a run (or of
the whole process, via :func:`default_registry`).  Series are keyed by
``(name, labels)`` so the same metric can be tracked per protocol, per
scheduler, per robot — the observability layer keys its series by
``protocol x scheduler``, mirroring the verification matrix.

Design constraints, in order:

* **Deterministic.**  Histogram bucket boundaries are fixed at
  creation (default: a decade ladder), ``collect()`` output is sorted,
  and nothing reads a clock — so two identical runs produce identical
  metric snapshots and the JSONL export stays diffable.
* **Cheap.**  An increment is one attribute add on a ``__slots__``
  instance; the hot perf counters (:class:`repro.perf.counters.
  PerfStats`) delegate here without measurable regression.
* **JSON-first.**  ``collect()`` returns plain dicts/lists ready for
  ``BENCH_results.json`` and the obs JSONL export.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]

#: label set in canonical form: sorted (key, value) pairs
LabelKey = Tuple[Tuple[str, str], ...]

#: the decade ladder used when a histogram declares no buckets —
#: spans sub-microsecond phase timings up to multi-second benchmarks.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, hits, firings)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; use a gauge for {amount!r}"
            )
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        """The JSON form of this series (for ``collect``)."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (epoch, swarm size, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        """Record the current value."""
        self.value = value

    def snapshot(self) -> Dict[str, object]:
        """The JSON form of this series (for ``collect``)."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution with deterministic, fixed bucket boundaries.

    Buckets are upper bounds (``value <= bound``); observations above
    the last bound land in the implicit overflow bucket.  Sum and count
    are tracked exactly, so means stay available even when the bucket
    resolution is coarse.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "count")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if not chosen:
            raise ObservabilityError("a histogram needs at least one bucket bound")
        if list(chosen) != sorted(chosen):
            raise ObservabilityError(f"bucket bounds must ascend, got {chosen!r}")
        self.bounds: Tuple[float, ...] = chosen
        self.counts: List[int] = [0] * len(chosen)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        slot = bisect.bisect_left(self.bounds, value)
        if slot < len(self.counts):
            self.counts[slot] += 1
        else:
            self.overflow += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        """The JSON form of this series (for ``collect``)."""
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "sum": self.total,
            "count": self.count,
        }


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of labeled series.

    The accessors are idempotent: asking twice for the same
    ``(name, labels)`` returns the same instrument, so call sites never
    need to coordinate creation.  Re-registering a name with a
    different instrument type is an error — that is always a bug, not
    a use case.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelKey], _Instrument] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter ``name`` for ``labels``, created on first use."""
        return self._get(name, labels, Counter, lambda: Counter())

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge ``name`` for ``labels``, created on first use."""
        return self._get(name, labels, Gauge, lambda: Gauge())

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram ``name`` for ``labels``, created on first use.

        ``buckets`` only matters at creation; later calls must either
        omit it or repeat the original bounds.
        """
        instrument = self._get(name, labels, Histogram, lambda: Histogram(buckets))
        if buckets is not None and tuple(buckets) != instrument.bounds:
            raise ObservabilityError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds!r}, asked for {tuple(buckets)!r}"
            )
        return instrument

    def _get(self, name, labels, kind, factory):
        key = (name, _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = factory()
        elif not isinstance(instrument, kind):
            raise ObservabilityError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def __len__(self) -> int:
        return len(self._series)

    def series(self) -> List[Tuple[str, LabelKey, _Instrument]]:
        """Every registered series, deterministically ordered."""
        return [
            (name, labels, instrument)
            for (name, labels), instrument in sorted(
                self._series.items(), key=lambda item: item[0]
            )
        ]

    def collect(self) -> List[Dict[str, object]]:
        """A JSON-ready, deterministically ordered snapshot."""
        out: List[Dict[str, object]] = []
        for name, labels, instrument in self.series():
            entry: Dict[str, object] = {"name": name}
            if labels:
                entry["labels"] = dict(labels)
            entry.update(instrument.snapshot())
            out.append(entry)
        return out

    def absorb(self, values: Dict[str, Union[int, float]], **labels: object) -> None:
        """Record a block of name->value pairs as gauges.

        Used to fold legacy counter blocks (``PerfStats.as_dict()``,
        the shared-memo stats) into the registry at export time.
        """
        for name, value in values.items():
            self.gauge(name, **labels).set(value)

    def reset(self) -> None:
        """Drop every series (fresh registry)."""
        self._series.clear()


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (e.g. for cross-run aggregation)."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous
