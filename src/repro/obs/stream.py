"""Live telemetry tap: a bounded sink and a rolling-latency watcher.

Post-mortem JSONL dumps answer "what happened?"; the serving layer
(ROADMAP item 3) needs "what is happening?".  This module provides the
substrate:

* :class:`StreamingSink` — a bounded, thread-safe queue the recorder
  tees every event into (``recorder.add_sink(sink)``).  When full it
  drops the oldest events and counts the drops, so a slow consumer can
  never stall or bloat the simulation.
* :class:`FlowLatencyTracker` — folds bit-lifecycle events into rolling
  per-flow latency windows and reports nearest-rank percentiles.
* :func:`watch_file` — tails a ``repro-obs-v1`` JSONL trace that a
  concurrent recording is appending to, printing a rolling per-flow
  latency table (the ``python -m repro.obs watch`` command).

Everything here is consumer-side: attaching a sink costs the recorder
one ``accept`` call per event it was already emitting, and nothing at
all when obs is disabled (no recorder, no sink).
"""

from __future__ import annotations

import json
import sys
import threading
import time as _time
from collections import deque
from typing import Deque, Dict, List, Optional, TextIO, Tuple

from .events import BIT_ACK, BIT_ENCODE_STARTED, BIT_RECEIPT, Event
from .export import _open_text

__all__ = ["StreamingSink", "FlowLatencyTracker", "watch_file"]


class StreamingSink:
    """A bounded drop-oldest event queue safe to drain from another thread.

    Pass a :class:`~repro.obs.registry.MetricsRegistry` to surface the
    drops as an ``obs_stream_dropped_events`` counter — a consumer
    falling behind then shows up on the metrics endpoint instead of
    only in this object's own ``dropped`` property.
    """

    def __init__(self, maxlen: int = 4096, registry=None) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self._maxlen = maxlen
        self._lock = threading.Lock()
        self._queue: Deque[Event] = deque()
        self._dropped = 0
        self._accepted = 0
        self._c_dropped = (
            registry.counter("obs_stream_dropped_events")
            if registry is not None
            else None
        )

    def accept(self, event: Event) -> None:
        """Called by the recorder for every emitted event."""
        with self._lock:
            if len(self._queue) >= self._maxlen:
                self._queue.popleft()
                self._dropped += 1
                if self._c_dropped is not None:
                    self._c_dropped.inc()
            self._queue.append(event)
            self._accepted += 1

    def drain(self) -> List[Event]:
        """Remove and return everything queued so far."""
        with self._lock:
            drained = list(self._queue)
            self._queue.clear()
        return drained

    @property
    def dropped(self) -> int:
        """Events discarded because the consumer fell behind."""
        with self._lock:
            return self._dropped

    @property
    def accepted(self) -> int:
        """Events ever offered to the sink (including later drops)."""
        with self._lock:
            return self._accepted

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_values) // 100)))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


class FlowLatencyTracker:
    """Rolling per-flow bit-latency percentiles from a live event feed."""

    def __init__(self, window: int = 256) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._window = window
        self._encode_time: Dict[Tuple[int, int, int], int] = {}
        self._sent: Dict[Tuple[int, int], int] = {}
        self._delivered: Dict[Tuple[int, int], int] = {}
        self._acked: Dict[Tuple[int, int], int] = {}
        self._latencies: Dict[Tuple[int, int], Deque[float]] = {}

    def consume(self, event: Event) -> None:
        """Fold one bit-lifecycle event into the rolling flow state."""
        kind = event.kind
        if kind not in (BIT_ENCODE_STARTED, BIT_RECEIPT, BIT_ACK):
            return
        src = event.get("src")
        dst = event.get("dst")
        if not isinstance(src, int) or not isinstance(dst, int):
            return
        flow = (int(src), int(dst))
        seq = event.get("seq")
        seq = int(seq) if isinstance(seq, int) and not isinstance(seq, bool) else -1
        if kind == BIT_ENCODE_STARTED:
            self._sent[flow] = self._sent.get(flow, 0) + 1
            self._encode_time[flow + (seq,)] = event.time
        elif kind == BIT_RECEIPT:
            self._delivered[flow] = self._delivered.get(flow, 0) + 1
        else:  # BIT_ACK — closes the bit's end-to-end leg
            self._acked[flow] = self._acked.get(flow, 0) + 1
            encode_time = self._encode_time.pop(flow + (seq,), None)
            if encode_time is None:
                return
            window = self._latencies.get(flow)
            if window is None:
                window = self._latencies[flow] = deque(maxlen=self._window)
            window.append(float(event.time - encode_time))

    def snapshot(self) -> List[Dict[str, object]]:
        """One row per flow: counters plus rolling p50/p90/p99."""
        rows: List[Dict[str, object]] = []
        for flow in sorted(set(self._sent) | set(self._latencies)):
            sample = sorted(self._latencies.get(flow, ()))
            rows.append(
                {
                    "flow": f"{flow[0]}->{flow[1]}",
                    "sent": self._sent.get(flow, 0),
                    "delivered": self._delivered.get(flow, 0),
                    "acked": self._acked.get(flow, 0),
                    "window": len(sample),
                    "p50": _percentile(sample, 50),
                    "p90": _percentile(sample, 90),
                    "p99": _percentile(sample, 99),
                }
            )
        return rows

    def render(self) -> str:
        """One ASCII table row per flow: sent/recv/acked + percentiles."""
        rows = self.snapshot()
        if not rows:
            return "(no bit-lifecycle events yet)"
        header = (
            f"{'flow':<10} {'sent':>6} {'recv':>6} {'acked':>6} "
            f"{'p50':>8} {'p90':>8} {'p99':>8}"
        )
        lines = [header]
        for row in rows:
            lines.append(
                f"{row['flow']:<10} {row['sent']:>6} {row['delivered']:>6} "
                f"{row['acked']:>6} {row['p50']:>8g} {row['p90']:>8g} "
                f"{row['p99']:>8g}"
            )
        return "\n".join(lines)


def _parse_line(line: str) -> Optional[Event]:
    """A trace line as an event, or None for headers/metrics/garbage."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None  # partial line from a concurrent writer
    if not isinstance(record, dict) or "kind" not in record:
        return None  # header or metrics record
    try:
        return Event.from_json(record)
    except Exception:
        return None
    # Unknown kinds (future schema) are skipped, never fatal: a live
    # tap must survive whatever the producer appends.


def watch_file(
    path: str,
    *,
    interval: float = 2.0,
    iterations: int = 0,
    window: int = 256,
    out: Optional[TextIO] = None,
    once: bool = False,
    sleep=_time.sleep,
) -> int:
    """Tail a ``repro-obs-v1`` trace, printing rolling flow latencies.

    ``iterations=0`` means run until interrupted.  ``once`` (or a
    ``.gz`` path, which cannot be tailed incrementally) loads the whole
    file, prints one frame, and returns.  Returns the number of events
    consumed.
    """
    stream = out if out is not None else sys.stdout
    tracker = FlowLatencyTracker(window=window)
    consumed = 0

    if once or path.endswith(".gz"):
        with _open_text(path, "r") as handle:
            for line in handle.read().split("\n"):
                event = _parse_line(line)
                if event is not None:
                    tracker.consume(event)
                    consumed += 1
        print(tracker.render(), file=stream)
        return consumed

    buf = ""
    frame = 0
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            buf += handle.read()
            lines = buf.split("\n")
            buf = lines.pop()  # keep the (possibly partial) tail
            for line in lines:
                event = _parse_line(line)
                if event is not None:
                    tracker.consume(event)
                    consumed += 1
            frame += 1
            print(f"-- watch frame {frame} ({consumed} events) --", file=stream)
            print(tracker.render(), file=stream)
            stream.flush()
            if iterations and frame >= iterations:
                break
            sleep(interval)
    return consumed
