"""Service-level objectives: declarative targets, attainment, burn.

An :class:`SLO` states what "good" means for one slice of serving
traffic — *latency* objectives ("99% of ``step`` requests finish
within 250 ms") and *availability* objectives ("99.9% of all requests
succeed").  An :class:`SLOTracker` folds per-request outcomes (op,
latency, error flag) into one rolling window per objective and
answers, at any instant:

* **attainment** — the fraction of windowed requests that were good;
* **error budget** — ``1 - target``, the fraction allowed to be bad;
* **burn** — ``bad_fraction / error_budget``: 1.0 means the budget is
  exactly spent, above 1.0 the objective is violated.

Everything is windowed (bounded deques), deterministic (no clock
reads — latencies arrive as measured values) and JSON-first, so the
serving bench can export attainment straight into
``BENCH_history.jsonl`` and the ``/healthz`` endpoint can gate on
:meth:`SLOTracker.all_ok`.

Objectives are declarative data: :func:`slos_from_json` /
:meth:`SLO.to_json` round-trip a config document, and
:func:`default_serve_slos` is the serving tier's stock pair.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "SLO",
    "SLOTracker",
    "default_serve_slos",
    "slos_from_json",
]


@dataclass(frozen=True)
class SLO:
    """One declarative objective over a slice of request traffic.

    Attributes:
        name: unique objective name (metric label, report row).
        op: which request op the objective watches; ``"*"`` means all.
        target: required good fraction in ``(0, 1)`` — e.g. ``0.99``.
        latency_s: when set, a request is *good* iff it succeeded and
            finished within this many seconds (a latency objective);
            when ``None``, good simply means "no error" (an
            availability objective).
        window: rolling window size, in requests.
    """

    name: str
    op: str = "*"
    target: float = 0.99
    latency_s: Optional[float] = None
    window: int = 512

    def __post_init__(self) -> None:
        if not self.name:
            raise ObservabilityError("an SLO needs a non-empty name")
        if not (0.0 < self.target < 1.0):
            raise ObservabilityError(
                f"SLO target must be in (0, 1), got {self.target!r}"
            )
        if self.latency_s is not None and self.latency_s <= 0:
            raise ObservabilityError(
                f"SLO latency bound must be positive, got {self.latency_s!r}"
            )
        if self.window < 1:
            raise ObservabilityError(f"SLO window must be >= 1, got {self.window}")

    @property
    def error_budget(self) -> float:
        """The allowed bad fraction: ``1 - target``."""
        return 1.0 - self.target

    def objective(self) -> str:
        """The human form, e.g. ``99% of step <= 250ms``."""
        percent = f"{100.0 * self.target:g}%"
        scope = "all ops" if self.op == "*" else self.op
        if self.latency_s is None:
            return f"{percent} of {scope} succeed"
        return f"{percent} of {scope} <= {1e3 * self.latency_s:g}ms"

    def watches(self, op: str) -> bool:
        """Whether a request of ``op`` counts against this objective."""
        return self.op == "*" or self.op == op

    def is_good(self, seconds: float, error: bool) -> bool:
        """Judge one request outcome against the objective."""
        if error:
            return False
        return self.latency_s is None or seconds <= self.latency_s

    def to_json(self) -> Dict[str, object]:
        """The declarative config form (inverse of :func:`slos_from_json`)."""
        doc: Dict[str, object] = {
            "name": self.name,
            "op": self.op,
            "target": self.target,
            "window": self.window,
        }
        if self.latency_s is not None:
            doc["latency_s"] = self.latency_s
        return doc


def slos_from_json(docs: Iterable[Mapping[str, object]]) -> Tuple[SLO, ...]:
    """Parse a declarative SLO config (a list of objective documents)."""
    out: List[SLO] = []
    for doc in docs:
        if not isinstance(doc, Mapping):
            raise ObservabilityError(f"SLO config entry is not an object: {doc!r}")
        try:
            latency = doc.get("latency_s")
            out.append(
                SLO(
                    name=str(doc["name"]),
                    op=str(doc.get("op", "*")),
                    target=float(doc.get("target", 0.99)),  # type: ignore[arg-type]
                    latency_s=None if latency is None else float(latency),  # type: ignore[arg-type]
                    window=int(doc.get("window", 512)),  # type: ignore[arg-type]
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed SLO config {doc!r}: {exc}") from exc
    names = [slo.name for slo in out]
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate SLO names in config: {names}")
    return tuple(out)


def default_serve_slos() -> Tuple[SLO, ...]:
    """The serving tier's stock objectives.

    ``step-latency`` watches the hot verb (95% of steps within 250 ms
    — generous for CI boxes, tight enough to notice a stall) and
    ``availability`` watches every verb for errors.
    """
    return (
        SLO("step-latency", op="step", target=0.95, latency_s=0.25),
        SLO("availability", op="*", target=0.999),
    )


class SLOTracker:
    """Rolling attainment and error-budget burn, one window per SLO."""

    def __init__(self, slos: Sequence[SLO] = ()) -> None:
        self.slos: Tuple[SLO, ...] = tuple(slos)
        #: per objective: deque of good/bad verdicts, newest last
        self._verdicts: Dict[str, Deque[bool]] = {
            slo.name: deque(maxlen=slo.window) for slo in self.slos
        }

    def observe(self, op: str, seconds: float, error: bool = False) -> None:
        """Fold one finished request into every objective watching it."""
        for slo in self.slos:
            if slo.watches(op):
                self._verdicts[slo.name].append(slo.is_good(seconds, error))

    def attainment(self, name: str) -> float:
        """Good fraction of the named objective's window (1.0 if empty)."""
        window = self._verdicts[name]
        if not window:
            return 1.0
        return sum(window) / len(window)

    def burn(self, name: str) -> float:
        """Error-budget burn: bad fraction over the allowed fraction."""
        slo = next(s for s in self.slos if s.name == name)
        return (1.0 - self.attainment(name)) / slo.error_budget

    def status(self) -> List[Dict[str, object]]:
        """One JSON row per objective: attainment, budget, burn, verdict.

        An empty window is vacuously ok (attainment 1.0) — a service
        that has served nothing has violated nothing.
        """
        rows: List[Dict[str, object]] = []
        for slo in self.slos:
            window = self._verdicts[slo.name]
            attainment = self.attainment(slo.name)
            rows.append(
                {
                    "name": slo.name,
                    "objective": slo.objective(),
                    "op": slo.op,
                    "window": len(window),
                    "good": sum(window),
                    "attainment": attainment,
                    "target": slo.target,
                    "error_budget": slo.error_budget,
                    "burn": (1.0 - attainment) / slo.error_budget,
                    "ok": attainment >= slo.target,
                }
            )
        return rows

    def all_ok(self) -> bool:
        """Every objective currently attained (the ``/healthz`` verdict)."""
        return all(row["ok"] for row in self.status())

    def as_metrics(self) -> Dict[str, float]:
        """Flat ``name -> value`` pairs for the history/bench export."""
        out: Dict[str, float] = {}
        for row in self.status():
            key = str(row["name"]).replace("-", "_")
            out[f"slo_{key}_attainment"] = float(row["attainment"])  # type: ignore[arg-type]
            out[f"slo_{key}_burn"] = float(row["burn"])  # type: ignore[arg-type]
        out["slo_ok"] = 1.0 if self.all_ok() else 0.0
        return out
