"""The run recorder: one object that watches everything.

An :class:`ObsRecorder` attaches to a simulator and turns the run into
a structured event stream plus a metrics registry:

* the **step stream** (:meth:`~repro.model.simulator.Simulator.
  add_step_listener`) yields one ``step`` + one ``schedule`` event per
  instant;
* the **fault stream** yields ``displacement`` events for every
  out-of-band teleport;
* the **phase hook** plus an injected monotonic clock yields timed
  ``phase`` events — the hot-path wall-time profile (inject a fake
  clock to keep tests deterministic);
* light **protocol-side sinks** yield the bit-lifecycle events
  (encode-started / moved / receipt / overheard, with acks
  synthesized when a sender advances to its next bit on a flow);
* the **monitor hook** (:func:`repro.verify.monitors.set_flag_hook`)
  yields ``monitor`` events and firing counters.

Everything is opt-in and bit-transparent: with no recorder attached,
every hook is None and the simulation takes the exact same code path;
with one attached, the recorder only *reads*.  The module-level
dispatch counter exists so tests can assert the disabled path really
dispatches nothing.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.geometry.vec import Vec2
from repro.model.protocol import BitEvent, Protocol
from repro.model.trace import TraceStep
from repro.obs.events import (
    BIT_ACK,
    BIT_ENCODE_STARTED,
    BIT_MOVED,
    BIT_OVERHEARD,
    BIT_RECEIPT,
    DISPLACEMENT,
    MONITOR,
    PHASE,
    SCHEDULE,
    STEP,
    Event,
)
from repro.obs.registry import MetricsRegistry

__all__ = ["ObsRecorder", "dispatch_count"]

#: process-wide count of obs hook dispatches; stays frozen while no
#: recorder is attached (the zero-overhead-when-disabled witness).
_dispatches = 0


def dispatch_count() -> int:
    """How many obs hook dispatches happened in this process so far."""
    return _dispatches


def _bump() -> None:
    global _dispatches
    _dispatches += 1


def _protocol_chain(protocol: Protocol) -> List[Protocol]:
    """A protocol plus its wrapped ``inner`` protocols (flocking)."""
    chain: List[Protocol] = []
    seen = set()
    current: Optional[Protocol] = protocol
    while isinstance(current, Protocol) and id(current) not in seen:
        chain.append(current)
        seen.add(id(current))
        current = getattr(current, "inner", None)
    return chain


class ObsRecorder:
    """Record one simulator run as events + metrics.

    Args:
        clock: monotonic clock for the phase profile; defaults to
            :func:`time.perf_counter`.  Tests inject a deterministic
            fake.  Pass ``timing=False`` to skip phase profiling
            entirely (no phase hook installed).
        registry: metrics registry to write into; a fresh private one
            is created when omitted.
        meta: free-form run metadata (protocol, scheduler, seed, ...)
            embedded in the export header.  ``protocol`` and
            ``scheduler`` become the labels of every metric series.
        timing: whether to install the phase hook (default True).

    Usage::

        recorder = ObsRecorder(meta={"protocol": "sync_two"})
        recorder.attach(sim)
        ... run ...
        recorder.detach(sim)
        run = recorder.to_run()
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        meta: Optional[Dict[str, object]] = None,
        timing: bool = True,
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else _time.perf_counter
        self.registry = registry if registry is not None else MetricsRegistry()
        self.meta: Dict[str, object] = dict(meta or {})
        self.events: List[Event] = []
        self._timing = timing
        self._sim = None
        self._labels: Dict[str, object] = {}
        self._open_phase: Optional[Tuple[str, int, float]] = None
        self._previous_flag_hook: Optional[Callable[[str, int, str], None]] = None
        #: last encode-started (seq, bit) per flow, for ack synthesis
        self._flow_seq: Dict[Tuple[int, int], int] = {}
        self._flow_last_bit: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim) -> "ObsRecorder":
        """Subscribe to every stream of ``sim``; returns self.

        Also installs the process-wide monitor-firing hook (restored
        on :meth:`detach`), so invariant monitors attached to the same
        run land on the event timeline.
        """
        from repro.verify import monitors as _monitors

        if self._sim is not None:
            raise ObservabilityError("recorder is already attached to a simulator")
        self._sim = sim
        self.meta.setdefault("count", sim.count)
        self.meta.setdefault(
            "initial", [[p.x, p.y] for p in sim.trace.initial_positions]
        )
        labels = {}
        for key in ("protocol", "scheduler"):
            if key in self.meta:
                labels[key] = self.meta[key]
        self._labels = labels
        sim.add_step_listener(self._on_step)
        sim.add_fault_listener(self._on_fault)
        if self._timing:
            sim.set_phase_hook(self._on_phase)
        for robot in sim.robots:
            for protocol in _protocol_chain(robot.protocol):
                protocol._obs_sink = self
        self._previous_flag_hook = _monitors.set_flag_hook(self._on_monitor)
        return self

    def detach(self, sim) -> None:
        """Undo :meth:`attach`; safe to call exactly once."""
        from repro.verify import monitors as _monitors

        if self._sim is not sim:
            raise ObservabilityError("recorder is not attached to this simulator")
        sim.remove_step_listener(self._on_step)
        sim.remove_fault_listener(self._on_fault)
        if self._timing:
            sim.set_phase_hook(None)
        for robot in sim.robots:
            for protocol in _protocol_chain(robot.protocol):
                if protocol._obs_sink is self:
                    protocol._obs_sink = None
        _monitors.set_flag_hook(self._previous_flag_hook)
        self._previous_flag_hook = None
        self._absorb_perf(sim)
        self._sim = None

    def _absorb_perf(self, sim) -> None:
        """Fold the legacy perf counter blocks into the registry."""
        self.registry.absorb(
            {f"perf_{name}": value for name, value in sim.stats.as_dict().items()},
            **self._labels,
        )
        try:
            from repro.perf.memo import shared_sec_stats

            self.registry.absorb(
                {f"shared_sec_{k}": v for k, v in shared_sec_stats().items()},
                **self._labels,
            )
        except Exception:  # pragma: no cover - memo layer is optional here
            pass

    # ------------------------------------------------------------------
    # Stream callbacks
    # ------------------------------------------------------------------
    def _emit(self, event: Event) -> None:
        _bump()
        self.events.append(event)

    def _on_step(self, sim, step: TraceStep) -> None:
        active = sorted(step.active)
        self._emit(
            Event(
                SCHEDULE,
                step.time,
                {"active": active, "count": sim.count},
            )
        )
        self._emit(
            Event(
                STEP,
                step.time,
                {
                    "active": active,
                    "positions": [[p.x, p.y] for p in step.positions],
                    "epoch": sim.epoch,
                },
            )
        )
        self.registry.counter("sim_steps_total", **self._labels).inc()
        self.registry.counter("sim_activations_total", **self._labels).inc(len(active))
        self.registry.gauge("sim_epoch", **self._labels).set(sim.epoch)

    def _on_fault(self, sim, index: int, old: Vec2, new: Vec2) -> None:
        self._emit(
            Event(
                DISPLACEMENT,
                sim.time,
                {"robot": index, "from": [old.x, old.y], "to": [new.x, new.y]},
            )
        )
        self.registry.counter("faults_displacements_total", **self._labels).inc()

    def _on_phase(self, phase: str, time: int) -> None:
        now = self.clock()
        open_phase = self._open_phase
        if open_phase is not None:
            name, start_time, started = open_phase
            seconds = now - started
            self._emit(
                Event(PHASE, start_time, {"phase": name, "seconds": seconds})
            )
            self.registry.histogram(
                "sim_phase_seconds", phase=name, **self._labels
            ).observe(seconds)
        self._open_phase = None if phase == "end" else (phase, time, now)

    def _on_monitor(self, invariant: str, time: int, message: str) -> None:
        self._emit(Event(MONITOR, time, {"invariant": invariant, "message": message}))
        self.registry.counter(
            "verify_monitor_firings_total", invariant=invariant, **self._labels
        ).inc()
        previous = self._previous_flag_hook
        if previous is not None:  # pragma: no cover - hook chaining
            previous(invariant, time, message)

    # ------------------------------------------------------------------
    # Bit-lifecycle sink (called by the Protocol base class)
    # ------------------------------------------------------------------
    def bit_encode_started(self, src: int, dst: int, bit: int, time: int) -> None:
        """A sender popped a bit off its queue and began encoding it.

        Also synthesizes the previous bit's ``bit-ack`` event on the
        same flow: a protocol only advances once its ack condition
        (Lemma 4.1 or the synchronous rhythm) was consumed.
        """
        flow = (src, dst)
        seq = self._flow_seq.get(flow, 0)
        if seq > 0:
            # The sender only advances once the previous bit's leg is
            # complete — the implicit acknowledgement was consumed.
            self._emit(
                Event(
                    BIT_ACK,
                    time,
                    {
                        "src": src,
                        "dst": dst,
                        "seq": seq - 1,
                        "bit": self._flow_last_bit.get(flow),
                    },
                )
            )
            self.registry.counter(
                "bits_total", phase="ack", **self._labels
            ).inc()
        self._flow_seq[flow] = seq + 1
        self._flow_last_bit[flow] = bit
        self._emit(
            Event(
                BIT_ENCODE_STARTED,
                time,
                {"src": src, "dst": dst, "bit": bit, "seq": seq},
            )
        )
        self.registry.counter(
            "bits_total", phase="encode-started", **self._labels
        ).inc()

    def bit_moved(self, src: int, dst: int, bit: int, time: int, target: Vec2) -> None:
        """The sender's encoding movement was computed (the excursion)."""
        self._emit(
            Event(
                BIT_MOVED,
                time,
                {
                    "src": src,
                    "dst": dst,
                    "bit": bit,
                    "target": [target.x, target.y],
                },
            )
        )
        self.registry.counter("bits_total", phase="moved", **self._labels).inc()

    def bit_receipt(self, observer: int, event: BitEvent) -> None:
        """The addressee decoded a bit (it entered ``received``)."""
        self._emit(
            Event(
                BIT_RECEIPT,
                event.time,
                {"src": event.src, "dst": event.dst, "bit": event.bit},
            )
        )
        self.registry.counter("bits_total", phase="receipt", **self._labels).inc()

    def bit_overheard(self, observer: int, event: BitEvent) -> None:
        """A third party decoded a bit addressed to someone else."""
        self._emit(
            Event(
                BIT_OVERHEARD,
                event.time,
                {
                    "src": event.src,
                    "dst": event.dst,
                    "bit": event.bit,
                    "by": observer,
                },
            )
        )
        self.registry.counter("bits_total", phase="overheard", **self._labels).inc()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def to_run(self):
        """Freeze the recording into an exportable ObsRun."""
        from repro.obs.export import ObsRun

        if self._sim is not None:
            # Snapshot live perf counters without requiring detach.
            self._absorb_perf(self._sim)
        return ObsRun(
            meta=dict(self.meta),
            events=list(self.events),
            metrics=self.registry.collect(),
        )
