"""The run recorder: one object that watches everything.

An :class:`ObsRecorder` attaches to a simulator and turns the run into
a structured event stream plus a metrics registry:

* the **step stream** (:meth:`~repro.model.simulator.Simulator.
  add_step_listener`) yields one ``step`` + one ``schedule`` event per
  instant;
* the **fault stream** yields ``displacement`` events for every
  out-of-band teleport;
* the **phase hook** plus an injected monotonic clock yields timed
  ``phase`` events — the hot-path wall-time profile (inject a fake
  clock to keep tests deterministic);
* light **protocol-side sinks** yield the bit-lifecycle events
  (encode-started / moved / receipt / overheard, with acks
  synthesized when a sender advances to its next bit on a flow);
* the **monitor hook** (:func:`repro.verify.monitors.set_flag_hook`)
  yields ``monitor`` events and firing counters.

Causal stamping
---------------

The recorder maintains one **vector clock per robot**, advanced at
every Look/Compute/Move (via the simulator's per-robot phase hook) and
at every bit-lifecycle emission.  Each bit event carries three stamp
attributes — ``by`` (the robot the event happened at), ``vc`` (that
robot's vector clock, as sorted ``[robot, count]`` pairs) and ``wall``
(the engine's continuous clock where one exists, else the instant) —
plus ``seq`` so :mod:`repro.obs.causal` can rebuild the happens-before
DAG without re-pairing by order.  Clock merges follow the physical
causality of the model: a receipt/overhear merges the sender's clock
as of its last visible encoding movement, and a synthesized ack merges
the receiver's clock as of the acknowledged receipt.  All stamps are
deterministic (they derive from simulation state, never from the host
clock), so two recordings of the same seeded run still diff clean.

A recorder can also **tee** its event stream into live sinks
(:meth:`ObsRecorder.add_sink`, typically a
:class:`~repro.obs.stream.StreamingSink`) — the telemetry tap behind
``python -m repro.obs watch``.

Everything is opt-in and bit-transparent: with no recorder attached,
every hook is None and the simulation takes the exact same code path;
with one attached, the recorder only *reads*.  The module-level
dispatch counter exists so tests can assert the disabled path really
dispatches nothing.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.geometry.vec import Vec2
from repro.model.protocol import BitEvent, Protocol
from repro.model.trace import TraceStep
from repro.obs.events import (
    BIT_ACK,
    BIT_ENCODE_STARTED,
    BIT_MOVED,
    BIT_OVERHEARD,
    BIT_RECEIPT,
    DISPLACEMENT,
    MONITOR,
    PHASE,
    SCHEDULE,
    STEP,
    Event,
)
from repro.obs.registry import MetricsRegistry

__all__ = ["ObsRecorder", "dispatch_count", "LATENCY_BUCKETS"]

#: bucket bounds (in instants) of the end-to-end bit-latency histogram.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

#: process-wide count of obs hook dispatches; stays frozen while no
#: recorder is attached (the zero-overhead-when-disabled witness).
_dispatches = 0


def dispatch_count() -> int:
    """How many obs hook dispatches happened in this process so far."""
    return _dispatches


def _bump() -> None:
    global _dispatches
    _dispatches += 1


def _protocol_chain(protocol: Protocol) -> List[Protocol]:
    """A protocol plus its wrapped ``inner`` protocols (flocking)."""
    chain: List[Protocol] = []
    seen = set()
    current: Optional[Protocol] = protocol
    while isinstance(current, Protocol) and id(current) not in seen:
        chain.append(current)
        seen.add(id(current))
        current = getattr(current, "inner", None)
    return chain


class ObsRecorder:
    """Record one simulator run as events + metrics.

    Args:
        clock: monotonic clock for the phase profile; defaults to
            :func:`time.perf_counter`.  Tests inject a deterministic
            fake.  Pass ``timing=False`` to skip phase profiling
            entirely (no phase hook installed).
        registry: metrics registry to write into; a fresh private one
            is created when omitted.
        meta: free-form run metadata (protocol, scheduler, seed, ...)
            embedded in the export header.  ``protocol`` and
            ``scheduler`` become the labels of every metric series.
        timing: whether to install the phase hook (default True).

    Usage::

        recorder = ObsRecorder(meta={"protocol": "sync_two"})
        recorder.attach(sim)
        ... run ...
        recorder.detach(sim)
        run = recorder.to_run()
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        meta: Optional[Dict[str, object]] = None,
        timing: bool = True,
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else _time.perf_counter
        self.registry = registry if registry is not None else MetricsRegistry()
        self.meta: Dict[str, object] = dict(meta or {})
        self.events: List[Event] = []
        self._timing = timing
        self._sim = None
        self._labels: Dict[str, object] = {}
        self._open_phase: Optional[Tuple[str, int, float]] = None
        self._previous_flag_hook: Optional[Callable[[str, int, str], None]] = None
        #: last encode-started (seq, bit) per flow, for ack synthesis
        self._flow_seq: Dict[Tuple[int, int], int] = {}
        self._flow_last_bit: Dict[Tuple[int, int], int] = {}
        # -- causal stamping state --------------------------------------
        #: per-robot sparse vector clocks (robot -> component counts)
        self._vclocks: Dict[int, Dict[int, int]] = {}
        #: wall time of each robot's most recent Look (per-robot hook)
        self._last_look_wall: Dict[int, float] = {}
        #: per flow: the last / previous bit-moved (time, vc) snapshots —
        #: a decode merges the last snapshot strictly before its instant
        self._flow_moved_vc: Dict[Tuple[int, int], Tuple[int, List[List[int]]]] = {}
        self._flow_moved_prev: Dict[Tuple[int, int], Tuple[int, List[List[int]]]] = {}
        #: receipt clock snapshots per (src, dst, seq), consumed by acks
        self._flow_receipt_vc: Dict[Tuple[int, int, int], List[List[int]]] = {}
        self._flow_receipt_count: Dict[Tuple[int, int], int] = {}
        self._flow_overheard_count: Dict[Tuple[int, int, int], int] = {}
        #: encode instant per flow, for the end-to-end latency histogram
        self._flow_encode_time: Dict[Tuple[int, int], int] = {}
        #: engine label of the attached simulator ("rounds" / "events")
        self._engine: str = "rounds"
        self._robot_hook_installed = False
        #: live sinks the event stream is teed into (the telemetry tap)
        self._streams: List[object] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim) -> "ObsRecorder":
        """Subscribe to every stream of ``sim``; returns self.

        Also installs the process-wide monitor-firing hook (restored
        on :meth:`detach`), so invariant monitors attached to the same
        run land on the event timeline.
        """
        from repro.verify import monitors as _monitors

        if self._sim is not None:
            raise ObservabilityError("recorder is already attached to a simulator")
        self._sim = sim
        self.meta.setdefault("count", sim.count)
        self.meta.setdefault(
            "initial", [[p.x, p.y] for p in sim.trace.initial_positions]
        )
        self._engine = "events" if hasattr(sim, "delay_model") else "rounds"
        self.meta.setdefault("engine", self._engine)
        labels = {}
        for key in ("protocol", "scheduler"):
            if key in self.meta:
                labels[key] = self.meta[key]
        self._labels = labels
        sim.add_step_listener(self._on_step)
        sim.add_fault_listener(self._on_fault)
        if self._timing:
            sim.set_phase_hook(self._on_phase)
        set_robot_hook = getattr(sim, "set_robot_phase_hook", None)
        if set_robot_hook is not None:
            set_robot_hook(self._on_robot_phase)
            self._robot_hook_installed = True
        for robot in sim.robots:
            for protocol in _protocol_chain(robot.protocol):
                protocol._obs_sink = self
        self._previous_flag_hook = _monitors.set_flag_hook(self._on_monitor)
        return self

    def detach(self, sim) -> None:
        """Undo :meth:`attach`; safe to call exactly once."""
        from repro.verify import monitors as _monitors

        if self._sim is not sim:
            raise ObservabilityError("recorder is not attached to this simulator")
        sim.remove_step_listener(self._on_step)
        sim.remove_fault_listener(self._on_fault)
        if self._timing:
            sim.set_phase_hook(None)
        if self._robot_hook_installed:
            sim.set_robot_phase_hook(None)
            self._robot_hook_installed = False
        for robot in sim.robots:
            for protocol in _protocol_chain(robot.protocol):
                if protocol._obs_sink is self:
                    protocol._obs_sink = None
        _monitors.set_flag_hook(self._previous_flag_hook)
        self._previous_flag_hook = None
        self._absorb_perf(sim)
        self._sim = None

    def _absorb_perf(self, sim) -> None:
        """Fold the legacy perf counter blocks into the registry."""
        self.registry.absorb(
            {f"perf_{name}": value for name, value in sim.stats.as_dict().items()},
            **self._labels,
        )
        try:
            from repro.perf.memo import shared_sec_stats

            self.registry.absorb(
                {f"shared_sec_{k}": v for k, v in shared_sec_stats().items()},
                **self._labels,
            )
        except Exception:  # pragma: no cover - memo layer is optional here
            pass

    # ------------------------------------------------------------------
    # Live sinks (the streaming telemetry tap)
    # ------------------------------------------------------------------
    def add_sink(self, sink) -> None:
        """Tee every subsequently emitted event into ``sink``.

        A sink only needs an ``accept(event)`` method;
        :class:`~repro.obs.stream.StreamingSink` is the bounded-queue
        implementation the live watcher drains.  Sinks only *read* the
        stream — the recording itself is unaffected.
        """
        self._streams.append(sink)

    def remove_sink(self, sink) -> None:
        """Stop teeing into a previously added sink."""
        self._streams.remove(sink)

    # ------------------------------------------------------------------
    # Vector clocks
    # ------------------------------------------------------------------
    def _wall(self) -> float:
        """The engine's continuous clock, or the instant as a float."""
        sim = self._sim
        if sim is None:  # pragma: no cover - sinks only fire attached
            return -1.0
        clock = getattr(sim, "clock", None)
        return float(clock) if clock is not None else float(sim.time)

    def _tick(self, robot: int) -> List[List[int]]:
        """Advance ``robot``'s own component; returns a fresh snapshot."""
        clock = self._vclocks.get(robot)
        if clock is None:
            clock = self._vclocks[robot] = {}
        clock[robot] = clock.get(robot, 0) + 1
        return [[r, clock[r]] for r in sorted(clock)]

    def _merge(self, robot: int, snapshot: Optional[List[List[int]]]) -> None:
        """Fold a received clock snapshot into ``robot``'s clock."""
        if not snapshot:
            return
        clock = self._vclocks.setdefault(robot, {})
        for r, c in snapshot:
            if c > clock.get(r, 0):
                clock[r] = c

    def _moved_snapshot_before(
        self, flow: Tuple[int, int], time: int
    ) -> Optional[List[List[int]]]:
        """The sender's clock at its last move strictly before ``time``.

        A decode at instant ``t`` can only have seen movements applied
        at earlier instants, so a same-instant move (not yet applied
        when the observer Looked) must not leak into the merge.
        """
        last = self._flow_moved_vc.get(flow)
        if last is not None and last[0] < time:
            return last[1]
        prev = self._flow_moved_prev.get(flow)
        if prev is not None and prev[0] < time:
            return prev[1]
        return None

    def _on_robot_phase(self, phase: str, robot: int, time: int) -> None:
        _bump()
        clock = self._vclocks.get(robot)
        if clock is None:
            clock = self._vclocks[robot] = {}
        clock[robot] = clock.get(robot, 0) + 1
        if phase == "look":
            self._last_look_wall[robot] = self._wall()

    # ------------------------------------------------------------------
    # Stream callbacks
    # ------------------------------------------------------------------
    def _emit(self, event: Event) -> None:
        _bump()
        self.events.append(event)
        for sink in self._streams:
            sink.accept(event)

    def _on_step(self, sim, step: TraceStep) -> None:
        active = sorted(step.active)
        self._emit(
            Event(
                SCHEDULE,
                step.time,
                {"active": active, "count": sim.count},
            )
        )
        self._emit(
            Event(
                STEP,
                step.time,
                {
                    "active": active,
                    "positions": [[p.x, p.y] for p in step.positions],
                    "epoch": sim.epoch,
                },
            )
        )
        self.registry.counter("sim_steps_total", **self._labels).inc()
        self.registry.counter("sim_activations_total", **self._labels).inc(len(active))
        self.registry.gauge("sim_epoch", **self._labels).set(sim.epoch)

    def _on_fault(self, sim, index: int, old: Vec2, new: Vec2) -> None:
        self._emit(
            Event(
                DISPLACEMENT,
                sim.time,
                {"robot": index, "from": [old.x, old.y], "to": [new.x, new.y]},
            )
        )
        self.registry.counter("faults_displacements_total", **self._labels).inc()

    def _on_phase(self, phase: str, time: int) -> None:
        now = self.clock()
        open_phase = self._open_phase
        if open_phase is not None:
            name, start_time, started = open_phase
            seconds = now - started
            self._emit(
                Event(PHASE, start_time, {"phase": name, "seconds": seconds})
            )
            self.registry.histogram(
                "sim_phase_seconds", phase=name, **self._labels
            ).observe(seconds)
        self._open_phase = None if phase == "end" else (phase, time, now)

    def _on_monitor(self, invariant: str, time: int, message: str) -> None:
        self._emit(Event(MONITOR, time, {"invariant": invariant, "message": message}))
        self.registry.counter(
            "verify_monitor_firings_total", invariant=invariant, **self._labels
        ).inc()
        previous = self._previous_flag_hook
        if previous is not None:  # pragma: no cover - hook chaining
            previous(invariant, time, message)

    # ------------------------------------------------------------------
    # Bit-lifecycle sink (called by the Protocol base class)
    # ------------------------------------------------------------------
    def _latency_histogram(self):
        """The per-flow end-to-end bit-latency histogram (in instants)."""
        return self.registry.histogram(
            "bit_latency_instants",
            buckets=LATENCY_BUCKETS,
            engine=self._engine,
            **self._labels,
        )

    def bit_encode_started(self, src: int, dst: int, bit: int, time: int) -> None:
        """A sender popped a bit off its queue and began encoding it.

        Also synthesizes the previous bit's ``bit-ack`` event on the
        same flow: a protocol only advances once its ack condition
        (Lemma 4.1 or the synchronous rhythm) was consumed.  The ack
        merges the receiver's clock as of the acknowledged receipt —
        making receipt→ack a happens-before edge — and feeds the
        end-to-end ``bit_latency_instants`` histogram.
        """
        flow = (src, dst)
        seq = self._flow_seq.get(flow, 0)
        wall = self._wall()
        if seq > 0:
            # The sender only advances once the previous bit's leg is
            # complete — the implicit acknowledgement was consumed.
            self._merge(src, self._flow_receipt_vc.pop((src, dst, seq - 1), None))
            self._emit(
                Event(
                    BIT_ACK,
                    time,
                    {
                        "src": src,
                        "dst": dst,
                        "seq": seq - 1,
                        "bit": self._flow_last_bit.get(flow),
                        "by": src,
                        "vc": self._tick(src),
                        "wall": wall,
                    },
                )
            )
            self.registry.counter(
                "bits_total", phase="ack", **self._labels
            ).inc()
            encode_time = self._flow_encode_time.get(flow)
            if encode_time is not None:
                self._latency_histogram().observe(float(time - encode_time))
        self._flow_seq[flow] = seq + 1
        self._flow_last_bit[flow] = bit
        self._flow_encode_time[flow] = time
        self._emit(
            Event(
                BIT_ENCODE_STARTED,
                time,
                {
                    "src": src,
                    "dst": dst,
                    "bit": bit,
                    "seq": seq,
                    "by": src,
                    "vc": self._tick(src),
                    "wall": wall,
                },
            )
        )
        self.registry.counter(
            "bits_total", phase="encode-started", **self._labels
        ).inc()

    def bit_moved(self, src: int, dst: int, bit: int, time: int, target: Vec2) -> None:
        """The sender's encoding movement was computed (the excursion)."""
        flow = (src, dst)
        vc = self._tick(src)
        last = self._flow_moved_vc.get(flow)
        if last is not None:
            self._flow_moved_prev[flow] = last
        self._flow_moved_vc[flow] = (time, vc)
        self._emit(
            Event(
                BIT_MOVED,
                time,
                {
                    "src": src,
                    "dst": dst,
                    "bit": bit,
                    "seq": self._flow_seq.get(flow, 1) - 1,
                    "target": [target.x, target.y],
                    "by": src,
                    "vc": vc,
                    "wall": self._wall(),
                },
            )
        )
        self.registry.counter("bits_total", phase="moved", **self._labels).inc()

    def bit_receipt(self, observer: int, event: BitEvent) -> None:
        """The addressee decoded a bit (it entered ``received``)."""
        flow = (event.src, event.dst)
        self._merge(observer, self._moved_snapshot_before(flow, event.time))
        vc = self._tick(observer)
        seq = self._flow_receipt_count.get(flow, 0)
        self._flow_receipt_count[flow] = seq + 1
        self._flow_receipt_vc[(event.src, event.dst, seq)] = vc
        attrs = {
            "src": event.src,
            "dst": event.dst,
            "bit": event.bit,
            "seq": seq,
            "by": observer,
            "vc": vc,
            "wall": self._wall(),
        }
        look_wall = self._last_look_wall.get(observer)
        if look_wall is not None:
            attrs["look_wall"] = look_wall
        self._emit(Event(BIT_RECEIPT, event.time, attrs))
        self.registry.counter("bits_total", phase="receipt", **self._labels).inc()

    def bit_overheard(self, observer: int, event: BitEvent) -> None:
        """A third party decoded a bit addressed to someone else."""
        flow = (event.src, event.dst)
        self._merge(observer, self._moved_snapshot_before(flow, event.time))
        vc = self._tick(observer)
        key = (event.src, event.dst, observer)
        seq = self._flow_overheard_count.get(key, 0)
        self._flow_overheard_count[key] = seq + 1
        attrs = {
            "src": event.src,
            "dst": event.dst,
            "bit": event.bit,
            "seq": seq,
            "by": observer,
            "vc": vc,
            "wall": self._wall(),
        }
        look_wall = self._last_look_wall.get(observer)
        if look_wall is not None:
            attrs["look_wall"] = look_wall
        self._emit(Event(BIT_OVERHEARD, event.time, attrs))
        self.registry.counter("bits_total", phase="overheard", **self._labels).inc()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def to_run(self):
        """Freeze the recording into an exportable ObsRun."""
        from repro.obs.export import ObsRun

        if self._sim is not None:
            # Snapshot live perf counters without requiring detach.
            self._absorb_perf(self._sim)
        return ObsRun(
            meta=dict(self.meta),
            events=list(self.events),
            metrics=self.registry.collect(),
        )
