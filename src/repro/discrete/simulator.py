"""The SSM engine on a lattice.

Movement destinations are snapped to the nearest lattice point — the
environment enforces the discrete world, whatever the protocols
compute.  Initial positions must be lattice points.

Note on ``sigma``: snapping happens after the continuous clamp, so a
destination can exceed the bound by at most half a lattice cell; the
lattice protocols request exact lattice points within ``sigma`` and
never hit the slack.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.discrete.lattice import Lattice
from repro.errors import ModelError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler
from repro.model.simulator import Simulator
from repro.model.trace import TracePolicy

__all__ = ["LatticeSimulator"]


class LatticeSimulator(Simulator):
    """A swarm living on a lattice.

    Args:
        robots: the swarm; initial positions must be lattice points.
        lattice: the world's lattice (square grid or hex pavement).
        scheduler: activation policy.
        caching: forwarded to the base engine (hot-path caches).
        trace_policy: forwarded to the base engine (trace bounding).
    """

    def __init__(
        self,
        robots: Sequence[Robot],
        lattice: Lattice,
        scheduler: Optional[Scheduler] = None,
        *,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
    ) -> None:
        for i, robot in enumerate(robots):
            if not lattice.is_lattice_point(robot.position):
                raise ModelError(
                    f"robot {i} starts at {robot.position!r}, "
                    "which is not a lattice point"
                )
        self._lattice = lattice
        super().__init__(
            robots, scheduler, caching=caching, trace_policy=trace_policy
        )

    @property
    def lattice(self) -> Lattice:
        """The world's lattice."""
        return self._lattice

    def _constrain_destination(self, index: int, destination: Vec2) -> Vec2:
        return self._lattice.snap(destination)
