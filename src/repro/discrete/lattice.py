"""Square and hexagonal lattices.

A lattice gives the discrete world of Section 5 its shape: the set of
positions robots can occupy and, derived from it, the handful of
*realisable movement directions* — 8 for the square grid (4 axial + 4
diagonal), 6 for the hexagonal pavement.  Each direction carries a
*unit step length*: the distance to the nearest lattice point in that
direction (``pitch`` axially, ``pitch * sqrt(2)`` diagonally on the
grid).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import GeometryError
from repro.geometry.vec import Vec2

__all__ = ["Lattice", "SquareLattice", "HexLattice"]


@dataclass(frozen=True)
class Lattice(ABC):
    """A point lattice in the plane.

    Attributes:
        pitch: the lattice constant (> 0): nearest-neighbour spacing.
    """

    pitch: float = 1.0

    def __post_init__(self) -> None:
        if self.pitch <= 0.0:
            raise GeometryError(f"lattice pitch must be positive, got {self.pitch}")

    @abstractmethod
    def snap(self, point: Vec2) -> Vec2:
        """The lattice point nearest to ``point``."""

    @abstractmethod
    def directions(self) -> List[Vec2]:
        """The realisable unit movement directions, CCW from +x."""

    @abstractmethod
    def unit_step(self, direction_index: int) -> float:
        """Distance to the adjacent lattice point along a direction."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def is_lattice_point(self, point: Vec2, eps: float = 1e-9) -> bool:
        """Whether ``point`` coincides with a lattice point."""
        return self.snap(point).distance_to(point) <= eps * self.pitch

    def step_from(self, point: Vec2, direction_index: int, multiples: int) -> Vec2:
        """The lattice point ``multiples`` unit steps along a direction.

        ``point`` must itself be a lattice point.
        """
        if not self.is_lattice_point(point):
            raise GeometryError(f"{point!r} is not a lattice point")
        if multiples < 0:
            raise GeometryError(f"multiples must be >= 0, got {multiples}")
        direction = self.directions()[direction_index]
        return point + direction * (multiples * self.unit_step(direction_index))

    def direction_count(self) -> int:
        """How many directions a lattice robot can tell apart."""
        return len(self.directions())


class SquareLattice(Lattice):
    """The integer grid scaled by ``pitch``: 8 realisable directions."""

    def snap(self, point: Vec2) -> Vec2:
        return Vec2(
            round(point.x / self.pitch) * self.pitch,
            round(point.y / self.pitch) * self.pitch,
        )

    def directions(self) -> List[Vec2]:
        rt = math.sqrt(0.5)
        return [
            Vec2(1.0, 0.0),
            Vec2(rt, rt),
            Vec2(0.0, 1.0),
            Vec2(-rt, rt),
            Vec2(-1.0, 0.0),
            Vec2(-rt, -rt),
            Vec2(0.0, -1.0),
            Vec2(rt, -rt),
        ]

    def unit_step(self, direction_index: int) -> float:
        # Odd indices are the diagonals.
        if direction_index % 2 == 1:
            return self.pitch * math.sqrt(2.0)
        return self.pitch


class HexLattice(Lattice):
    """The triangular lattice (hexagonal pavement): 6 directions.

    Points are integer combinations of the basis ``(pitch, 0)`` and
    ``(pitch/2, pitch*sqrt(3)/2)``; every point has six neighbours at
    distance ``pitch``, 60 degrees apart.
    """

    def _basis(self) -> Tuple[Vec2, Vec2]:
        return (
            Vec2(self.pitch, 0.0),
            Vec2(self.pitch / 2.0, self.pitch * math.sqrt(3.0) / 2.0),
        )

    def _to_lattice_coords(self, point: Vec2) -> Tuple[float, float]:
        b = self.pitch * math.sqrt(3.0) / 2.0
        v = point.y / b
        u = (point.x - v * self.pitch / 2.0) / self.pitch
        return u, v

    def snap(self, point: Vec2) -> Vec2:
        u, v = self._to_lattice_coords(point)
        e1, e2 = self._basis()
        best = None
        best_distance = float("inf")
        # Check the four surrounding lattice cells' corners.
        for du in (math.floor(u), math.floor(u) + 1):
            for dv in (math.floor(v), math.floor(v) + 1):
                candidate = e1 * float(du) + e2 * float(dv)
                distance = candidate.distance_to(point)
                if distance < best_distance:
                    best = candidate
                    best_distance = distance
        assert best is not None
        return best

    def directions(self) -> List[Vec2]:
        return [Vec2.unit(math.pi * k / 3.0) for k in range(6)]

    def unit_step(self, direction_index: int) -> float:
        return self.pitch
