"""The Section 5 few-slice protocol on a lattice.

On a grid or hexagonal pavement a robot can only move toward — and an
observer only reliably distinguish — the lattice's few realisable
directions (8 on the grid, 6 on the pavement).  The ``2n``-slice scheme
is therefore unusable for any interesting swarm size, which is exactly
the situation the paper's log_k addressing was designed for.

:class:`LatticeLogKProtocol` adapts :class:`~repro.protocols.sync_logk.
SyncLogKProtocol`:

* the granular's diameters are the lattice's diameters (4 on the grid,
  3 on the pavement), so every excursion direction is realisable;
* diameter 0 carries payload bits, diameters ``1 .. k`` carry base-k
  address digits, hence ``k <= lattice diameters - 1`` (k <= 3 on the
  grid, k <= 2 on the pavement);
* excursion lengths are whole unit steps, so every excursion lands
  exactly on a lattice point and the environment's snapping never
  perturbs a signal.

Requires an identified or sense-of-direction naming (horizon lines of
the SEC naming are not lattice-aligned) and identity-scale frames (the
lattice is a shared world structure).
"""

from __future__ import annotations

from typing import List

from repro.discrete.lattice import Lattice
from repro.errors import ProtocolError
from repro.geometry.granular import Granular
from repro.geometry.vec import Vec2
from repro.model.protocol import BindingInfo
from repro.protocols._naming_support import NamingMode
from repro.protocols.sync_logk import SyncLogKProtocol

__all__ = ["LatticeLogKProtocol"]

_DIRECTION_MATCH_EPS = 1e-9


class LatticeLogKProtocol(SyncLogKProtocol):
    """Few-slice routing with lattice-realisable movements.

    Args:
        k: digit base; ``k + 1`` must not exceed the lattice's diameter
            count.
        lattice: the world lattice (must match the simulator's).
        naming: ``"identified"`` or ``"sod"``.
    """

    def __init__(self, k: int, lattice: Lattice, naming: NamingMode = "identified") -> None:
        diameters = lattice.direction_count() // 2
        if k + 1 > diameters:
            raise ProtocolError(
                f"k={k} needs {k + 1} diameters but the lattice offers {diameters}"
            )
        if naming == "sec":
            raise ProtocolError(
                "SEC naming is not lattice-aligned; use 'identified' or 'sod'"
            )
        super().__init__(k=k, naming=naming, max_directions=lattice.direction_count())
        self._lattice = lattice
        self._direction_steps: List[int] = []

    # ------------------------------------------------------------------
    # Binding: re-slice every granular on the lattice diameters
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        super()._on_bind(info)
        lattice = self._lattice
        for index, home in enumerate(self._homes):
            if home is None or not lattice.is_lattice_point(home):
                raise ProtocolError(
                    f"robot {index}'s home {home!r} is not a lattice point; "
                    "lattice protocols need identity frames and lattice starts"
                )
        diameters = lattice.direction_count() // 2
        zero = self._lattice_zero_direction()
        for j in range(info.count):
            old = self._granulars[j]
            self._granulars[j] = Granular(
                center=old.center,
                radius=old.radius,
                num_diameters=diameters,
                zero_direction=zero,
                sweep=-1,
            )
        # Excursion length per diameter: as many unit steps as fit the
        # budget, at least one — which must fit the granular.
        me = self.info.index
        budget = min(
            0.45 * self._granulars[me].radius,
            info.sigma,
        )
        self._direction_steps = []
        for diameter in range(diameters):
            unit = self._unit_step_for(self._granulars[me].diameter_direction(diameter))
            multiples = max(1, int(budget / unit))
            if multiples * unit > 0.9 * self._granulars[me].radius:
                raise ProtocolError(
                    f"lattice pitch {lattice.pitch} is too coarse for granular "
                    f"radius {self._granulars[me].radius:.3g}; spread the robots out"
                )
            self._direction_steps.append(multiples)

    def _lattice_zero_direction(self) -> Vec2:
        """North if the lattice realises it, else the first direction."""
        north = Vec2(0.0, 1.0)
        for direction in self._lattice.directions():
            if direction.distance_to(north) <= _DIRECTION_MATCH_EPS:
                return north
        return self._lattice.directions()[0]

    def _unit_step_for(self, direction: Vec2) -> float:
        for index, candidate in enumerate(self._lattice.directions()):
            if candidate.distance_to(direction) <= _DIRECTION_MATCH_EPS:
                return self._lattice.unit_step(index)
        raise ProtocolError(  # pragma: no cover - construction guarantees alignment
            f"granular diameter {direction!r} is not a lattice direction"
        )

    # ------------------------------------------------------------------
    # Movement: land exactly on lattice points
    # ------------------------------------------------------------------
    def _excursion_target(self, diameter: int, positive: bool) -> Vec2:
        me = self.info.index
        granular = self._granulars[me]
        direction = granular.diameter_direction(diameter, positive)
        unit = self._unit_step_for(granular.diameter_direction(diameter))
        return granular.center + direction * (self._direction_steps[diameter] * unit)
