"""Discrete worlds — the Section 5 finite-movement discussion.

    "One can assume infinite decimal precision with the 'reasonable'
    assumption of finite movements [...] or even step over a grid.
    This would be the case by assuming that the plane is either a grid
    or a hexagonal pavement.  [...] robots could be prone to make
    computation errors due to round off, and, therefore, face a
    situation where robots are not able to identify all of possible 2n
    directions [...] and are limited to recognize only a certain
    number of directions."

This subpackage realises that world:

* :class:`~repro.discrete.lattice.SquareLattice` /
  :class:`~repro.discrete.lattice.HexLattice` — the grid and the
  hexagonal pavement, with their 8 / 6 realisable movement directions;
* :class:`~repro.discrete.simulator.LatticeSimulator` — the SSM engine
  with destinations snapped onto the lattice;
* :class:`~repro.discrete.lattice_protocol.LatticeLogKProtocol` — the
  Section 5 few-slice protocol with its diameters aligned on lattice
  directions and excursion lengths that land exactly on lattice
  points; the demonstration that the log_k addressing is precisely
  what makes communication possible when only a handful of directions
  are distinguishable (the full ``2n``-slice scheme refuses to bind —
  see ``max_directions`` on
  :class:`repro.protocols.sync_granular.SyncGranularProtocol`).
"""

from repro.discrete.lattice import HexLattice, Lattice, SquareLattice
from repro.discrete.simulator import LatticeSimulator
from repro.discrete.lattice_protocol import LatticeLogKProtocol

__all__ = [
    "Lattice",
    "SquareLattice",
    "HexLattice",
    "LatticeSimulator",
    "LatticeLogKProtocol",
]
