"""Non-scheduler adversaries: worst-case stale looks.

The CORDA-style engine (:mod:`repro.corda`) draws each activation's
Look lag uniformly.  The *adversarial* lag choice is not the maximal
lag — a constant lag is just a delayed but gap-free replay of the
history — it is the **sawtooth**: alternate between the maximal lag
and no lag at all, which makes consecutive looks jump forward by up
to ``max_delay + 1`` instants and therefore *skip* whole
configurations.  Skipped configurations are exactly what breaks
undilated decoders (see ``dilation`` in
:class:`repro.protocols.sync_granular.SyncGranularProtocol`), so this
is the worst case the dilation guarantee is stated against.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.corda.simulator import StaleLookSimulator

__all__ = ["SawtoothStaleLookSimulator"]


class SawtoothStaleLookSimulator(StaleLookSimulator):
    """Stale looks with the adversarial sawtooth lag policy.

    Per robot, activations alternate between the maximal legal lag
    (``max_delay``) and a perfectly fresh look (lag 0), maximizing
    the forward jumps of the (monotone) look sequence.  Deterministic:
    no randomness is involved, so paired caching-on/off runs are
    trivially identical.
    """

    def __init__(self, robots: Sequence, max_delay: int, **kwargs) -> None:
        super().__init__(robots, max_delay, **kwargs)
        self._sawtooth_phase: List[int] = [0] * len(robots)

    def _draw_lag(self, index: int, now: int) -> int:
        phase = self._sawtooth_phase[index]
        self._sawtooth_phase[index] = 1 - phase
        return self._max_delay if phase == 0 else 0
