"""Non-scheduler adversaries: worst-case stale looks.

The CORDA-style engine (:mod:`repro.corda`) draws each activation's
Look lag uniformly.  The *adversarial* lag choice is not the maximal
lag — a constant lag is just a delayed but gap-free replay of the
history — it is the **sawtooth**: alternate between the maximal lag
and no lag at all, which makes consecutive looks jump forward by up
to ``max_delay + 1`` instants and therefore *skip* whole
configurations.  Skipped configurations are exactly what breaks
undilated decoders (see ``dilation`` in
:class:`repro.protocols.sync_granular.SyncGranularProtocol`), so this
is the worst case the dilation guarantee is stated against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.corda.simulator import StaleLookSimulator
from repro.errors import ModelError
from repro.events.engine import EventSimulator
from repro.events.timing import TimingModel
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler
from repro.model.trace import TracePolicy

__all__ = ["SawtoothStaleEventSimulator", "SawtoothStaleLookSimulator"]


class SawtoothStaleLookSimulator(StaleLookSimulator):
    """Stale looks with the adversarial sawtooth lag policy.

    Per robot, activations alternate between the maximal legal lag
    (``max_delay``) and a perfectly fresh look (lag 0), maximizing
    the forward jumps of the (monotone) look sequence.  Deterministic:
    no randomness is involved, so paired caching-on/off runs are
    trivially identical.
    """

    def __init__(self, robots: Sequence, max_delay: int, **kwargs) -> None:
        super().__init__(robots, max_delay, **kwargs)
        self._sawtooth_phase: List[int] = [0] * len(robots)

    def _draw_lag(self, index: int, now: int) -> int:
        phase = self._sawtooth_phase[index]
        self._sawtooth_phase[index] = 1 - phase
        return self._max_delay if phase == 0 else 0


class SawtoothStaleEventSimulator(EventSimulator):
    """The event-engine twin of :class:`SawtoothStaleLookSimulator`.

    Runs the event engine in round-emulation mode (unit phases,
    scheduler-driven) and overrides the same single observation hook
    the round-engine adversary does: per robot, activations alternate
    between the maximal legal lag and a fresh look, with the look
    sequence kept monotone.  In round emulation ``self.time`` is the
    unincremented round index while the round's looks pop — exactly
    the round engine's notion of "now" — and both engines issue looks
    in ``sorted(active)`` order, so the sawtooth phases advance in
    lockstep and the twins stay byte-identical.

    Exposes ``max_delay`` / ``look_time_of`` so the staleness-contract
    monitor (:class:`repro.verify.monitors.StalenessContractMonitor`)
    audits this engine the same way it audits the round one.
    """

    def __init__(
        self,
        robots: Sequence[Robot],
        max_delay: int,
        scheduler: Optional[Scheduler] = None,
        *,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
    ) -> None:
        if max_delay < 0:
            raise ModelError(f"max_delay must be >= 0, got {max_delay}")
        if trace_policy is not None and max_delay > 0:
            if trace_policy.stride > 1 or (
                trace_policy.capacity is not None
                and trace_policy.capacity < max_delay
            ):
                raise ModelError(
                    "stale looks need the last max_delay configurations: "
                    f"policy {trace_policy!r} cannot serve max_delay={max_delay}"
                )
        self._max_delay = max_delay
        self._look_times: List[int] = [0] * len(robots)
        self._sawtooth_phase: List[int] = [0] * len(robots)
        super().__init__(
            robots,
            scheduler,
            timing=TimingModel.round_emulation(),
            caching=caching,
            trace_policy=trace_policy,
        )

    @property
    def max_delay(self) -> int:
        """The staleness bound, in instants."""
        return self._max_delay

    def look_time_of(self, index: int) -> int:
        """The instant whose configuration the robot last looked at."""
        return self._look_times[index]

    def _config_for_observation(self, index: int) -> Sequence[Vec2]:
        if self._max_delay == 0:
            return self._positions
        now = self.time
        phase = self._sawtooth_phase[index]
        self._sawtooth_phase[index] = 1 - phase
        lag = self._max_delay if phase == 0 else 0
        look = max(self._look_times[index], now - lag)
        self._look_times[index] = look
        if look >= now:
            return self._positions
        return self.trace.positions_at(look)
